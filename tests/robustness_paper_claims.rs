//! The paper's quantitative claims, asserted as integration tests at
//! reduced (but honest) scale.

use hdhash::emulator::runner::{
    run_robustness, run_uniformity, RobustnessConfig, RobustnessNoise, UniformityConfig,
};
use hdhash::prelude::*;

/// Figure 5 / §1 headline: "With 512 servers and a 10-bit MCU, HD hashing
/// is unaffected while rendezvous and consistent hashing mismatch 4% and
/// 12% of requests, respectively." We assert the reproducible core: HD is
/// *exactly* unaffected, the baselines are not.
#[test]
fn headline_mcu_512_servers() {
    let config = RobustnessConfig {
        algorithms: AlgorithmKind::PAPER.to_vec(),
        server_counts: vec![512],
        bit_errors: vec![10],
        lookups: 2_000,
        trials: 8,
        noise: RobustnessNoise::Mcu,
        seed: 0xC1A1,
    };
    let samples = run_robustness(&config);
    let get = |kind: AlgorithmKind| {
        samples.iter().find(|s| s.algorithm == kind).expect("present").mismatch_fraction
    };
    assert_eq!(get(AlgorithmKind::Hd), 0.0, "HD hashing must be unaffected by a 10-bit MCU");
    assert!(get(AlgorithmKind::Rendezvous) > 0.0, "rendezvous must be affected");
    assert!(get(AlgorithmKind::Consistent) > 0.0, "consistent must be affected");
}

/// Figure 5's SEU sweep: HD stays at zero for the entire 0..=10 range
/// while both baselines degrade monotonically-ish (we assert endpoints).
#[test]
fn seu_sweep_hd_flat_baselines_rise() {
    let config = RobustnessConfig {
        algorithms: AlgorithmKind::PAPER.to_vec(),
        server_counts: vec![256],
        bit_errors: vec![0, 5, 10],
        lookups: 2_000,
        trials: 6,
        noise: RobustnessNoise::Seu,
        seed: 0xC1A1 + 1,
    };
    let samples = run_robustness(&config);
    let get = |kind: AlgorithmKind, errors: usize| {
        samples
            .iter()
            .find(|s| s.algorithm == kind && s.bit_errors == errors)
            .expect("present")
            .mismatch_fraction
    };
    for errors in [0usize, 5, 10] {
        assert_eq!(get(AlgorithmKind::Hd, errors), 0.0, "HD at {errors} errors");
    }
    assert!(get(AlgorithmKind::Rendezvous, 10) > get(AlgorithmKind::Rendezvous, 0));
    assert!(get(AlgorithmKind::Consistent, 10) > get(AlgorithmKind::Consistent, 0));
    // Rendezvous's analytic slope: ≈ 2·flips/n per corrupted pre-hash.
    let rendezvous_10 = get(AlgorithmKind::Rendezvous, 10);
    let analytic = 2.0 * 10.0 / 256.0;
    assert!(
        (rendezvous_10 - analytic).abs() < analytic,
        "rendezvous at 10 errors should sit near {analytic}: {rendezvous_10}"
    );
}

/// "Realistic level of memory errors causes more than 20% mismatches for
/// consistent hashing while HD hashing remains unaffected" (abstract).
/// A machine-year of correlated errors is far more than 10 flips; we use
/// 200 on a 128-server pool.
#[test]
fn realistic_error_levels_break_consistent_not_hd() {
    let config = RobustnessConfig {
        algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
        server_counts: vec![128],
        bit_errors: vec![200],
        lookups: 2_000,
        trials: 4,
        noise: RobustnessNoise::Seu,
        seed: 0xC1A1 + 2,
    };
    let samples = run_robustness(&config);
    let get = |kind: AlgorithmKind| {
        samples.iter().find(|s| s.algorithm == kind).expect("present").mismatch_fraction
    };
    assert!(
        get(AlgorithmKind::Consistent) > 0.20,
        "realistic error levels should exceed 20% for consistent hashing: {}",
        get(AlgorithmKind::Consistent)
    );
    assert_eq!(get(AlgorithmKind::Hd), 0.0, "HD must still be unaffected");
}

/// Figure 6: HD distributes more uniformly than consistent hashing, bit
/// errors worsen consistent hashing's χ², and HD's χ² is untouched.
#[test]
fn uniformity_claims() {
    let config = UniformityConfig {
        algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
        server_counts: vec![32, 128],
        bit_errors: vec![0, 10],
        lookups: 30_000,
        seed: 0xC1A1 + 3,
    };
    let samples = run_uniformity(&config);
    let get = |kind: AlgorithmKind, servers: usize, errors: usize| {
        samples
            .iter()
            .find(|s| s.algorithm == kind && s.servers == servers && s.bit_errors == errors)
            .expect("present")
            .chi_squared
    };
    for &servers in &[32usize, 128] {
        assert!(
            get(AlgorithmKind::Hd, servers, 0) < get(AlgorithmKind::Consistent, servers, 0),
            "HD should be more uniform at {servers} servers"
        );
        assert!(
            get(AlgorithmKind::Consistent, servers, 10)
                > get(AlgorithmKind::Consistent, servers, 0),
            "errors should worsen consistent hashing at {servers} servers"
        );
        let hd_clean = get(AlgorithmKind::Hd, servers, 0);
        let hd_noisy = get(AlgorithmKind::Hd, servers, 10);
        assert!(
            (hd_clean - hd_noisy).abs() < 1e-9,
            "HD uniformity must not move under noise at {servers} servers"
        );
    }
}

/// Rendezvous hashing is pseudo-uniform by construction — the reason the
/// paper omits it from Figure 6. Its χ² must sit near the `n − 1`
/// expectation of a true uniform sample.
#[test]
fn rendezvous_is_statistically_uniform() {
    let config = UniformityConfig {
        algorithms: vec![AlgorithmKind::Rendezvous],
        server_counts: vec![64],
        bit_errors: vec![0],
        lookups: 64_000,
        seed: 0xC1A1 + 4,
    };
    let sample = run_uniformity(&config).pop().expect("one sample");
    assert!(
        sample.p_value() > 0.01,
        "rendezvous χ² {} should be statistically unremarkable",
        sample.chi_squared
    );
}
