//! Multi-process cluster supervisor harness: ≥3 real OS processes
//! (spawned `hdhash-cli cluster-replica` children) gossiping over
//! framed loopback TCP, driven through their line protocol. The core
//! scenario is crash recovery with a **real SIGKILL** — no shutdown
//! handshake, no flush, the process is simply gone mid-churn — followed
//! by a restart on a fresh OS-assigned port: the survivors are
//! re-pointed at the new address, the restarted replica (which comes
//! back *empty*) anti-entropies the full membership over the wire, and
//! every process must end at byte-identical per-shard signatures.
//!
//! CI runs this single-threaded; every driver→replica command and its
//! response is a deterministic line pair, so a failing run replays from
//! the test output alone.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// One `cluster-replica` child process under test control.
struct Replica {
    id: u64,
    port: u16,
    child: Child,
    stdin: ChildStdin,
    lines: std::io::Lines<BufReader<ChildStdout>>,
}

impl Replica {
    /// Spawns `hdhash-cli cluster-replica <id> 2 1024 128 <seed> 15`
    /// and waits for its `listening <port>` banner.
    fn spawn(id: u64, seed: u64) -> Replica {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hdhash-cli"))
            .args(["cluster-replica", &id.to_string(), "2", "1024", "128", &seed.to_string(), "15"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn cluster-replica");
        let stdin = child.stdin.take().expect("child stdin");
        let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();
        let banner = lines.next().expect("banner").expect("banner io");
        let port = banner
            .strip_prefix("listening ")
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("replica{id}: bad banner `{banner}`"));
        Replica { id, port, child, stdin, lines }
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// One command line out, one response line back.
    fn command(&mut self, command: &str) -> String {
        writeln!(self.stdin, "{command}").expect("write command");
        self.stdin.flush().expect("flush command");
        self.lines
            .next()
            .unwrap_or_else(|| panic!("replica{}: eof after `{command}`", self.id))
            .expect("response io")
    }

    fn expect_ok(&mut self, command: &str) {
        let response = self.command(command);
        assert_eq!(response, "ok", "replica{}: `{command}` -> `{response}`", self.id);
    }

    /// `Child::kill` delivers SIGKILL on unix: the replica gets no
    /// chance to flush, close sockets, or say goodbye.
    fn sigkill(&mut self) {
        self.child.kill().expect("sigkill");
        let status = self.child.wait().expect("reap");
        assert!(!status.success(), "SIGKILL must not read as clean exit");
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Polls `sig` across the set until every response line is
/// byte-identical; panics past the deadline. Returns the common line.
fn await_identical_signatures(replicas: &mut [Replica], deadline: Duration) -> String {
    let start = Instant::now();
    loop {
        let sigs: Vec<String> = replicas.iter_mut().map(|r| r.command("sig")).collect();
        if sigs.windows(2).all(|w| w[0] == w[1]) && sigs[0].len() > "sig ".len() {
            return sigs.into_iter().next().expect("nonempty");
        }
        assert!(
            start.elapsed() < deadline,
            "signatures never converged; last poll: {sigs:#?}"
        );
        std::thread::sleep(Duration::from_millis(40));
    }
}

fn wire_mesh(replicas: &mut [Replica]) {
    let addrs: Vec<String> = replicas.iter().map(Replica::addr).collect();
    for (i, replica) in replicas.iter_mut().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                replica.expect_ok(&format!("peer {j} {addr}"));
            }
        }
        replica.expect_ok("start");
    }
}

#[test]
fn three_processes_reconverge_byte_identically_after_sigkill_and_restart() {
    const SEED: u64 = 0x516B_1789; // deterministic engine seed
    let mut replicas: Vec<Replica> = (0..3).map(|id| Replica::spawn(id, SEED)).collect();
    wire_mesh(&mut replicas);

    // Phase 1 — divergent churn on live gossip: disjoint join ranges per
    // process plus conflicting leaves, then full convergence.
    for (i, replica) in replicas.iter_mut().enumerate() {
        let base = i as u64 * 100;
        for server in base..base + 20 {
            replica.expect_ok(&format!("join {server}"));
        }
    }
    replicas[0].expect_ok("leave 0");
    replicas[1].expect_ok("leave 101");
    let sig_before = await_identical_signatures(&mut replicas, Duration::from_secs(60));
    let members_before = replicas[0].command("members");
    assert_eq!(replicas[1].command("members"), members_before, "memberships diverged");
    assert!(members_before.contains(" 205"), "replica2's range must have replicated");

    // Phase 2 — real SIGKILL mid-churn: replica 2 dies without flushing;
    // churn continues on the survivors, who must reconverge without it.
    replicas[2].sigkill();
    for (i, replica) in replicas[..2].iter_mut().enumerate() {
        let base = 1000 + i as u64 * 100;
        for server in base..base + 10 {
            replica.expect_ok(&format!("join {server}"));
        }
    }
    replicas[0].expect_ok("leave 102");
    let sig_survivors = await_identical_signatures(&mut replicas[..2], Duration::from_secs(60));
    assert_ne!(sig_survivors, sig_before, "post-kill churn must move the signatures");

    // Phase 3 — restart on a fresh port. The new process starts EMPTY:
    // everything it ends up knowing must have crossed the wire. The
    // survivors' supervisors are re-pointed at the new address.
    let restarted = Replica::spawn(2, SEED);
    assert_ne!(restarted.addr(), replicas[2].addr(), "OS must assign a fresh port");
    replicas[2] = restarted;
    let new_addr = replicas[2].addr();
    let survivor_addrs: Vec<String> = replicas[..2].iter().map(Replica::addr).collect();
    for replica in replicas[..2].iter_mut() {
        let line = format!("peer 2 {new_addr}");
        replica.expect_ok(&line);
    }
    for (j, addr) in survivor_addrs.iter().enumerate() {
        let line = format!("peer {j} {addr}");
        replicas[2].expect_ok(&line);
    }
    replicas[2].expect_ok("start");

    let sig_after = await_identical_signatures(&mut replicas, Duration::from_secs(120));
    assert_eq!(
        sig_after, sig_survivors,
        "the restarted replica must adopt the survivors' state, not perturb it"
    );
    // Membership agreement at the id level, across all three processes.
    let members = replicas[0].command("members");
    assert_eq!(replicas[1].command("members"), members);
    assert_eq!(replicas[2].command("members"), members, "restarted replica disagrees");
    assert!(members.contains(" 1005"), "post-kill churn must reach the restarted replica");
    assert!(!members.contains(" 102 "), "a leave gossiped while dead must stick after rejoin");

    // The wire actually carried this: the restarted process received
    // frames and bytes over real sockets, cleanly (no corruption).
    let metrics = replicas[2].command("metrics");
    let field = |name: &str| -> u64 {
        metrics
            .split_whitespace()
            .find_map(|f| f.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in `{metrics}`"))
    };
    assert!(field("frames_received") > 0, "no frames reached the restarted replica");
    assert!(field("bytes_received") > 0);
    assert_eq!(field("corrupt_frames"), 0, "loopback frames must verify");
    for replica in &mut replicas {
        assert_eq!(replica.command("quit"), "bye");
    }
}

#[test]
fn cluster_driver_subcommand_runs_the_full_story_green() {
    let output = Command::new(env!("CARGO_BIN_EXE_hdhash-cli"))
        .args(["cluster", "3", "12"])
        .output()
        .expect("run cluster driver");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "driver failed:\n{stdout}\n{stderr}");
    for phase in [
        "phase 1: converged",
        "SIGKILL replica2",
        "phase 2: survivors reconverged",
        "phase 3: full cluster reconverged",
        "total measured wire bytes sent:",
        "ok: 3 processes",
    ] {
        assert!(stdout.contains(phase), "missing `{phase}` in driver output:\n{stdout}");
    }
}
