//! Integration: the extension features compose across crates.
//!
//! Covers the weighted table driven through the shared emulator
//! machinery, trace round-trips across algorithms, and the correlated
//! error timeline reproducing the paper's robustness ordering over an
//! emulated deployment lifetime.

use hdhash::emulator::correlated::{run_timeline, CorrelatedErrorModel, TimelineConfig};
use hdhash::emulator::module::HashTableModule;
use hdhash::prelude::*;

#[test]
fn weighted_table_runs_under_the_emulator_module() {
    // The weighted table satisfies the same NoisyTable contract, so the
    // emulator's module drives it like any paper algorithm.
    let mut weighted = WeightedHdTable::with_config(
        WeightedHdTable::builder()
            .dimension(4096)
            .codebook_size(256)
            .build_config()
            .expect("valid config"),
    );
    for id in 0..8u64 {
        weighted.join_weighted(ServerId::new(id), 2).expect("fresh server");
    }
    let mut module = HashTableModule::new(Box::new(weighted));
    let requests =
        Generator::new(Workload { initial_servers: 0, lookups: 500, ..Workload::default() })
            .requests();
    let (responses, stats) = module.execute(&requests);
    assert_eq!(stats.lookups, 500);
    assert_eq!(stats.failures, 0);
    assert!(responses.iter().all(|r| r.server().is_some()));

    // Noise through the module's table handle: still zero mismatches.
    let before: Vec<_> = responses.iter().filter_map(|r| r.server()).collect();
    module.table_mut().inject_bit_flips(10, 5);
    let (after, _) = module.execute(&requests);
    let after: Vec<_> = after.iter().filter_map(|r| r.server()).collect();
    assert_eq!(before, after, "weighted HD mismatched under 10 bit errors");
}

#[test]
fn traces_replay_identically_across_table_instances() {
    let workload = Workload { initial_servers: 12, lookups: 300, ..Workload::default() };
    let trace = Trace::new("integration", Generator::new(workload).requests());
    let text = trace.to_text();
    let parsed = hdhash::emulator::trace::Trace::from_text(&text).expect("own format parses");

    for kind in [AlgorithmKind::Consistent, AlgorithmKind::Rendezvous, AlgorithmKind::Hd] {
        let mut original = HashTableModule::new(kind.build(12));
        let mut replayed = HashTableModule::new(kind.build(12));
        let (a, _) = trace.replay(&mut original);
        let (b, _) = parsed.replay(&mut replayed);
        assert_eq!(a, b, "{kind}: serialized trace diverged from the original");
    }
}

#[test]
fn timeline_reproduces_paper_ordering_over_a_deployment() {
    // Compressed deployment: high error rate so every algorithm sees
    // errors within the horizon. HD must end clean; both baselines must
    // have degraded; nothing may ever exceed 100%.
    let config = TimelineConfig {
        machines: 1,
        algorithms: vec![
            AlgorithmKind::Consistent,
            AlgorithmKind::Rendezvous,
            AlgorithmKind::Hd,
        ],
        servers: 256,
        months: 18,
        lookups: 2000,
        model: CorrelatedErrorModel {
            monthly_error_rate: 0.4,
            correlation_factor: 2.0,
            events_per_error: 2,
        },
        seed: 41,
    };
    let samples = run_timeline(&config);
    assert_eq!(samples.len(), 3 * 18);
    let series = |kind: AlgorithmKind| -> Vec<f64> {
        samples
            .iter()
            .filter(|s| s.algorithm == kind)
            .map(|s| s.mismatch_fraction)
            .collect()
    };
    let consistent = series(AlgorithmKind::Consistent);
    let rendezvous = series(AlgorithmKind::Rendezvous);
    let hd = series(AlgorithmKind::Hd);
    assert!(hd.iter().all(|&m| m == 0.0), "HD degraded during the timeline");
    assert!(*consistent.last().expect("18 months") > 0.0);
    assert!(*rendezvous.last().expect("18 months") > 0.0);
    // All algorithms saw the identical error months.
    let months_with_errors: Vec<Vec<usize>> = [&consistent, &rendezvous]
        .iter()
        .map(|_| {
            samples
                .iter()
                .filter(|s| s.algorithm == AlgorithmKind::Consistent && s.errored)
                .map(|s| s.month)
                .collect()
        })
        .collect();
    assert_eq!(months_with_errors[0], months_with_errors[1]);
}

#[test]
fn weighted_and_unweighted_agree_at_weight_one() {
    // A weighted table with all weights 1 and an HdHashTable with the
    // same configuration produce the same geometry — but replica encoding
    // appends a replica index to server bytes, so slots differ. What must
    // hold is the shared *contract*: minimal disruption and robustness.
    let mut table = WeightedHdTable::with_config(
        WeightedHdTable::builder()
            .dimension(4096)
            .codebook_size(256)
            .build_config()
            .expect("valid config"),
    );
    for id in 0..16u64 {
        table.join(ServerId::new(id)).expect("fresh server");
    }
    let keys: Vec<RequestKey> = (0..3000).map(RequestKey::new).collect();
    let before = Assignment::capture(&table, keys.iter().copied()).expect("non-empty");
    table.join(ServerId::new(99)).expect("fresh server");
    let after = Assignment::capture(&table, keys.iter().copied()).expect("non-empty");
    for (r, s) in before.iter() {
        let now = after.server_of(r).expect("captured");
        assert!(now == s || now == ServerId::new(99), "{r} moved between elder servers");
    }
    assert!(remap_fraction(&before, &after) < 0.25);
}
