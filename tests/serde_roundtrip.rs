//! Integration: the optional `serde` feature round-trips every data
//! structure that claims it.
//!
//! Run with `cargo test --features serde --test serde_roundtrip`.
//! Compiled out entirely without the feature, so the default build stays
//! serde-free.

#![cfg(feature = "serde")]

use hdhash::accel::adder_tree::AdderTree;
use hdhash::accel::comparator::ComparatorTree;
use hdhash::emulator::correlated::CorrelatedErrorModel;
use hdhash::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializable");
    serde_json::from_str(&json).expect("own output deserializes")
}

#[test]
fn hypervectors_round_trip_bit_exact() {
    let mut rng = Rng::new(1);
    for d in [1usize, 63, 64, 65, 10_000] {
        let hv = Hypervector::random(d, &mut rng);
        let back: Hypervector = round_trip(&hv);
        assert_eq!(back, hv, "d={d}");
        assert_eq!(back.dimension(), d);
    }
}

#[test]
fn request_vocabulary_round_trips() {
    for request in [
        hdhash::emulator::Request::Join(ServerId::new(7)),
        hdhash::emulator::Request::Leave(ServerId::new(u64::MAX)),
        hdhash::emulator::Request::Lookup(RequestKey::new(42)),
    ] {
        assert_eq!(round_trip(&request), request);
    }
}

#[test]
fn traces_round_trip_through_json_and_text() {
    // Two independent serializations of the same trace must agree.
    let workload = Workload { initial_servers: 4, lookups: 20, ..Workload::default() };
    let trace = Trace::new("serde", Generator::new(workload).requests());
    let via_json: Trace = round_trip(&trace);
    let via_text = Trace::from_text(&trace.to_text()).expect("own text parses");
    assert_eq!(via_json, via_text);
}

#[test]
fn noise_plans_and_models_round_trip() {
    for plan in [
        NoisePlan::Seu { count: 3 },
        NoisePlan::Mcu { length: 10 },
        NoisePlan::IbeMixture { events: 100 },
    ] {
        assert_eq!(round_trip(&plan), plan);
    }
    let model = CorrelatedErrorModel::field_study();
    assert_eq!(round_trip(&model), model);
}

#[test]
fn accel_models_round_trip() {
    let tree = AdderTree::new(10_000);
    assert_eq!(round_trip(&tree), tree);
    let cmp = ComparatorTree::new(512, 14);
    assert_eq!(round_trip(&cmp), cmp);
    let tech = TechnologyParams::asic_22nm();
    assert_eq!(round_trip(&tech), tech);
    let schedule =
        LookupSchedule::plan(ExecutionModel::Combinational, 512, 10_000, &tech);
    assert_eq!(round_trip(&schedule), schedule);
}

#[test]
fn serialized_hypervector_behaves_identically() {
    // Serialization must not disturb the tail-masking invariant: distances
    // computed on a deserialized vector match the original exactly.
    let mut rng = Rng::new(2);
    let a = Hypervector::random(777, &mut rng);
    let b = Hypervector::random(777, &mut rng);
    let a2: Hypervector = round_trip(&a);
    assert_eq!(a2.hamming_distance(&b), a.hamming_distance(&b));
    assert_eq!(a2.count_ones(), a.count_ones());
}
