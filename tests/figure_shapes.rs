//! Shape assertions for the paper's figures, run at reduced scale: the
//! qualitative claims must hold on every build, not just in the recorded
//! EXPERIMENTS.md runs.

use hdhash::emulator::runner::{run_efficiency, EfficiencyConfig};
use hdhash::hdc::basis::{CircularBasis, LevelBasis, RandomBasis};
use hdhash::hdc::profile::{decays_to_antipode, is_circularly_symmetric, SimilarityMatrix};
use hdhash::hdc::Rng;
use hdhash::prelude::*;

/// Figure 2's three correlation structures at the paper's parameters.
#[test]
fn figure2_similarity_structures() {
    let mut rng = Rng::new(0xF16_2);
    let d = 10_008;

    let random = RandomBasis::generate(12, d, &mut rng).expect("valid");
    let m = SimilarityMatrix::compute(random.hypervectors(), SimilarityMetric::Cosine);
    assert!(m.mean_off_diagonal().abs() < 0.02, "random basis must be quasi-orthogonal");

    let level = LevelBasis::generate(12, d, &mut rng).expect("valid");
    let m = SimilarityMatrix::compute(level.hypervectors(), SimilarityMetric::Cosine);
    let profile = m.profile_from_first();
    assert!(decays_to_antipode(&profile, 1e-9));
    assert!(profile[11].abs() < 0.05, "level extremes must be dissimilar");
    assert!(!is_circularly_symmetric(&profile, 0.1), "level sets must not wrap");

    let circular = CircularBasis::generate(12, d, &mut rng).expect("valid");
    let m = SimilarityMatrix::compute(circular.hypervectors(), SimilarityMetric::Cosine);
    let profile = m.profile_from_first();
    assert!(is_circularly_symmetric(&profile, 0.02), "circular sets must wrap");
    assert!(decays_to_antipode(&profile, 0.02));
    assert!(profile[6].abs() < 0.02, "antipode must be quasi-orthogonal");
}

/// Figure 4's scaling shapes: rendezvous O(n), consistent near-flat.
#[test]
fn figure4_scaling_shapes() {
    let config = EfficiencyConfig {
        algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Rendezvous],
        server_counts: vec![8, 512],
        lookups: 4_000,
        batch: 256,
        seed: 0xF16_4,
    };
    let samples = run_efficiency(&config);
    let nanos = |kind: AlgorithmKind, servers: usize| {
        samples
            .iter()
            .find(|s| s.algorithm == kind && s.servers == servers)
            .expect("present")
            .avg_nanos()
    };
    // Rendezvous: 64× the servers must cost at least ~8× the time.
    let rdv_growth = nanos(AlgorithmKind::Rendezvous, 512) / nanos(AlgorithmKind::Rendezvous, 8);
    assert!(rdv_growth > 8.0, "rendezvous O(n) not visible: {rdv_growth}x");
    // Consistent: must grow far slower than rendezvous.
    let con_growth = nanos(AlgorithmKind::Consistent, 512) / nanos(AlgorithmKind::Consistent, 8);
    assert!(
        con_growth < rdv_growth / 2.0,
        "consistent should scale much flatter: {con_growth}x vs {rdv_growth}x"
    );
    // And consistent must be absolutely faster at scale (paper §5.2).
    assert!(nanos(AlgorithmKind::Consistent, 512) < nanos(AlgorithmKind::Rendezvous, 512));
}

/// §1 motivation: modular hashing remaps virtually everything on resize;
/// the minimal-disruption algorithms sit near the 1/(n+1) ideal.
#[test]
fn remap_on_resize_shapes() {
    let keys: Vec<RequestKey> =
        (0..6_000u64).map(|k| RequestKey::new(hdhash::hashfn::mix64(k))).collect();
    let servers = 32usize;
    let ideal = 1.0 / (servers + 1) as f64;

    let remap_for = |kind: AlgorithmKind| {
        let mut table = kind.build(servers + 2);
        for i in 0..servers as u64 {
            table.join(ServerId::new(i)).expect("fresh server");
        }
        let before = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
        table.join(ServerId::new(999_999)).expect("fresh");
        let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
        remap_fraction(&before, &after)
    };

    assert!(remap_for(AlgorithmKind::Modular) > 0.85, "modular must remap nearly all");
    for kind in [AlgorithmKind::Consistent, AlgorithmKind::Rendezvous, AlgorithmKind::Hd, AlgorithmKind::Jump] {
        let moved = remap_for(kind);
        assert!(
            moved < 6.0 * ideal,
            "{kind} should sit near the ideal {ideal:.4}: moved {moved:.4}"
        );
    }
}

/// The direction-insensitivity of Figure 1: an HD request can be served by
/// the nearest server *counter-clockwise*, which consistent hashing never
/// does.
#[test]
fn figure1_direction_insensitive() {
    let mut table = hdhash::core::HdHashTable::builder()
        .dimension(4096)
        .codebook_size(64)
        .seed(5)
        .build()
        .expect("valid config");
    for i in 0..8u64 {
        table.join(ServerId::new(i)).expect("fresh server");
    }
    let n = table.config().codebook_size();
    // Find a request whose nearest server is *behind* it on the circle
    // (counter-clockwise), proving direction does not matter.
    let mut found_backward = false;
    for k in 0..2_000u64 {
        let request = RequestKey::new(k);
        let r_slot = table.slot_of_request(request);
        let owner = table.lookup(request).expect("non-empty");
        let s_slot = table.slot_of_server(owner).expect("joined");
        // Clockwise distance from request to server vs counter-clockwise.
        let clockwise = (s_slot + n - r_slot) % n;
        let counter = (r_slot + n - s_slot) % n;
        if counter < clockwise {
            found_backward = true;
            break;
        }
    }
    assert!(found_backward, "HD hashing must assign in both directions");
}
