//! Reproducibility: every randomized component in the workspace is a pure
//! function of its seed, so whole experiments replay bit-for-bit.

use hdhash::emulator::runner::{
    run_robustness, run_uniformity, RobustnessConfig, RobustnessNoise, UniformityConfig,
};
use hdhash::emulator::{Generator, Workload};
use hdhash::hdc::basis::CircularBasis;
use hdhash::hdc::Rng;
use hdhash::prelude::*;

#[test]
fn codebooks_replay_exactly() {
    let a = CircularBasis::generate(64, 4096, &mut Rng::new(99)).expect("valid");
    let b = CircularBasis::generate(64, 4096, &mut Rng::new(99)).expect("valid");
    assert_eq!(a.hypervectors(), b.hypervectors());
}

#[test]
fn workloads_replay_exactly() {
    let w = Workload { initial_servers: 8, lookups: 5_000, ..Workload::default() };
    assert_eq!(Generator::new(w).requests(), Generator::new(w).requests());
    assert_eq!(Generator::new(w).churn_requests(7), Generator::new(w).churn_requests(7));
}

#[test]
fn tables_replay_exactly() {
    for kind in AlgorithmKind::ALL {
        let build = || {
            let mut t = kind.build(32);
            for i in 0..20 {
                t.join(ServerId::new(i)).expect("fresh server");
            }
            t
        };
        let a = build();
        let b = build();
        for k in 0..1_000u64 {
            assert_eq!(
                a.lookup(RequestKey::new(k)).expect("non-empty"),
                b.lookup(RequestKey::new(k)).expect("non-empty"),
                "{kind} diverged at key {k}"
            );
        }
    }
}

#[test]
fn noisy_tables_replay_exactly() {
    for kind in AlgorithmKind::ALL {
        let run = || {
            let mut t = kind.build(32);
            for i in 0..20 {
                t.join(ServerId::new(i)).expect("fresh server");
            }
            t.inject_bit_flips(25, 0xD00D);
            let keys: Vec<RequestKey> = (0..500).map(RequestKey::new).collect();
            Assignment::capture(&*t, keys).expect("non-empty")
        };
        assert_eq!(run(), run(), "{kind} noise not reproducible");
    }
}

#[test]
fn experiment_runners_replay_exactly() {
    let robustness = RobustnessConfig {
        algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
        server_counts: vec![32],
        bit_errors: vec![0, 5],
        lookups: 400,
        trials: 2,
        noise: RobustnessNoise::Seu,
        seed: 77,
    };
    assert_eq!(run_robustness(&robustness), run_robustness(&robustness));

    let uniformity = UniformityConfig {
        algorithms: vec![AlgorithmKind::Hd],
        server_counts: vec![16],
        bit_errors: vec![0],
        lookups: 2_000,
        seed: 78,
    };
    assert_eq!(run_uniformity(&uniformity), run_uniformity(&uniformity));
}
