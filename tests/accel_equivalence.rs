//! Integration: the gate-level accelerator model agrees with the software
//! HD hash table, end to end.
//!
//! The accelerator crate's unit tests pin each component against its
//! software counterpart; these tests close the loop at the system level —
//! a `CombinationalAm` loaded with a live table's stored hypervectors
//! must route every request to the same server the table does, clean and
//! under churn, and the schedule model must reproduce the complexity
//! separation the paper's Figure 4 argues from.

use hdhash::accel::datapath::CombinationalAm;
use hdhash::accel::{ca90, ExecutionModel, LookupSchedule, Rematerializer, TechnologyParams};
use hdhash::prelude::*;

/// Builds the combinational AM mirroring a table's stored server state.
fn mirror(table: &HdHashTable) -> (Vec<ServerId>, CombinationalAm) {
    let servers = table.servers();
    let stored = servers
        .iter()
        .map(|&s| {
            let slot = table.slot_of_server(s).expect("listed server is joined");
            table.codebook().hypervector(slot).clone()
        })
        .collect();
    let am = CombinationalAm::new(table.config().dimension(), stored)
        .expect("codebook dimensions are uniform");
    (servers, am)
}

fn hardware_lookup(
    table: &HdHashTable,
    servers: &[ServerId],
    am: &CombinationalAm,
    request: RequestKey,
) -> ServerId {
    let probe = table.codebook().hypervector(table.slot_of_request(request));
    servers[am.infer(probe).expect("memory is non-empty").index]
}

#[test]
fn hardware_and_software_agree_on_every_request() {
    let mut table =
        HdHashTable::builder().dimension(4096).codebook_size(256).seed(31).build().expect("valid");
    for id in 0..48 {
        table.join(ServerId::new(id)).expect("fresh server");
    }
    let (servers, am) = mirror(&table);
    for k in 0..2000u64 {
        let request = RequestKey::new(k);
        assert_eq!(
            hardware_lookup(&table, &servers, &am, request),
            table.lookup(request).expect("non-empty pool"),
            "divergence at request {k}"
        );
    }
}

#[test]
fn agreement_survives_churn() {
    let mut table =
        HdHashTable::builder().dimension(4096).codebook_size(256).seed(32).build().expect("valid");
    for id in 0..32 {
        table.join(ServerId::new(id)).expect("fresh server");
    }
    // Churn: remove a third of the pool, add replacements, re-mirror.
    for id in (0..32).step_by(3) {
        table.leave(ServerId::new(id)).expect("present");
    }
    for id in 100..110 {
        table.join(ServerId::new(id)).expect("fresh server");
    }
    let (servers, am) = mirror(&table);
    assert_eq!(am.len(), table.server_count());
    for k in 5000..6000u64 {
        let request = RequestKey::new(k);
        assert_eq!(
            hardware_lookup(&table, &servers, &am, request),
            table.lookup(request).expect("non-empty pool"),
        );
    }
}

#[test]
fn rematerializer_reproduces_any_access_order() {
    // The hardware regenerates codebook states on demand; order of access
    // must not matter.
    let seed = Hypervector::random(2048, &mut Rng::new(33));
    let remat = Rematerializer::new(seed);
    let forward: Vec<Hypervector> = (0..16).map(|i| remat.materialize(i)).collect();
    let backward: Vec<Hypervector> = (0..16).rev().map(|i| remat.materialize(i)).collect();
    for (i, hv) in forward.iter().enumerate() {
        assert_eq!(&backward[15 - i], hv, "order-dependent state at index {i}");
    }
    // And the streaming prefix equals random access.
    assert_eq!(remat.materialize_prefix(16), forward);
    // Evolving the last state once more continues the sequence.
    assert_eq!(ca90::ca90_step(&forward[15]), remat.materialize(16));
}

#[test]
fn schedule_model_reproduces_figure4_separation() {
    // The complexity separation of Figure 4, restated on the model: the
    // software regime (word-serial) scales linearly with the pool, the
    // hardware regime (combinational) stays flat.
    let tech = TechnologyParams::fpga_28nm();
    let ratio = |model: ExecutionModel| {
        let small = LookupSchedule::plan(model, 2, 10_000, &tech).time_per_lookup_ps();
        let large = LookupSchedule::plan(model, 2048, 10_000, &tech).time_per_lookup_ps();
        large / small
    };
    let software = ratio(ExecutionModel::WordSerial { lanes: 1 });
    let hardware = ratio(ExecutionModel::Combinational);
    assert!(software > 500.0, "software must scale ~linearly: {software:.0}x");
    assert!(hardware < 2.0, "hardware must stay flat: {hardware:.2}x");
}

#[test]
fn noise_does_not_break_hardware_agreement_within_quantum() {
    // Both sides tolerate sub-quantum corruption: corrupt the table, and
    // the (clean) hardware mirror still agrees with every software lookup
    // because assignments did not move.
    let mut table =
        HdHashTable::builder().dimension(4096).codebook_size(128).seed(34).build().expect("valid");
    for id in 0..24 {
        table.join(ServerId::new(id)).expect("fresh server");
    }
    let (servers, am) = mirror(&table);
    table.inject_bit_flips(10, 77);
    for k in 0..800u64 {
        let request = RequestKey::new(k);
        assert_eq!(
            hardware_lookup(&table, &servers, &am, request),
            table.lookup(request).expect("non-empty pool"),
        );
    }
}
