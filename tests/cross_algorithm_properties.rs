//! Property-based integration tests: invariants every dynamic hash table
//! in the workspace must uphold, exercised across random pool
//! configurations.

use hdhash::prelude::*;
use proptest::prelude::*;

fn build_filled(kind: AlgorithmKind, server_ids: &[u64]) -> Box<dyn NoisyTable + Send> {
    let mut table = kind.build(server_ids.len().max(1) + 8);
    for &id in server_ids {
        table.join(ServerId::new(id)).expect("distinct ids");
    }
    table
}

fn server_ids() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0u64..10_000, 1..24)
        .prop_map(|set| set.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lookups always land on a live server.
    #[test]
    fn lookup_lands_in_pool(ids in server_ids(), keys in proptest::collection::vec(any::<u64>(), 1..50)) {
        for kind in AlgorithmKind::ALL {
            let table = build_filled(kind, &ids);
            for &k in &keys {
                let owner = table.lookup(RequestKey::new(k)).expect("non-empty pool");
                prop_assert!(table.contains(owner), "{kind}: {owner} not in pool");
            }
        }
    }

    /// Join disruption: no request moves between two *old* servers.
    #[test]
    fn join_moves_only_to_newcomer(ids in server_ids(), newcomer in 20_000u64..30_000) {
        let keys: Vec<RequestKey> = (0..300).map(RequestKey::new).collect();
        for kind in [AlgorithmKind::Consistent, AlgorithmKind::Rendezvous, AlgorithmKind::Hd] {
            let mut table = build_filled(kind, &ids);
            let before = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            table.join(ServerId::new(newcomer)).expect("fresh id range");
            let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            for (r, s_before) in before.iter() {
                let s_after = after.server_of(r).expect("captured");
                prop_assert!(
                    s_after == s_before || s_after == ServerId::new(newcomer),
                    "{kind}: {r} moved {s_before} -> {s_after}"
                );
            }
        }
    }

    /// Leave disruption: only the departed server's requests move.
    #[test]
    fn leave_moves_only_victims(ids in server_ids()) {
        prop_assume!(ids.len() >= 2);
        let victim = ids[0];
        let keys: Vec<RequestKey> = (0..300).map(RequestKey::new).collect();
        for kind in [AlgorithmKind::Consistent, AlgorithmKind::Rendezvous, AlgorithmKind::Hd] {
            let mut table = build_filled(kind, &ids);
            let before = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            table.leave(ServerId::new(victim)).expect("present");
            let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            for (r, s_before) in before.iter() {
                if s_before != ServerId::new(victim) {
                    prop_assert_eq!(
                        after.server_of(r),
                        Some(s_before),
                        "{}: {} moved although its server stayed", kind, r
                    );
                }
            }
        }
    }

    /// Noise then clear_noise is always an exact identity on assignments.
    #[test]
    fn clear_noise_restores(ids in server_ids(), flips in 1usize..50, seed in any::<u64>()) {
        let keys: Vec<RequestKey> = (0..200).map(RequestKey::new).collect();
        for kind in AlgorithmKind::ALL {
            let mut table = build_filled(kind, &ids);
            let before = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            table.inject_bit_flips(flips, seed);
            table.clear_noise();
            let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            prop_assert_eq!(remap_fraction(&before, &after), 0.0, "{} not restored", kind);
        }
    }

    /// HD hashing's quantized robustness: any ≤10 flips leave assignments
    /// bit-for-bit identical (the Figure 5 guarantee), for arbitrary pools
    /// and seeds.
    #[test]
    fn hd_assignments_immune_to_ten_flips(ids in server_ids(), seed in any::<u64>()) {
        let keys: Vec<RequestKey> = (0..200).map(RequestKey::new).collect();
        let mut table = build_filled(AlgorithmKind::Hd, &ids);
        let before = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
        table.inject_bit_flips(10, seed);
        let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
        prop_assert_eq!(remap_fraction(&before, &after), 0.0);
    }
}
