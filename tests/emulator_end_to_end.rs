//! Cross-crate integration: the emulator drives every algorithm through
//! the full request vocabulary, exactly as the paper's framework does.

use hdhash::emulator::{Generator, HashTableModule, KeyDistribution, Workload};
use hdhash::prelude::*;

#[test]
fn full_stream_executes_for_every_algorithm() {
    let workload = Workload {
        initial_servers: 32,
        lookups: 2_000,
        keys: KeyDistribution::Uniform,
        seed: 0xE2E,
    };
    let generator = Generator::new(workload);
    for kind in AlgorithmKind::ALL {
        let mut module = HashTableModule::new(kind.build(64));
        let (responses, stats) = module.execute(&generator.requests());
        assert_eq!(stats.failures, 0, "{kind}");
        assert_eq!(stats.lookups, 2_000, "{kind}");
        assert_eq!(stats.controls, 32, "{kind}");
        assert_eq!(responses.len(), 2_032, "{kind}");
    }
}

#[test]
fn churn_schedule_with_batched_buffer() {
    let workload = Workload {
        initial_servers: 16,
        lookups: 3_000,
        keys: KeyDistribution::Zipf { universe: 500, exponent: 1.1 },
        seed: 0xE2E + 1,
    };
    let stream = Generator::new(workload).churn_requests(10);
    for kind in AlgorithmKind::PAPER {
        let mut module = HashTableModule::new(kind.build(64));
        module.enqueue(stream.iter().copied());
        let mut total_failures = 0;
        let mut total_lookups = 0;
        while module.pending() > 0 {
            let (_, stats) = module.drain_batch(256);
            total_failures += stats.failures;
            total_lookups += stats.lookups;
        }
        assert_eq!(total_failures, 0, "{kind}");
        assert_eq!(total_lookups, 3_000, "{kind}");
        assert!(module.table().server_count() >= 16 - 5, "{kind}");
    }
}

#[test]
fn batched_lookup_agrees_with_single_lookup() {
    for kind in AlgorithmKind::ALL {
        let mut table = kind.build(32);
        for i in 0..32 {
            table.join(ServerId::new(i)).expect("fresh server");
        }
        let keys: Vec<RequestKey> = (0..500).map(RequestKey::new).collect();
        let batched = table.lookup_batch(&keys);
        for (key, batch_result) in keys.iter().zip(batched) {
            assert_eq!(table.lookup(*key), batch_result, "{kind} diverged on {key}");
        }
    }
}

#[test]
fn all_algorithms_spread_load_across_servers() {
    let keys: Vec<RequestKey> =
        (0..20_000u64).map(|k| RequestKey::new(hdhash::hashfn::mix64(k))).collect();
    for kind in AlgorithmKind::ALL {
        let mut table = kind.build(16);
        for i in 0..16 {
            table.join(ServerId::new(i)).expect("fresh server");
        }
        let loads =
            Assignment::capture(&*table, keys.iter().copied()).expect("non-empty").load_by_server();
        // HD load shares follow arc lengths between occupied codebook
        // slots (hash collisions can shadow a server entirely), so its
        // floor is looser — consistent with its χ² in the paper's Fig. 6.
        let floor = match kind {
            AlgorithmKind::Hd | AlgorithmKind::HdParallel => 11,
            _ => 14,
        };
        assert!(loads.len() >= floor, "{kind} starves servers: {loads:?}");
        let max = loads.values().max().copied().expect("non-empty");
        assert!(max < 20_000 / 2, "{kind} hot-spots one server");
    }
}

#[test]
fn leave_then_rejoin_restores_assignment() {
    for kind in AlgorithmKind::PAPER {
        let mut table = kind.build(32);
        for i in 0..24 {
            table.join(ServerId::new(i)).expect("fresh server");
        }
        let keys: Vec<RequestKey> = (0..3_000).map(RequestKey::new).collect();
        let before = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
        table.leave(ServerId::new(11)).expect("present");
        table.join(ServerId::new(11)).expect("fresh again");
        let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
        assert_eq!(
            remap_fraction(&before, &after),
            0.0,
            "{kind}: leave+rejoin must be a no-op"
        );
    }
}
