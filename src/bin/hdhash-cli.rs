//! `hdhash-cli` — an interactive / scriptable dynamic hash table shell.
//!
//! Drives any algorithm in the workspace through a tiny command language,
//! for demos and ad-hoc experiments:
//!
//! ```text
//! $ cargo run --release --bin hdhash-cli
//! > new hd 64            # also: modular|consistent|rendezvous|maglev|hd-parallel
//! > join 1 2 3 4
//! > lookup 42 99
//! > spread 10000         # route 10k keys, print load distribution + chi^2
//! > snapshot 10000       # remember the current assignment
//! > noise 10             # inject 10 bit errors
//! > diff 10000           # mismatch % against the snapshot
//! > clear                # clear injected noise
//! > leave 3
//! > stats
//! > quit
//! ```
//!
//! Commands are also accepted on stdin non-interactively:
//! `echo "new hd 8\njoin 1 2\nlookup 5" | hdhash-cli`.

use std::io::{BufRead, Write};

use hdhash::prelude::*;

/// The shell's mutable state.
struct Shell {
    table: Option<Box<dyn NoisyTable + Send>>,
    snapshot: Option<Assignment>,
    noise_seed: u64,
}

impl Shell {
    fn new() -> Self {
        Self { table: None, snapshot: None, noise_seed: 1 }
    }

    fn table_mut(&mut self) -> Result<&mut (dyn NoisyTable + Send), String> {
        match self.table.as_deref_mut() {
            Some(t) => Ok(t),
            None => Err("no table; run `new <algorithm> [capacity]` first".into()),
        }
    }

    fn table(&self) -> Result<&(dyn NoisyTable + Send), String> {
        match self.table.as_deref() {
            Some(t) => Ok(t),
            None => Err("no table; run `new <algorithm> [capacity]` first".into()),
        }
    }

    /// Executes one command line; returns the text to print or an error.
    fn execute(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let Some(command) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        match command {
            "help" => Ok(HELP.trim().to_string()),
            "new" => self.cmd_new(&args),
            "join" => self.cmd_membership(&args, true),
            "leave" => self.cmd_membership(&args, false),
            "lookup" => self.cmd_lookup(&args),
            "spread" => self.cmd_spread(&args),
            "snapshot" => self.cmd_snapshot(&args),
            "diff" => self.cmd_diff(&args),
            "noise" => self.cmd_noise(&args, false),
            "burst" => self.cmd_noise(&args, true),
            "clear" => {
                self.table_mut()?.clear_noise();
                Ok("noise cleared".into())
            }
            "stats" => self.cmd_stats(),
            "serve" => Self::cmd_serve(&args),
            "replicate" => Self::cmd_replicate(&args),
            "accel" => self.cmd_accel(&args),
            other => Err(format!("unknown command `{other}`; try `help`")),
        }
    }

    fn cmd_new(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args.first().ok_or("usage: new <algorithm> [capacity]")?;
        let capacity: usize = match args.get(1) {
            Some(c) => c.parse().map_err(|_| format!("bad capacity `{c}`"))?,
            None => 64,
        };
        let kind = AlgorithmKind::ALL
            .into_iter()
            .find(|k| k.name() == *name)
            .ok_or_else(|| {
                let names: Vec<&str> = AlgorithmKind::ALL.iter().map(|k| k.name()).collect();
                format!("unknown algorithm `{name}`; one of {names:?}")
            })?;
        self.table = Some(kind.build(capacity));
        self.snapshot = None;
        Ok(format!("created `{name}` table with capacity {capacity}"))
    }

    fn cmd_membership(&mut self, args: &[&str], join: bool) -> Result<String, String> {
        if args.is_empty() {
            return Err(format!("usage: {} <id>...", if join { "join" } else { "leave" }));
        }
        let mut applied = 0;
        for arg in args {
            let id: u64 = arg.parse().map_err(|_| format!("bad server id `{arg}`"))?;
            let result = if join {
                self.table_mut()?.join(ServerId::new(id))
            } else {
                self.table_mut()?.leave(ServerId::new(id))
            };
            result.map_err(|e| e.to_string())?;
            applied += 1;
        }
        Ok(format!(
            "{} {applied} server(s); pool size {}",
            if join { "joined" } else { "removed" },
            self.table()?.server_count()
        ))
    }

    fn cmd_lookup(&mut self, args: &[&str]) -> Result<String, String> {
        if args.is_empty() {
            return Err("usage: lookup <key>...".into());
        }
        let mut out = String::new();
        for arg in args {
            let key: u64 = arg.parse().map_err(|_| format!("bad key `{arg}`"))?;
            let server =
                self.table()?.lookup(RequestKey::new(key)).map_err(|e| e.to_string())?;
            out.push_str(&format!("r{key} -> {server}\n"));
        }
        out.pop();
        Ok(out)
    }

    fn workload(n: usize) -> Vec<RequestKey> {
        (0..n as u64).map(|k| RequestKey::new(hdhash::hashfn::mix64(k))).collect()
    }

    fn cmd_spread(&mut self, args: &[&str]) -> Result<String, String> {
        let n: usize = args.first().unwrap_or(&"10000").parse().map_err(|_| "bad count")?;
        let keys = Self::workload(n);
        let assignment =
            Assignment::capture(self.table()?, keys).map_err(|e| e.to_string())?;
        let loads = assignment.load_by_server();
        let servers = self.table()?.server_count();
        let counts: Vec<usize> = self
            .table()?
            .servers()
            .iter()
            .map(|s| loads.get(s).copied().unwrap_or(0))
            .collect();
        let chi2 = hdhash::emulator::stats::chi_squared_uniform(&counts);
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        Ok(format!(
            "{n} keys over {servers} servers: min {min} / mean {:.0} / max {max}, chi^2 = {chi2:.1}",
            n as f64 / servers as f64
        ))
    }

    fn cmd_snapshot(&mut self, args: &[&str]) -> Result<String, String> {
        let n: usize = args.first().unwrap_or(&"10000").parse().map_err(|_| "bad count")?;
        let keys = Self::workload(n);
        self.snapshot =
            Some(Assignment::capture(self.table()?, keys).map_err(|e| e.to_string())?);
        Ok(format!("snapshot of {n} assignments taken"))
    }

    fn cmd_diff(&mut self, args: &[&str]) -> Result<String, String> {
        let n: usize = args.first().unwrap_or(&"10000").parse().map_err(|_| "bad count")?;
        let reference = self.snapshot.as_ref().ok_or("no snapshot; run `snapshot` first")?;
        let keys = Self::workload(n);
        let current = Assignment::capture(self.table()?, keys).map_err(|e| e.to_string())?;
        Ok(format!(
            "{:.3}% of assignments differ from the snapshot",
            100.0 * remap_fraction(reference, &current)
        ))
    }

    fn cmd_noise(&mut self, args: &[&str], burst: bool) -> Result<String, String> {
        let amount: usize = args.first().unwrap_or(&"10").parse().map_err(|_| "bad amount")?;
        let seed = match args.get(1) {
            Some(s) => s.parse().map_err(|_| "bad seed")?,
            None => {
                self.noise_seed += 1;
                self.noise_seed
            }
        };
        let flipped = if burst {
            self.table_mut()?.inject_burst(amount, seed)
        } else {
            self.table_mut()?.inject_bit_flips(amount, seed)
        };
        Ok(format!(
            "injected {flipped} bit error(s) ({}) with seed {seed}",
            if burst { "one burst" } else { "independent" }
        ))
    }

    fn cmd_stats(&mut self) -> Result<String, String> {
        let table = self.table()?;
        Ok(format!(
            "algorithm: {}\nservers:   {}\nsurface:   {} bits of vulnerable state",
            table.algorithm_name(),
            table.server_count(),
            table.noise_surface_bits()
        ))
    }

    /// `serve [shards] [workers] [requests] [scheduler] [--metrics
    /// <path>]`: runs a closed-loop burst through the sharded serving
    /// engine (tickets are reaped through the async front end) and
    /// prints throughput plus per-shard batch-coalescing and latency
    /// metrics. `scheduler` is `shared-queue` (default) or
    /// `work-stealing`. With `--metrics`, tracing is sampled at 1/64 and
    /// the unified Prometheus exposition is rewritten to `path` every
    /// 200ms during the burst plus once at the end.
    fn cmd_serve(args: &[&str]) -> Result<String, String> {
        let (args, metrics_path) = split_metrics_flag(args)?;
        let parse = |i: usize, default: usize| -> Result<usize, String> {
            match args.get(i) {
                Some(v) => v.parse().map_err(|_| format!("bad number `{v}`")),
                None => Ok(default),
            }
        };
        let shards = parse(0, 4)?.max(1);
        let workers = parse(1, 2)?.max(1);
        let requests = parse(2, 20_000)?;
        let scheduler = match args.get(3) {
            Some(name) => SchedulerKind::parse(name).ok_or_else(|| {
                format!("unknown scheduler `{name}`; shared-queue or work-stealing")
            })?,
            None => SchedulerKind::SharedQueue,
        };
        let trace = if metrics_path.is_some() {
            hdhash::obs::TraceConfig::sampled(64)
        } else {
            hdhash::obs::TraceConfig::disabled()
        };
        let config = hdhash::serve::ServeConfig {
            shards,
            workers,
            dimension: 4096,
            codebook_size: 256,
            scheduler,
            trace,
            ..hdhash::serve::ServeConfig::default()
        };
        let mut engine =
            hdhash::serve::ServeEngine::new(config).map_err(|e| e.to_string())?;
        for id in 0..32u64 {
            engine.join(ServerId::new(id)).map_err(|e| e.to_string())?;
        }
        let workload = hdhash::emulator::Workload {
            initial_servers: 0,
            lookups: requests,
            ..hdhash::emulator::Workload::default()
        };
        let stream = hdhash::emulator::Generator::new(workload).lookup_requests();
        let dump = |engine: &hdhash::serve::ServeEngine, path: &str| {
            let mut snap = hdhash::obs::TelemetrySnapshot::new();
            hdhash::serve::telemetry::export_engine(&mut snap, &[], &engine.metrics());
            hdhash::serve::telemetry::export_tracer(&mut snap, &[], &engine.tracer().stats());
            std::fs::write(path, snap.to_prometheus())
        };
        let report = match metrics_path.as_deref() {
            None => hdhash::serve::drive(&engine, &stream, 512),
            Some(path) => {
                let done = std::sync::atomic::AtomicBool::new(false);
                std::thread::scope(|scope| {
                let report = scope.spawn(|| {
                    let report = hdhash::serve::drive(&engine, &stream, 512);
                    done.store(true, std::sync::atomic::Ordering::Release);
                    report
                });
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let _ = dump(&engine, path);
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
                report.join().expect("drive thread panicked")
                })
            }
        };
        engine.shutdown();
        if let Some(path) = metrics_path.as_deref() {
            dump(&engine, path).map_err(|e| format!("write metrics to {path}: {e}"))?;
        }
        let metrics = engine.metrics();
        let mut out = format!(
            "served {} lookups over {} shard(s) × {} worker(s) [{}]: {:.0} req/s, \
             {} rejected\n",
            report.completed,
            shards,
            workers,
            metrics.scheduler,
            report.throughput().requests_per_sec(),
            report.rejected,
        );
        if let Some(latency) = report.latency {
            out.push_str(&format!(
                "latency p50 {:?} / p90 {:?} / p99 {:?} / max {:?}\n",
                latency.p50, latency.p90, latency.p99, latency.max
            ));
        }
        for shard in &metrics.shards {
            out.push_str(&format!(
                "  shard {}: epoch {}, {} member(s), {} served in {} batch(es), mean fill {:.1}\n",
                shard.shard, shard.epoch, shard.members, shard.served, shard.batches,
                shard.mean_batch_fill
            ));
        }
        if let Some(path) = metrics_path.as_deref() {
            out.push_str(&format!("telemetry exposition written to {path}\n"));
        }
        out.pop();
        Ok(out)
    }

    /// Anti-entropy demo: two replica engines diverge under local churn,
    /// then signature-driven gossip reconciles them round by round.
    fn cmd_replicate(args: &[&str]) -> Result<String, String> {
        use hdhash::serve::gossip::{converged, run_round, GossipConfig, GossipNode};
        use hdhash::serve::replication::ReplicatedEngine;
        use hdhash::serve::transport::{InProcessNetwork, ReplicaId};
        use std::sync::Arc;

        let parse = |i: usize, default: usize| -> Result<usize, String> {
            match args.get(i) {
                Some(v) => v.parse().map_err(|_| format!("bad number `{v}`")),
                None => Ok(default),
            }
        };
        let shards = parse(0, 2)?.max(1);
        let churn_ops = parse(1, 24)?;
        let config = hdhash::serve::ServeConfig {
            shards,
            workers: 1,
            dimension: 4096,
            codebook_size: 256,
            ..hdhash::serve::ServeConfig::default()
        };
        let network = InProcessNetwork::new();
        let peers = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let mut replicas = Vec::new();
        let mut nodes = Vec::new();
        for &id in &peers {
            let replica = Arc::new(
                ReplicatedEngine::new(id, config).map_err(|e| e.to_string())?,
            );
            nodes.push(GossipNode::new(
                Arc::clone(&replica),
                network.endpoint(id),
                peers.clone(),
                GossipConfig::default(),
            ));
            replicas.push(replica);
        }
        // Shared base membership, then divergent churn on each replica.
        for id in 0..16u64 {
            for replica in &replicas {
                replica.join(ServerId::new(id)).map_err(|e| e.to_string())?;
            }
        }
        for op in 0..churn_ops as u64 {
            let replica = &replicas[(op % 2) as usize];
            let _ = if op % 3 == 0 {
                replica.leave(ServerId::new(op % 16))
            } else {
                replica.join(ServerId::new(100 + op))
            };
        }
        let distance = |a: &ReplicatedEngine, b: &ReplicatedEngine| -> usize {
            a.shard_signatures()
                .iter()
                .zip(b.shard_signatures())
                .map(|(x, y)| x.hamming_distance(&y))
                .sum()
        };
        let mut out = format!(
            "2 replicas × {shards} shard(s), {churn_ops} divergent ops; \
             signature distance {} bit(s)\n",
            distance(&replicas[0], &replicas[1]),
        );
        let mut rounds = 0;
        while !converged(&[&replicas[0], &replicas[1]]) {
            rounds += 1;
            if rounds > 16 {
                return Err("gossip failed to converge in 16 rounds".into());
            }
            run_round(&nodes);
            out.push_str(&format!(
                "round {rounds}: signature distance {} bit(s)\n",
                distance(&replicas[0], &replicas[1]),
            ));
        }
        let metrics = nodes[0].metrics();
        out.push_str(&format!(
            "converged in {rounds} round(s): {} member(s), byte-identical signatures; \
             replica0 sent {} B ({} advert(s), {} sync(s), {} record(s) adopted)\n",
            replicas[0].member_ids().len(),
            metrics.bytes_sent,
            metrics.adverts_sent,
            metrics.syncs_sent,
            metrics.records_adopted,
        ));
        // Operational payoff, checked through the async front end: the
        // converged replicas route a probe burst identically.
        let agreeing = hdhash::serve::executor::block_on(async {
            let mut agreeing = 0usize;
            for k in 0..64u64 {
                let a = replicas[0]
                    .submit(RequestKey::new(k))
                    .map_err(|e| e.to_string())?
                    .await;
                let b = replicas[1]
                    .submit(RequestKey::new(k))
                    .map_err(|e| e.to_string())?
                    .await;
                if a.result == b.result {
                    agreeing += 1;
                }
            }
            Ok::<usize, String>(agreeing)
        })?;
        out.push_str(&format!(
            "post-convergence probe: {agreeing}/64 lookups route identically \
             (awaited on the block-on executor)"
        ));
        Ok(out)
    }

    fn cmd_accel(&mut self, args: &[&str]) -> Result<String, String> {
        // Pool size from the live table if present, else the argument,
        // else the paper's 512.
        let servers = match args.first() {
            Some(s) => s.parse().map_err(|_| format!("bad server count `{s}`"))?,
            None => match self.table.as_deref() {
                Some(t) if t.server_count() > 0 => t.server_count(),
                _ => 512,
            },
        };
        let dimension: usize = match args.get(1) {
            Some(d) => d.parse().map_err(|_| format!("bad dimension `{d}`"))?,
            None => 10_000,
        };
        let mut out = format!(
            "single-cycle HDC inference for {servers} servers, d = {dimension}:\n"
        );
        for tech in TechnologyParams::presets() {
            let schedule =
                LookupSchedule::plan(ExecutionModel::Combinational, servers, dimension, &tech);
            out.push_str(&format!(
                "  {:>10}: {:>8.1} ns/lookup ({:>7.1} MHz single-cycle clock)\n",
                tech.name,
                schedule.time_per_lookup_ps() / 1000.0,
                1.0e6 / schedule.cycle_time_ps,
            ));
        }
        out.pop();
        Ok(out)
    }
}

/// Splits a trailing `--metrics <path>` flag off a positional argv,
/// returning the remaining positionals and the path (if given).
fn split_metrics_flag<'a>(args: &[&'a str]) -> Result<(Vec<&'a str>, Option<String>), String> {
    let mut positional = Vec::new();
    let mut path = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        if arg == "--metrics" {
            let p = it.next().ok_or("--metrics needs a <path> argument")?;
            path = Some((*p).to_string());
        } else {
            positional.push(arg);
        }
    }
    Ok((positional, path))
}

/// Entry point of `hdhash-cli stats [requests] [format]` — one unified
/// [`TelemetrySnapshot`](hdhash::obs::TelemetrySnapshot) spanning every
/// layer: a traced serving burst (engine + tracer), a 2-replica
/// in-process gossip convergence (gossip), a loopback TCP exchange
/// (tcp), and a seeded lossy chaos run (chaos). `format` is
/// `prometheus` (default) or `json`.
fn stats_main(args: &[String]) -> i32 {
    match run_stats(args) {
        Ok(out) => {
            println!("{out}");
            0
        }
        Err(e) => {
            eprintln!("stats error: {e}");
            1
        }
    }
}

fn run_stats(args: &[String]) -> Result<String, String> {
    use hdhash::obs::{TelemetrySnapshot, TraceConfig};
    use hdhash::serve::chaos::{ChaosNetwork, FaultPlan, LinkFaults};
    use hdhash::serve::gossip::{converged, run_round, GossipConfig, GossipMessage, GossipNode};
    use hdhash::serve::replication::ReplicatedEngine;
    use hdhash::serve::tcp::{TcpConfig, TcpNetwork};
    use hdhash::serve::telemetry;
    use hdhash::serve::transport::{InProcessNetwork, ReplicaId, Transport};
    use std::sync::Arc;
    use std::time::Duration;

    let requests: usize = match args.first() {
        Some(v) => v.parse().map_err(|_| format!("bad request count `{v}`"))?,
        None => 2_000,
    };
    let format = args.get(1).map_or("prometheus", String::as_str);
    if format != "prometheus" && format != "json" {
        return Err(format!("unknown format `{format}`; prometheus or json"));
    }
    let mut out = TelemetrySnapshot::new();

    // Engine + tracer: a closed-loop burst with every request sampled.
    let config = hdhash::serve::ServeConfig {
        shards: 2,
        workers: 2,
        dimension: 2048,
        codebook_size: 64,
        trace: TraceConfig::sampled(1),
        ..hdhash::serve::ServeConfig::default()
    };
    let mut engine = hdhash::serve::ServeEngine::new(config).map_err(|e| e.to_string())?;
    for id in 0..32u64 {
        engine.join(ServerId::new(id)).map_err(|e| e.to_string())?;
    }
    let workload = hdhash::emulator::Workload {
        initial_servers: 0,
        lookups: requests,
        ..hdhash::emulator::Workload::default()
    };
    let stream = hdhash::emulator::Generator::new(workload).lookup_requests();
    let _ = hdhash::serve::drive(&engine, &stream, 256);
    engine.shutdown();
    telemetry::export_engine(&mut out, &[], &engine.metrics());
    telemetry::export_tracer(&mut out, &[], &engine.tracer().stats());

    // Gossip: two in-process replicas diverge, then converge.
    let replica_config = hdhash::serve::ServeConfig {
        shards: 2,
        workers: 1,
        dimension: 1024,
        codebook_size: 32,
        ..hdhash::serve::ServeConfig::default()
    };
    let network = InProcessNetwork::new();
    let peers = vec![ReplicaId::new(0), ReplicaId::new(1)];
    let replicas: Vec<Arc<ReplicatedEngine>> = peers
        .iter()
        .map(|&id| {
            ReplicatedEngine::new(id, replica_config).map(Arc::new).map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    let nodes: Vec<_> = peers
        .iter()
        .zip(&replicas)
        .map(|(&id, replica)| {
            GossipNode::new(
                Arc::clone(replica),
                network.endpoint(id),
                peers.clone(),
                GossipConfig::default(),
            )
        })
        .collect();
    for id in 0..8u64 {
        replicas[0].join(ServerId::new(id)).map_err(|e| e.to_string())?;
    }
    for id in 5..12u64 {
        replicas[1].join(ServerId::new(id)).map_err(|e| e.to_string())?;
    }
    let mut rounds = 0;
    while !converged(&[&replicas[0], &replicas[1]]) {
        rounds += 1;
        if rounds > 32 {
            return Err("gossip failed to converge in 32 rounds".into());
        }
        run_round(&nodes);
    }
    for (i, node) in nodes.iter().enumerate() {
        let idx = i.to_string();
        telemetry::export_gossip(&mut out, &[("replica", idx.as_str())], &node.metrics());
    }

    // TCP: one advert across a real loopback socket pair.
    let a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", TcpConfig::default())
        .map_err(|e| e.to_string())?;
    let b = TcpNetwork::bind(ReplicaId::new(1), "127.0.0.1:0", TcpConfig::default())
        .map_err(|e| e.to_string())?;
    a.add_peer(ReplicaId::new(1), b.local_addr());
    let (ea, eb) = (a.endpoint(), b.endpoint());
    ea.send(
        ReplicaId::new(1),
        GossipMessage::Advert { round: 1, signatures: Vec::new(), ack: None },
    )
    .map_err(|e| e.to_string())?;
    if eb.recv_timeout(Duration::from_secs(10)).is_none() {
        return Err("loopback TCP advert never arrived".into());
    }
    telemetry::export_tcp(&mut out, &[("replica", "0")], &a.stats());

    // Chaos: a seeded lossy link, counters reconciling by construction.
    let net = ChaosNetwork::new(FaultPlan::new(0x57A75).with_default_link(LinkFaults::lossy(250)));
    let ca = net.endpoint(ReplicaId::new(0));
    let cb = net.endpoint(ReplicaId::new(1));
    for round in 0..40 {
        ca.send(
            ReplicaId::new(1),
            GossipMessage::Advert { round, signatures: Vec::new(), ack: None },
        )
        .map_err(|e| e.to_string())?;
    }
    while cb.try_recv().is_some() {}
    telemetry::export_chaos(&mut out, &[], &net.stats());

    Ok(if format == "json" { out.to_json() } else { out.to_prometheus() })
}

/// Entry point of `hdhash-cli simulate <scenario> [--seed N] [--metrics
/// <path>]` — runs one catalog scenario (see `docs/SCENARIOS.md`) through
/// the scenario engine and prints its per-phase trajectory. With
/// `--metrics`, tracing samples at 1/64 and the unified Prometheus
/// exposition is rewritten to `path` at every phase boundary (the
/// scenario clock is quiescent there, so the dump never perturbs the
/// deterministic counters). `SCENARIO_SEED` overrides the default seed;
/// `--seed` overrides both.
fn simulate_main(args: &[String]) -> i32 {
    match run_simulate(args) {
        Ok(out) => {
            println!("{out}");
            0
        }
        Err(e) => {
            eprintln!("simulate error: {e}");
            1
        }
    }
}

fn run_simulate(args: &[String]) -> Result<String, String> {
    use hdhash::serve::scenario::{self, catalog, Scenario, ScenarioConfig};

    let mut name = None;
    let mut seed = std::env::var("SCENARIO_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x5CE4_A210);
    let mut metrics_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a <u64> argument")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--metrics" => {
                metrics_path =
                    Some(it.next().ok_or("--metrics needs a <path> argument")?.clone());
            }
            other if name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
    let name = name.ok_or_else(|| {
        format!("usage: simulate <scenario> [--seed N] [--metrics path]; one of {names:?}")
    })?;
    let s = Scenario::by_name(&name)
        .ok_or_else(|| format!("unknown scenario `{name}`; one of {names:?}"))?;

    let mut config = ScenarioConfig::small();
    if metrics_path.is_some() {
        config.engine.trace = hdhash::obs::TraceConfig::sampled(64);
    }
    let mut out = format!(
        "scenario {name}: {} tick(s) × {} replica(s), seed {seed} \
         (replay: SCENARIO_SEED={seed} hdhash-cli simulate {name})\n",
        s.ticks, s.replicas
    );
    let report = scenario::run_with_observer(&s, &config, seed, |phase, engine| {
        out.push_str(&format!(
            "  phase {}: {:>6} offered, {:>6} done, {:>5} shed, members {:>3}, \
             epoch {:>3} (lag {}), {:>8.0} req/s",
            phase.phase,
            phase.arrivals,
            phase.completed,
            phase.shed,
            phase.members,
            phase.epoch_max,
            phase.epoch_lag,
            phase.throughput_rps(),
        ));
        if let Some(p99) = phase.latency.quantile(0.99) {
            out.push_str(&format!(", p99 {:.1} µs", p99 as f64 / 1e3));
        }
        out.push('\n');
        if let Some(path) = metrics_path.as_deref() {
            let mut snap = hdhash::obs::TelemetrySnapshot::new();
            let phase_label = phase.phase.to_string();
            let labels = [("scenario", name.as_str()), ("phase", phase_label.as_str())];
            hdhash::serve::telemetry::export_engine(&mut snap, &labels, &engine.metrics());
            hdhash::serve::telemetry::export_tracer(&mut snap, &labels, &engine.tracer().stats());
            if let Err(e) = std::fs::write(path, snap.to_prometheus()) {
                out.push_str(&format!("  (metrics write to {path} failed: {e})\n"));
            }
        }
    })
    .map_err(|e| e.to_string())?;
    out.push_str(&format!(
        "run fingerprint {:#018x}; {} completed, {} shed, {} hung, {} epoch mismatch(es)",
        report.fingerprint(),
        report.total(|p| p.completed),
        report.total(|p| p.shed),
        report.hung_tickets,
        report.epoch_mismatches,
    ));
    if s.replicas > 1 {
        out.push_str(&format!(
            "\nreplica set {} after {} recovery round(s)",
            if report.converged { "converged (byte-identical signatures)" } else { "DIVERGED" },
            report.recovery_rounds,
        ));
    }
    if let Some(path) = metrics_path.as_deref() {
        out.push_str(&format!("\ntelemetry exposition written to {path}"));
    }
    Ok(out)
}

const HELP: &str = r"
commands:
  new <algorithm> [capacity]   create a table (modular|consistent|rendezvous|hd|hd-parallel|maglev)
  join <id>...                 add servers
  leave <id>...                remove servers
  lookup <key>...              route request keys
  spread [n]                   route n keys (default 10000), print balance + chi^2
  snapshot [n]                 remember the current assignment of n keys
  diff [n]                     mismatch %% of current assignment vs snapshot
  noise <bits> [seed]          inject independent bit errors into stored state
  burst <bits> [seed]          inject one adjacent-bit burst (MCU)
  clear                        repair all injected noise
  stats                        table summary
  serve [shards] [workers] [n] [sched]  closed-loop burst through the serving engine
                               (sched: shared-queue | work-stealing); add
                               --metrics <path> to sample tracing at 1/64 and
                               periodically dump the Prometheus exposition
  replicate [shards] [ops]     anti-entropy demo: diverge two replicas, gossip to convergence
  accel [servers] [d]          projected single-cycle lookup time on HDC hardware
  quit                         exit

process modes (argv, not shell commands):
  hdhash-cli stats [n] [format]    run traced bursts through every layer and
                                   print one unified telemetry snapshot
                                   (format: prometheus | json)
  hdhash-cli cluster [n] [churn]   spawn n replica processes gossiping over
                                   loopback TCP, churn, converge, SIGKILL one,
                                   restart it, and prove reconvergence; prints
                                   a per-replica telemetry table at teardown
  hdhash-cli cluster-replica ...   one replica process (spawned by `cluster`);
                                   add --metrics <path> [interval_ms] to
                                   periodically dump its Prometheus exposition
  hdhash-cli simulate <scenario>   run one catalog scenario (steady | diurnal |
                                   flash-crowd | zipf-hotspot | correlated-bursts |
                                   churn-storm | crash-rejoin) through the
                                   scenario engine; --seed N pins the run
                                   (SCENARIO_SEED env works too), --metrics
                                   <path> dumps the Prometheus exposition at
                                   every phase boundary
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cluster") => std::process::exit(cluster::driver_main(&args[1..])),
        Some("cluster-replica") => std::process::exit(cluster::replica_main(&args[1..])),
        Some("stats") => std::process::exit(stats_main(&args[1..])),
        Some("simulate") => std::process::exit(simulate_main(&args[1..])),
        _ => {}
    }
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut shell = Shell::new();
    if interactive {
        println!("hdhash-cli — type `help` for commands");
    }
    loop {
        if interactive {
            print!("> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match shell.execute(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(err) => println!("error: {err}"),
        }
    }
}

/// Rough interactivity probe without extra dependencies: non-interactive
/// runs set `HDHASH_CLI_BATCH=1` or pipe stdin (detected by the first
/// failed prompt being harmless either way).
fn atty_stdin() -> bool {
    std::env::var_os("HDHASH_CLI_BATCH").is_none()
}

/// Multi-process cluster mode: a driver (`hdhash-cli cluster`) that
/// spawns N replica processes (`hdhash-cli cluster-replica`), each
/// running a [`ReplicatedEngine`](hdhash::serve::replication) gossiping
/// over framed loopback TCP, and a crash-recovery script: churn,
/// converge, SIGKILL one replica mid-churn, restart it on a fresh port,
/// and prove the cluster reconverges to byte-identical per-shard
/// signatures.
///
/// The driver↔replica protocol is line-oriented over stdin/stdout (one
/// response line per command), so a supervisor harness — or a human with
/// a pipe — can drive a replica directly:
///
/// ```text
/// $ hdhash-cli cluster-replica 0 2 1024 128 1789 20
/// listening 40123            # OS-assigned loopback port
/// peer 1 127.0.0.1:40124     -> ok
/// start                      -> ok
/// join 7                     -> ok
/// members                    -> members 7
/// sig                        -> sig <hex per shard>
/// metrics                    -> metrics frames_sent=… bytes_sent=…
/// quit                       -> bye
/// ```
mod cluster {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use hdhash::serve::gossip::{GossipConfig, GossipNode};
    use hdhash::serve::replication::ReplicatedEngine;
    use hdhash::serve::tcp::{TcpConfig, TcpEndpoint, TcpNetwork};
    use hdhash::serve::transport::ReplicaId;
    use hdhash::serve::ServeConfig;
    use hdhash::table::{RequestKey, ServerId};

    /// Rewrites the replica's whole Prometheus exposition to `path`
    /// (engine, gossip once started, TCP, tracer — all labeled with the
    /// replica id). Best-effort: a failed write is retried next tick.
    fn write_exposition(
        path: &str,
        replica: &ReplicatedEngine,
        endpoint: &TcpEndpoint,
        gossip: Option<&GossipNode<TcpEndpoint>>,
    ) {
        use hdhash::serve::telemetry;
        let mut snap = hdhash::obs::TelemetrySnapshot::new();
        let id = replica.id().get().to_string();
        let labels = [("replica", id.as_str())];
        telemetry::export_engine(&mut snap, &labels, &replica.engine().metrics());
        if let Some(node) = gossip {
            telemetry::export_gossip(&mut snap, &labels, &node.metrics());
        }
        telemetry::export_tcp(&mut snap, &labels, &endpoint.stats());
        telemetry::export_tracer(&mut snap, &labels, &replica.engine().tracer().stats());
        let _ = std::fs::write(path, snap.to_prometheus());
    }

    /// Socket deadlines tuned for loopback: fast enough that a SIGKILLed
    /// peer is noticed in tens of milliseconds, long enough to never
    /// false-positive on a loaded CI box.
    fn tcp_config() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(400),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(1),
            reconnect_base: Duration::from_millis(25),
            reconnect_cap: Duration::from_millis(500),
            outbox_capacity: 1024,
        }
    }

    fn parse<T: std::str::FromStr>(args: &[String], at: usize, name: &str) -> Result<T, String> {
        let raw = args.get(at).ok_or_else(|| format!("missing argument <{name}>"))?;
        raw.parse().map_err(|_| format!("bad {name} `{raw}`"))
    }

    // ------------------------------------------------------------------
    // Replica process
    // ------------------------------------------------------------------

    /// Entry point of `hdhash-cli cluster-replica <id> <shards>
    /// <dimension> <codebook> <seed> <period_ms>`.
    pub fn replica_main(args: &[String]) -> i32 {
        match run_replica(args) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("cluster-replica error: {e}");
                1
            }
        }
    }

    fn run_replica(args: &[String]) -> Result<(), String> {
        let id: u64 = parse(args, 0, "id")?;
        let shards: usize = parse(args, 1, "shards")?;
        let dimension: usize = parse(args, 2, "dimension")?;
        let codebook: usize = parse(args, 3, "codebook")?;
        let seed: u64 = parse(args, 4, "seed")?;
        let period_ms: u64 = parse(args, 5, "period_ms")?;
        // Optional: `--metrics <path> [interval_ms]` — a background
        // thread rewrites the whole Prometheus exposition to `path`
        // every interval (default 500ms), and tracing turns on at 1/64.
        let metrics_out = match args.iter().position(|a| a == "--metrics") {
            None => None,
            Some(at) => {
                let path = args
                    .get(at + 1)
                    .filter(|p| !p.starts_with("--"))
                    .ok_or("--metrics needs a <path> argument")?
                    .clone();
                let interval: u64 =
                    args.get(at + 2).map_or(Ok(500), |v| {
                        v.parse().map_err(|_| format!("bad interval `{v}`"))
                    })?;
                Some((path, Duration::from_millis(interval.max(20))))
            }
        };
        let local = ReplicaId::new(id);
        let network =
            TcpNetwork::bind(local, "127.0.0.1:0", tcp_config()).map_err(|e| e.to_string())?;
        let config = ServeConfig {
            shards,
            workers: 1,
            batch_capacity: 16,
            queue_capacity: 256,
            dimension,
            codebook_size: codebook,
            seed,
            scheduler: hdhash::serve::SchedulerKind::default(),
            engine: Default::default(),
            trace: if metrics_out.is_some() {
                hdhash::obs::TraceConfig::sampled(64)
            } else {
                hdhash::obs::TraceConfig::disabled()
            },
        };
        let replica = Arc::new(ReplicatedEngine::new(local, config).map_err(|e| e.to_string())?);
        network.set_tracer(replica.engine().tracer());
        let mut stdout = std::io::stdout();
        let mut respond = |line: &str| -> Result<(), String> {
            writeln!(stdout, "{line}").and_then(|()| stdout.flush()).map_err(|e| e.to_string())
        };
        respond(&format!("listening {}", network.local_addr().port()))?;
        let mut gossip = None;
        // Shared view of the running gossip node for the metrics thread
        // (filled by `start`).
        let gossip_slot: Arc<std::sync::Mutex<Option<Arc<GossipNode<TcpEndpoint>>>>> =
            Arc::new(std::sync::Mutex::new(None));
        let stop_metrics = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let metrics_thread = metrics_out.map(|(path, interval)| {
            let replica = Arc::clone(&replica);
            // Stats-only endpoint: it never receives, so it doesn't
            // compete with the gossip node for inbox messages.
            let endpoint = network.endpoint();
            let slot = Arc::clone(&gossip_slot);
            let stop = Arc::clone(&stop_metrics);
            std::thread::spawn(move || {
                loop {
                    let node = slot.lock().expect("metrics slot poisoned").clone();
                    write_exposition(&path, &replica, &endpoint, node.as_deref());
                    if stop.load(std::sync::atomic::Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(interval);
                }
            })
        });
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            let mut parts = line.split_whitespace();
            let Some(command) = parts.next() else { continue };
            let args: Vec<&str> = parts.collect();
            let reply = match command {
                "peer" => match (args.first(), args.get(1)) {
                    (Some(peer), Some(addr)) => {
                        match (peer.parse::<u64>(), addr.parse::<std::net::SocketAddr>()) {
                            (Ok(peer), Ok(addr)) => {
                                network.add_peer(ReplicaId::new(peer), addr);
                                "ok".to_string()
                            }
                            _ => format!("err bad peer line `{line}`"),
                        }
                    }
                    _ => "err usage: peer <id> <ip:port>".to_string(),
                },
                "start" => {
                    if gossip.is_some() {
                        "err already started".to_string()
                    } else {
                        let node = GossipNode::new(
                            Arc::clone(&replica),
                            network.endpoint(),
                            network.peers(),
                            GossipConfig {
                                period: Duration::from_millis(period_ms),
                                ..GossipConfig::default()
                            },
                        )
                        .with_tracer(replica.engine().tracer());
                        let handle = node.spawn();
                        *gossip_slot.lock().expect("metrics slot poisoned") =
                            Some(handle.shared_node());
                        gossip = Some(handle);
                        "ok".to_string()
                    }
                }
                "join" | "leave" => match args.first().map(|a| a.parse::<u64>()) {
                    Some(Ok(server)) => {
                        let server = ServerId::new(server);
                        let outcome = if command == "join" {
                            replica.join(server)
                        } else {
                            replica.leave(server)
                        };
                        match outcome {
                            Ok(_) => "ok".to_string(),
                            Err(e) => format!("err {e}"),
                        }
                    }
                    _ => format!("err usage: {command} <server-id>"),
                },
                "members" => {
                    let ids: Vec<String> =
                        replica.member_ids().iter().map(|s| s.get().to_string()).collect();
                    format!("members {}", ids.join(" "))
                }
                "serve" => match args.first().map(|a| a.parse::<u64>()) {
                    Some(Ok(n)) => {
                        let (mut ok, mut failed) = (0u64, 0u64);
                        for k in 0..n {
                            match replica.submit(RequestKey::new(k)) {
                                Ok(ticket) => {
                                    if ticket.wait().result.is_ok() {
                                        ok += 1;
                                    } else {
                                        failed += 1;
                                    }
                                }
                                Err(_) => failed += 1,
                            }
                        }
                        format!("served {ok} {failed}")
                    }
                    _ => "err usage: serve <n>".to_string(),
                },
                "telemetry" => {
                    let metrics = replica.engine().metrics();
                    let p99_us = metrics
                        .shards
                        .iter()
                        .filter_map(|s| s.latency.as_ref())
                        .map(|l| l.p99.as_micros() as u64)
                        .max()
                        .unwrap_or(0);
                    let (gossip_bytes, rounds) = match gossip.as_ref() {
                        Some(handle) => {
                            let m = handle.node().metrics();
                            (m.bytes_sent, m.rounds)
                        }
                        None => (0, 0),
                    };
                    format!(
                        "telemetry served={} p99_us={} gossip_bytes={} rounds={} reconnects={}",
                        metrics.completed,
                        p99_us,
                        gossip_bytes,
                        rounds,
                        network.stats().connections_reconnected,
                    )
                }
                "sig" => {
                    let mut out = String::from("sig");
                    for signature in replica.shard_signatures() {
                        out.push(' ');
                        for byte in signature.to_bytes() {
                            out.push_str(&format!("{byte:02x}"));
                        }
                    }
                    out
                }
                "metrics" => {
                    let s = network.stats();
                    format!(
                        "metrics frames_sent={} frames_received={} bytes_sent={} \
                         bytes_received={} connections_established={} connections_accepted={} \
                         connect_failures={} send_errors={} corrupt_frames={} partial_frames={} \
                         peer_backpressure_drops={}",
                        s.frames_sent,
                        s.frames_received,
                        s.bytes_sent,
                        s.bytes_received,
                        s.connections_established,
                        s.connections_accepted,
                        s.connect_failures,
                        s.send_errors,
                        s.corrupt_frames,
                        s.partial_frames,
                        s.peer_backpressure_drops,
                    )
                }
                "quit" => {
                    respond("bye")?;
                    break;
                }
                other => format!("err unknown command `{other}`"),
            };
            respond(&reply)?;
        }
        if let Some(handle) = gossip {
            let _ = handle.stop();
        }
        stop_metrics.store(true, std::sync::atomic::Ordering::Release);
        if let Some(thread) = metrics_thread {
            let _ = thread.join();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Driver process
    // ------------------------------------------------------------------

    /// One spawned replica process, driven over its stdin/stdout pipe.
    struct Replica {
        id: u64,
        port: u16,
        child: Child,
        stdin: ChildStdin,
        lines: std::io::Lines<BufReader<ChildStdout>>,
    }

    impl Replica {
        fn spawn(id: u64, shards: usize, seed: u64, period_ms: u64) -> Result<Self, String> {
            let exe = std::env::current_exe().map_err(|e| e.to_string())?;
            let mut child = Command::new(exe)
                .arg("cluster-replica")
                .args([
                    id.to_string(),
                    shards.to_string(),
                    "1024".into(),
                    "128".into(),
                    seed.to_string(),
                    period_ms.to_string(),
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| format!("spawn replica{id}: {e}"))?;
            let stdin = child.stdin.take().ok_or("no child stdin")?;
            let stdout = child.stdout.take().ok_or("no child stdout")?;
            let mut lines = BufReader::new(stdout).lines();
            let banner = lines
                .next()
                .ok_or_else(|| format!("replica{id} exited before its banner"))?
                .map_err(|e| e.to_string())?;
            let port = banner
                .strip_prefix("listening ")
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("replica{id}: bad banner `{banner}`"))?;
            Ok(Self { id, port, child, stdin, lines })
        }

        fn addr(&self) -> String {
            format!("127.0.0.1:{}", self.port)
        }

        /// Sends one command line and reads its one response line.
        fn command(&mut self, command: &str) -> Result<String, String> {
            writeln!(self.stdin, "{command}")
                .and_then(|()| self.stdin.flush())
                .map_err(|e| format!("replica{}: write `{command}`: {e}", self.id))?;
            self.lines
                .next()
                .ok_or_else(|| format!("replica{}: eof after `{command}`", self.id))?
                .map_err(|e| e.to_string())
        }

        fn expect_ok(&mut self, command: &str) -> Result<(), String> {
            match self.command(command)? {
                ref ok if ok == "ok" => Ok(()),
                other => Err(format!("replica{}: `{command}` -> `{other}`", self.id)),
            }
        }

        /// Real SIGKILL — no shutdown handshake, no flushing.
        fn sigkill(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }

        fn quit(&mut self) {
            let _ = self.command("quit");
            let _ = self.child.wait();
        }
    }

    impl Drop for Replica {
        fn drop(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }

    /// Polls `sig` on every replica until the lines are byte-identical.
    fn await_convergence(
        replicas: &mut [Replica],
        deadline: Duration,
    ) -> Result<(usize, String), String> {
        let start = Instant::now();
        let mut polls = 0;
        loop {
            polls += 1;
            let mut sigs = Vec::with_capacity(replicas.len());
            for replica in replicas.iter_mut() {
                sigs.push(replica.command("sig")?);
            }
            if sigs.windows(2).all(|w| w[0] == w[1]) && sigs[0].len() > "sig".len() {
                return Ok((polls, sigs.remove(0)));
            }
            if start.elapsed() > deadline {
                return Err(format!(
                    "no convergence after {polls} polls ({}ms)",
                    start.elapsed().as_millis()
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Entry point of `hdhash-cli cluster [replicas] [churn]`: the full
    /// crash-recovery story, exit code 0 only if every phase held.
    pub fn driver_main(args: &[String]) -> i32 {
        match run_driver(args) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("[cluster] FAILED: {e}");
                1
            }
        }
    }

    fn run_driver(args: &[String]) -> Result<(), String> {
        let n: u64 = args.first().map_or(Ok(3), |a| {
            a.parse().map_err(|_| format!("bad replica count `{a}`"))
        })?;
        let churn: u64 = args.get(1).map_or(Ok(24), |a| {
            a.parse().map_err(|_| format!("bad churn `{a}`"))
        })?;
        if n < 3 {
            return Err("need at least 3 replicas".into());
        }
        let (shards, seed, period_ms) = (2usize, 0x7EA_C1u64, 20u64);
        println!("[cluster] spawning {n} replica processes (shards={shards} churn={churn})");
        let mut replicas = Vec::new();
        for id in 0..n {
            let replica = Replica::spawn(id, shards, seed, period_ms)?;
            println!("[cluster] replica{id} pid {} listening on {}", replica.child.id(), replica.addr());
            replicas.push(replica);
        }
        // Full-mesh wiring, then start gossip everywhere.
        let addrs: Vec<String> = replicas.iter().map(Replica::addr).collect();
        for (i, replica) in replicas.iter_mut().enumerate() {
            for (j, addr) in addrs.iter().enumerate() {
                if i != j {
                    replica.expect_ok(&format!("peer {j} {addr}"))?;
                }
            }
            replica.expect_ok("start")?;
        }
        // Divergent churn: disjoint server ranges per replica, plus a few
        // conflicting leaves, all applied concurrently with live gossip.
        println!("[cluster] phase 1: divergent churn ({churn} joins per replica)");
        for (i, replica) in replicas.iter_mut().enumerate() {
            let base = i as u64 * 100;
            for server in base..base + churn {
                replica.expect_ok(&format!("join {server}"))?;
            }
        }
        for server in 0..3u64 {
            replicas[0].expect_ok(&format!("leave {server}"))?;
        }
        let (polls, _) = await_convergence(&mut replicas, Duration::from_secs(60))?;
        println!("[cluster] phase 1: converged after {polls} sig polls");
        // SIGKILL the last replica mid-churn: more churn lands on the
        // survivors while the corpse still holds its old port.
        let victim = replicas.len() - 1;
        let victim_id = replicas[victim].id;
        println!("[cluster] phase 2: SIGKILL replica{victim_id}");
        replicas[victim].sigkill();
        for (i, replica) in replicas[..victim].iter_mut().enumerate() {
            let base = 1000 + i as u64 * 100;
            for server in base..base + churn / 2 {
                replica.expect_ok(&format!("join {server}"))?;
            }
        }
        let (polls, _) = await_convergence(&mut replicas[..victim], Duration::from_secs(60))?;
        println!("[cluster] phase 2: survivors reconverged after {polls} sig polls");
        // Restart the victim on a fresh OS-assigned port, re-wire the
        // survivors to it, and demand full-cluster byte-identical
        // signatures again.
        let restarted = Replica::spawn(victim_id, shards, seed, period_ms)?;
        println!(
            "[cluster] phase 3: replica{victim_id} restarted on {} (was {})",
            restarted.addr(),
            replicas[victim].addr()
        );
        replicas[victim] = restarted;
        let new_addr = replicas[victim].addr();
        for survivor in replicas[..victim].iter_mut() {
            survivor.expect_ok(&format!("peer {victim_id} {new_addr}"))?;
        }
        let survivor_lines: Vec<String> = addrs[..victim]
            .iter()
            .enumerate()
            .map(|(j, addr)| format!("peer {j} {addr}"))
            .collect();
        for line in &survivor_lines {
            replicas[victim].expect_ok(line)?;
        }
        replicas[victim].expect_ok("start")?;
        let (polls, sig) = await_convergence(&mut replicas, Duration::from_secs(120))?;
        println!(
            "[cluster] phase 3: full cluster reconverged after {polls} sig polls \
             ({} hex chars/shard set)",
            sig.len() - 4
        );
        // Serve a lookup burst on every replica so the teardown
        // telemetry has real latency numbers behind it.
        for replica in &mut replicas {
            let reply = replica.command("serve 256")?;
            if !reply.starts_with("served ") {
                return Err(format!("replica{}: `serve` -> `{reply}`", replica.id));
            }
        }
        // Wire ledger + orderly teardown.
        let mut total_bytes = 0u64;
        for replica in &mut replicas {
            let metrics = replica.command("metrics")?;
            println!("[cluster] replica{} {metrics}", replica.id);
            for field in metrics.split_whitespace() {
                if let Some(v) = field.strip_prefix("bytes_sent=") {
                    total_bytes += v.parse::<u64>().unwrap_or(0);
                }
            }
        }
        println!("[cluster] total measured wire bytes sent: {total_bytes}");
        // Per-replica telemetry summary: the first place to look when a
        // SIGKILL/restart run fails on CI.
        println!(
            "[cluster] telemetry summary: {:>8} {:>10} {:>8} {:>14} {:>8} {:>12}",
            "replica", "served", "p99_us", "gossip_bytes", "rounds", "reconnects"
        );
        for replica in &mut replicas {
            let line = replica.command("telemetry")?;
            let get = |key: &str| -> String {
                line.split_whitespace()
                    .find_map(|field| field.strip_prefix(key).and_then(|f| f.strip_prefix('=')))
                    .unwrap_or("?")
                    .to_string()
            };
            println!(
                "[cluster] telemetry summary: {:>8} {:>10} {:>8} {:>14} {:>8} {:>12}",
                replica.id,
                get("served"),
                get("p99_us"),
                get("gossip_bytes"),
                get("rounds"),
                get("reconnects"),
            );
        }
        for replica in &mut replicas {
            replica.quit();
        }
        println!("[cluster] ok: {n} processes, SIGKILL + restart, byte-identical signatures");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &[&str]) -> Vec<Result<String, String>> {
        let mut shell = Shell::new();
        script.iter().map(|line| shell.execute(line)).collect()
    }

    #[test]
    fn happy_path_session() {
        let results = run(&[
            "new hd 16",
            "join 1 2 3 4",
            "lookup 42",
            "spread 1000",
            "snapshot 1000",
            "noise 10",
            "diff 1000",
            "clear",
            "stats",
        ]);
        for (i, r) in results.iter().enumerate() {
            assert!(r.is_ok(), "step {i}: {r:?}");
        }
        assert!(results[6].as_ref().expect("diff ok").starts_with("0.000%"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let results = run(&[
            "lookup 1",          // no table yet
            "new bogus",         // unknown algorithm
            "new consistent 8",
            "join x",            // bad id
            "leave 77",          // not joined
            "lookup 1",          // empty pool
            "diff",              // no snapshot
            "frobnicate",        // unknown command
        ]);
        assert!(results[0].is_err());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert!(results[3].is_err());
        assert!(results[4].is_err());
        assert!(results[5].is_err());
        assert!(results[6].is_err());
        assert!(results[7].is_err());
    }

    #[test]
    fn noise_then_diff_shows_consistent_corruption() {
        let mut shell = Shell::new();
        shell.execute("new consistent 64").expect("ok");
        shell
            .execute(&format!("join {}", (0..64).map(|i| i.to_string()).collect::<Vec<_>>().join(" ")))
            .expect("ok");
        shell.execute("snapshot 4000").expect("ok");
        shell.execute("noise 20 7").expect("ok");
        let diff = shell.execute("diff 4000").expect("ok");
        let pct: f64 = diff.split('%').next().expect("pct").parse().expect("number");
        assert!(pct > 0.0, "consistent hashing should corrupt: {diff}");
        shell.execute("clear").expect("ok");
        let healed = shell.execute("diff 4000").expect("ok");
        assert!(healed.starts_with("0.000%"), "{healed}");
    }

    #[test]
    fn help_and_empty_lines() {
        let mut shell = Shell::new();
        assert!(shell.execute("help").expect("ok").contains("commands"));
        assert_eq!(shell.execute("   ").expect("ok"), "");
    }

    #[test]
    fn serve_runs_a_closed_loop_burst() {
        let mut shell = Shell::new();
        let out = shell.execute("serve 2 2 500").expect("ok");
        assert!(out.contains("served 500 lookups over 2 shard(s)"), "{out}");
        assert!(out.contains("[shared-queue]"), "{out}");
        assert!(out.contains("shard 0:") && out.contains("shard 1:"), "{out}");
        assert!(out.contains("latency p50"), "{out}");
        assert!(shell.execute("serve x").is_err());
    }

    #[test]
    fn serve_selects_the_work_stealing_scheduler() {
        let mut shell = Shell::new();
        let out = shell.execute("serve 2 2 500 work-stealing").expect("ok");
        assert!(out.contains("[work-stealing]"), "{out}");
        assert!(out.contains("served 500 lookups"), "{out}");
        assert!(shell.execute("serve 2 2 100 bogus").is_err());
    }

    #[test]
    fn simulate_runs_a_catalog_scenario() {
        let out = run_simulate(&["steady".into(), "--seed".into(), "7".into()])
            .expect("catalog scenario runs");
        assert!(out.contains("scenario steady"), "{out}");
        assert!(out.contains("SCENARIO_SEED=7"), "{out}");
        assert!(out.contains("phase 0:"), "{out}");
        assert!(out.contains("run fingerprint"), "{out}");
        assert!(out.contains("0 hung"), "{out}");
        // Same seed ⇒ same printed fingerprint line.
        let rerun = run_simulate(&["steady".into(), "--seed".into(), "7".into()])
            .expect("rerun");
        let fp = |s: &str| {
            s.lines().find(|l| l.starts_with("run fingerprint")).map(str::to_owned)
        };
        assert_eq!(fp(&out), fp(&rerun));
        assert!(run_simulate(&["no-such-scenario".into()]).is_err());
        assert!(run_simulate(&[]).is_err());
    }

    #[test]
    fn accel_reports_all_corners() {
        let mut shell = Shell::new();
        // Works without a table (defaults to the paper's 512 servers)...
        let out = shell.execute("accel").expect("ok");
        assert!(out.contains("512 servers"));
        assert!(out.contains("fpga-28nm") && out.contains("asic-7nm"));
        // ...picks up the live pool size...
        shell.execute("new hd 16").expect("ok");
        shell.execute("join 1 2 3").expect("ok");
        assert!(shell.execute("accel").expect("ok").contains("3 servers"));
        // ...and accepts explicit shape arguments.
        assert!(shell.execute("accel 64 4096").expect("ok").contains("64 servers, d = 4096"));
        assert!(shell.execute("accel x").is_err());
    }
}
