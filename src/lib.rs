//! # hdhash — Hyperdimensional Hashing
//!
//! A from-scratch Rust reproduction of *“Hyperdimensional Hashing: A Robust
//! and Efficient Dynamic Hash Table”* (Heddes, Nunes, Givargis, Nicolau,
//! Veidenbaum — DAC 2022): a dynamic request→server hash table built on
//! Hyperdimensional Computing, compared against modular, consistent and
//! rendezvous hashing, with the paper's full emulation framework and every
//! figure regenerable from this workspace.
//!
//! This crate is the facade: it re-exports the workspace members under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! ## Crates
//!
//! * [`hashfn`] — 64-bit hash function substrate (SplitMix64, FNV-1a,
//!   XXH64, Murmur3, SipHash), all from their published specifications;
//! * [`hdc`] — the hyperdimensional computing substrate: bit-packed
//!   hypervectors, bind/bundle/permute, similarity metrics, random /
//!   level / **circular** basis-hypervectors (the paper's Algorithm 1),
//!   associative memory, noise injection;
//! * [`simdkernels`] — the workspace's single non-`forbid(unsafe)` leaf:
//!   runtime-dispatched XOR+popcount distance kernels (AVX2 where the
//!   CPU has it, portable scalar everywhere else);
//! * [`table`] — the `DynamicHashTable` contract, strongly typed ids,
//!   the modular-hashing baseline and remap metrics;
//! * [`ring`] — consistent hashing over a from-scratch treap (plus
//!   bounded-load and virtual-node variants and jump consistent hash);
//! * [`maglev`] — Maglev lookup-table hashing (the paper's reference \[3\]);
//! * [`rendezvous`] — rendezvous / highest-random-weight hashing (plus a
//!   weighted variant);
//! * [`core`] — **HD hashing**, the paper's contribution: circular
//!   hypervector codebook, `Enc(x) = C[h(x) mod n]`, similarity arg-max
//!   with a provable robustness quantum, hierarchical and weighted
//!   extensions;
//! * [`emulator`] — the paper's two-module emulation framework: request
//!   generator, buffered hash-table module, noise plans (including the
//!   field-study correlated error process), workload traces, χ²
//!   statistics, and the Figure 4/5/6/7 experiment runners;
//! * [`accel`] — a gate-level cost model of the HDC inference accelerator
//!   the paper's `O(1)` claim cites (Schmuck et al. \[18\]): CA90
//!   rematerialization, combinational associative memory, binarized
//!   bundling, and the Figure 4 hardware projection;
//! * [`serve`] — the sharded, batch-coalescing serving layer: a
//!   pluggable scheduler core (shared queue or work-stealing deques),
//!   coalescing workers driving the zero-alloc batched lookup path,
//!   epoch-published shard snapshots so membership reconfiguration never
//!   blocks readers, and an async-capable ticket front end (`Ticket` is
//!   a `Future`; a vendored block-on executor drives it runtime-free).
//!
//! ## Quick start
//!
//! ```
//! use hdhash::prelude::*;
//!
//! let mut table = HdHashTable::builder().dimension(4096).codebook_size(128).build()?;
//! for id in 0..16 {
//!     table.join(ServerId::new(id))?;
//! }
//! let owner = table.lookup(RequestKey::new(42))?;
//! assert!(table.contains(owner));
//!
//! // Memory errors do not move requests (the paper's headline):
//! table.inject_bit_flips(10, 7);
//! assert_eq!(table.lookup(RequestKey::new(42))?, owner);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for complete scenarios (load balancing, web caching,
//! P2P churn, periodic data encoding) and `crates/bench` for the
//! figure-regeneration harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hdhash_accel as accel;
pub use hdhash_core as core;
pub use hdhash_emulator as emulator;
pub use hdhash_hashfn as hashfn;
pub use hdhash_maglev as maglev;
pub use hdhash_obs as obs;
pub use hdhash_hdc as hdc;
pub use hdhash_rendezvous as rendezvous;
pub use hdhash_ring as ring;
pub use hdhash_serve as serve;
pub use hdhash_simdkernels as simdkernels;
pub use hdhash_table as table;

/// The most common imports in one place.
pub mod prelude {
    pub use hdhash_accel::{CombinationalAm, ExecutionModel, LookupSchedule, TechnologyParams};
    pub use hdhash_core::{
        BoundedHdTable, HdConfig, HdHashTable, HierarchicalHdTable, WeightedHdTable,
    };
    pub use hdhash_emulator::{
        AlgorithmKind, Generator, HashTableModule, NoisePlan, Trace, Workload,
    };
    pub use hdhash_hdc::{
        CentroidClassifier, Hypervector, MembershipCentroid, Rng, SimilarityMetric,
    };
    pub use hdhash_maglev::MaglevTable;
    pub use hdhash_rendezvous::RendezvousTable;
    pub use hdhash_ring::ConsistentTable;
    pub use hdhash_serve::{SchedulerKind, ServeConfig, ServeEngine, Ticket};
    pub use hdhash_table::{
        remap_fraction, Assignment, DynamicHashTable, ModularTable, NoisyTable, RequestKey,
        ServerId, TableError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut table = ConsistentTable::new();
        table.join(ServerId::new(1)).expect("fresh server");
        assert_eq!(table.lookup(RequestKey::new(1)).expect("non-empty"), ServerId::new(1));
        let _ = AlgorithmKind::Hd;
        let _ = SimilarityMetric::Cosine;
    }
}
