//! Property-based tests for Maglev hashing.

use hdhash_maglev::prime::{is_prime, next_prime};
use hdhash_maglev::MaglevTable;
use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
use proptest::prelude::*;

proptest! {
    /// `next_prime` returns a prime at least as large as its argument, and
    /// there is no smaller prime in between.
    #[test]
    fn next_prime_is_correct(n in 0u64..1_000_000) {
        let p = next_prime(n);
        prop_assert!(p >= n.max(2));
        prop_assert!(is_prime(p));
        for candidate in n.max(2)..p {
            prop_assert!(!is_prime(candidate), "skipped prime {candidate}");
        }
    }

    /// Miller–Rabin agrees with trial division on arbitrary inputs.
    #[test]
    fn primality_matches_trial_division(n in 0u64..100_000) {
        let trial = n >= 2 && (2..=((n as f64).sqrt() as u64)).all(|d| n % d != 0);
        prop_assert_eq!(is_prime(n), trial, "disagreement at {}", n);
    }

    /// Every table slot is owned by a live server; the table fills
    /// completely for any membership.
    #[test]
    fn table_fills_completely(
        ids in proptest::collection::hash_set(0u64..10_000, 1..24),
        table_size in 101usize..1000,
    ) {
        let mut table = MaglevTable::with_table_size(table_size);
        for &id in &ids {
            table.join(ServerId::new(id)).expect("distinct ids");
        }
        let counts = table.slot_counts();
        prop_assert_eq!(counts.values().sum::<usize>(), table.table_size());
        for server in counts.keys() {
            prop_assert!(table.contains(*server));
        }
    }

    /// Lookups land on live servers for arbitrary keys.
    #[test]
    fn lookup_total(
        ids in proptest::collection::hash_set(0u64..1_000, 1..16),
        keys in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut table = MaglevTable::with_table_size(211);
        for &id in &ids {
            table.join(ServerId::new(id)).expect("distinct ids");
        }
        for &k in &keys {
            let owner = table.lookup(RequestKey::new(k)).expect("non-empty");
            prop_assert!(table.contains(owner));
        }
    }

    /// Balance: every server owns within 25% of its fair share of slots
    /// (the Maglev paper proves much tighter bounds for M >> N; we check a
    /// loose envelope across arbitrary memberships).
    #[test]
    fn slots_balanced(count in 2usize..16) {
        let mut table = MaglevTable::with_table_size(2053);
        for i in 0..count as u64 {
            table.join(ServerId::new(i)).expect("fresh");
        }
        let fair = 2053 / count;
        for (&server, &slots) in &table.slot_counts() {
            let dev = (slots as f64 - fair as f64).abs() / fair as f64;
            prop_assert!(dev < 0.25, "{}: {} vs fair {}", server, slots, fair);
        }
    }
}
