//! # hdhash-maglev — Maglev hashing
//!
//! Maglev (Eisenbud et al., NSDI 2016 — the paper's reference \[3\] for
//! consistent hashing "used on Google Cloud Platform") trades the ring for
//! a dense lookup table: each backend generates a permutation of the table
//! slots from two hashes of its name, and backends take turns claiming
//! their next preferred slot until the table is full. Lookups are then a
//! single `table[h(key) % M]` — `O(1)`, with near-perfect balance and
//! small disruption on membership change.
//!
//! We include it as a fourth baseline beyond the paper's three because it
//! occupies a distinct point in the robustness landscape: its vulnerable
//! state is the lookup table itself, and a corrupted entry damages exactly
//! one slot (`≈ lookups/M` of traffic) — *dilution* rather than the
//! ring-tree's amplification. The `fig5 algorithms` extension and the
//! robustness ablations use it as the "how much does structure matter"
//! control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prime;
pub mod table;

pub use table::MaglevTable;
