//! Prime-size selection for the Maglev lookup table.
//!
//! Maglev requires the table size `M` to be prime (so every `skip` value
//! generates a full permutation of the slots) and recommends `M ≫ N` for
//! balance (the original paper uses 65537 for its measurements).

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs
/// (the standard 12-witness set).
///
/// # Examples
///
/// ```
/// use hdhash_maglev::prime::is_prime;
/// assert!(is_prime(65537));
/// assert!(!is_prime(65536));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d · 2^r with d odd.
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..r {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime `>= n` (and `>= 2`).
///
/// # Examples
///
/// ```
/// use hdhash_maglev::prime::next_prime;
/// assert_eq!(next_prime(65530), 65537);
/// assert_eq!(next_prime(2), 2);
/// ```
#[must_use]
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    while !is_prime(candidate) {
        candidate += 1;
    }
    candidate
}

#[inline]
fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        for p in primes {
            assert!(is_prime(p), "{p}");
        }
        for c in [0u64, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 49, 1001] {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn known_large_cases() {
        assert!(is_prime(65537)); // F4
        assert!(is_prime(2_147_483_647)); // M31
        assert!(!is_prime(2_147_483_649));
        // Carmichael numbers must not fool the test.
        for carmichael in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(carmichael), "{carmichael}");
        }
        // Large strong-pseudoprime trap: 3215031751 fools bases {2,3,5,7}.
        assert!(!is_prime(3_215_031_751));
    }

    #[test]
    fn next_prime_behaviour() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(next_prime(100_000), 100_003);
    }

    #[test]
    fn sieve_agreement() {
        // Cross-check against a simple sieve up to 10_000.
        let limit = 10_000usize;
        let mut sieve = vec![true; limit];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..limit {
            if sieve[i] {
                for j in (i * i..limit).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for (n, &expected) in sieve.iter().enumerate() {
            assert_eq!(is_prime(n as u64), expected, "disagreement at {n}");
        }
    }
}
