//! The Maglev lookup table.

use hdhash_hashfn::{Hasher64, SplitMix64, XxHash64};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId, TableError};

use crate::prime::next_prime;

/// Sentinel for an unclaimed/corrupted-out-of-pool table entry.
const EMPTY: u64 = u64::MAX;

/// Maglev hashing: an `O(1)` lookup table populated from per-backend
/// preference permutations.
///
/// ## Construction (Eisenbud et al., §3.4)
///
/// Every backend `b` derives `offset = h₁(b) mod M` and
/// `skip = h₂(b) mod (M − 1) + 1`; its preference list is
/// `(offset + j · skip) mod M` for `j = 0, 1, …`. Backends take turns
/// claiming the next unclaimed slot on their list until all `M` slots are
/// owned. Because `M` is prime, every list is a full permutation, so the
/// loop terminates with each backend owning `≈ M/N` slots.
///
/// ## Noise model
///
/// The vulnerable state surface is the lookup table: `M` 64-bit entries
/// holding backend identifiers. A flipped bit corrupts exactly one entry,
/// sending only the `≈ 1/M` of requests that hash there to a wrong (often
/// non-live) backend — the *dilution* end of the robustness spectrum,
/// opposite the ring-tree's subtree amplification.
///
/// # Examples
///
/// ```
/// use hdhash_maglev::MaglevTable;
/// use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
///
/// let mut maglev = MaglevTable::new();
/// for id in 0..4 {
///     maglev.join(ServerId::new(id))?;
/// }
/// let owner = maglev.lookup(RequestKey::new(7))?;
/// assert!(maglev.contains(owner));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
pub struct MaglevTable {
    hasher: Box<dyn Hasher64>,
    table_size: usize,
    members: Vec<ServerId>,
    /// The lookup table (`EMPTY` when no servers have joined); this is the
    /// noise surface.
    lookup: Vec<u64>,
}

impl MaglevTable {
    /// Default table size: the Maglev paper's measurement configuration.
    pub const DEFAULT_TABLE_SIZE: usize = 65_537;

    /// Creates a table with the default size and hash function (XXH64).
    #[must_use]
    pub fn new() -> Self {
        Self::with_table_size(Self::DEFAULT_TABLE_SIZE)
    }

    /// Creates a table whose lookup table has the smallest prime size
    /// `>= requested` (primality is required by the permutation scheme).
    ///
    /// # Panics
    ///
    /// Panics if `requested < 2`.
    #[must_use]
    pub fn with_table_size(requested: usize) -> Self {
        assert!(requested >= 2, "Maglev needs at least two slots");
        let table_size = next_prime(requested as u64) as usize;
        Self {
            hasher: Box::new(XxHash64::with_seed(0)),
            table_size,
            members: Vec::new(),
            lookup: Vec::new(),
        }
    }

    /// The (prime) lookup table size `M`.
    #[must_use]
    pub fn table_size(&self) -> usize {
        self.table_size
    }

    /// Per-backend slot counts — the balance the permutation scheme
    /// achieves (each should be within 2% of `M/N` per the Maglev paper).
    #[must_use]
    pub fn slot_counts(&self) -> std::collections::HashMap<ServerId, usize> {
        let mut counts = std::collections::HashMap::new();
        for &entry in &self.lookup {
            if entry != EMPTY {
                *counts.entry(ServerId::new(entry)).or_insert(0) += 1;
            }
        }
        counts
    }

    fn populate(&mut self) {
        if self.members.is_empty() {
            self.lookup.clear();
            return;
        }
        let m = self.table_size;
        // offset/skip per backend, from two independent hashes of its id.
        let params: Vec<(usize, usize)> = self
            .members
            .iter()
            .map(|s| {
                let h1 = self.hasher.hash_bytes(&s.to_bytes());
                let h2 = self.hasher.reseed(0x5EED).hash_bytes(&s.to_bytes());
                ((h1 % m as u64) as usize, (h2 % (m as u64 - 1) + 1) as usize)
            })
            .collect();

        let mut next = vec![0usize; self.members.len()];
        let mut entry = vec![EMPTY; m];
        let mut filled = 0usize;
        'fill: loop {
            for (i, &(offset, skip)) in params.iter().enumerate() {
                // Advance to this backend's next unclaimed preference.
                let slot = loop {
                    let candidate = (offset + next[i] * skip) % m;
                    next[i] += 1;
                    if entry[candidate] == EMPTY {
                        break candidate;
                    }
                };
                entry[slot] = self.members[i].get();
                filled += 1;
                if filled == m {
                    break 'fill;
                }
            }
        }
        self.lookup = entry;
    }
}

impl Default for MaglevTable {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for MaglevTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MaglevTable")
            .field("servers", &self.members.len())
            .field("table_size", &self.table_size)
            .finish()
    }
}

impl DynamicHashTable for MaglevTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        if self.members.contains(&server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        if self.members.len() + 1 > self.table_size {
            return Err(TableError::CapacityExhausted {
                servers: self.members.len(),
                capacity: self.table_size,
            });
        }
        self.members.push(server);
        self.populate();
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .members
            .iter()
            .position(|&s| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        self.members.remove(idx);
        self.populate();
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        if self.lookup.is_empty() {
            return Err(TableError::EmptyPool);
        }
        let slot = (self.hasher.hash_bytes(&request.to_bytes()) % self.table_size as u64) as usize;
        Ok(ServerId::new(self.lookup[slot]))
    }

    fn server_count(&self) -> usize {
        self.members.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.members.clone()
    }

    fn algorithm_name(&self) -> &'static str {
        "maglev"
    }
}

impl NoisyTable for MaglevTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        if self.lookup.is_empty() {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.noise_surface_bits() as u64;
        for _ in 0..count {
            let bit = rng.next_below(surface) as usize;
            self.lookup[bit / 64] ^= 1u64 << (bit % 64);
        }
        count
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        if self.lookup.is_empty() || length == 0 {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.noise_surface_bits();
        let start = rng.next_below(surface as u64) as usize;
        let end = (start + length).min(surface);
        for bit in start..end {
            self.lookup[bit / 64] ^= 1u64 << (bit % 64);
        }
        end - start
    }

    fn clear_noise(&mut self) {
        self.populate();
    }

    fn noise_surface_bits(&self) -> usize {
        self.lookup.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::{remap_fraction, Assignment};

    fn filled(n: u64, table_size: usize) -> MaglevTable {
        let mut t = MaglevTable::with_table_size(table_size);
        for i in 0..n {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    fn keys(n: u64) -> Vec<RequestKey> {
        (0..n).map(RequestKey::new).collect()
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut t = MaglevTable::with_table_size(211);
        assert_eq!(t.lookup(RequestKey::new(0)), Err(TableError::EmptyPool));
        t.join(ServerId::new(3)).expect("fresh");
        assert_eq!(
            t.join(ServerId::new(3)),
            Err(TableError::ServerAlreadyPresent(ServerId::new(3)))
        );
        assert_eq!(t.lookup(RequestKey::new(0)).expect("non-empty"), ServerId::new(3));
        t.leave(ServerId::new(3)).expect("present");
        assert_eq!(t.leave(ServerId::new(3)), Err(TableError::ServerNotFound(ServerId::new(3))));
    }

    #[test]
    fn table_size_rounds_to_prime() {
        assert_eq!(MaglevTable::with_table_size(100).table_size(), 101);
        assert_eq!(MaglevTable::with_table_size(65_536).table_size(), 65_537);
        assert_eq!(MaglevTable::new().table_size(), 65_537);
    }

    #[test]
    fn slots_are_near_perfectly_balanced() {
        // The Maglev paper's balance guarantee: slot shares within a few
        // percent of M/N.
        let t = filled(16, 4099);
        let counts = t.slot_counts();
        assert_eq!(counts.values().sum::<usize>(), 4099);
        let expected = 4099 / 16;
        for (&server, &count) in &counts {
            let dev = (count as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "{server}: {count} vs {expected}");
        }
    }

    #[test]
    fn lookup_distribution_tracks_slots() {
        let t = filled(8, 2053);
        let loads =
            Assignment::capture(&t, keys(16_000)).expect("non-empty").load_by_server();
        for &load in loads.values() {
            let dev = (load as f64 - 2_000.0).abs() / 2_000.0;
            assert!(dev < 0.15, "load {load}");
        }
    }

    #[test]
    fn membership_change_disruption_is_small() {
        // Maglev trades *minimal* disruption for balance: a leave may move
        // a small number of non-victim keys, but the bulk must stay.
        let mut t = filled(16, 4099);
        let before = Assignment::capture(&t, keys(8_000)).expect("non-empty");
        t.leave(ServerId::new(5)).expect("present");
        let after = Assignment::capture(&t, keys(8_000)).expect("non-empty");
        let moved = remap_fraction(&before, &after);
        // Victim's share is 1/16 ≈ 6.25%; Maglev's extra churn should stay
        // within a small multiple of that.
        assert!(moved < 0.20, "too much disruption: {moved}");
        assert!(moved > 0.03, "victim's keys must move: {moved}");
    }

    #[test]
    fn noise_damage_is_diluted_and_restorable() {
        let mut t = filled(32, 4099);
        let reference = Assignment::capture(&t, keys(6_000)).expect("non-empty");
        t.inject_bit_flips(10, 4);
        let noisy = Assignment::capture(&t, keys(6_000)).expect("non-empty");
        let moved = remap_fraction(&reference, &noisy);
        // 10 corrupted entries of 4099: ≈ 0.24% of traffic.
        assert!(moved < 0.02, "Maglev corruption should be diluted: {moved}");
        t.clear_noise();
        let restored = Assignment::capture(&t, keys(6_000)).expect("non-empty");
        assert_eq!(remap_fraction(&reference, &restored), 0.0);
    }

    #[test]
    fn surfaces_and_edges() {
        let t = filled(4, 211);
        assert_eq!(t.noise_surface_bits(), 211 * 64);
        let mut empty = MaglevTable::with_table_size(211);
        assert_eq!(empty.inject_bit_flips(3, 0), 0);
        assert_eq!(empty.inject_burst(3, 0), 0);
        let mut t = filled(2, 211);
        assert_eq!(t.inject_burst(0, 1), 0);
        assert_eq!(t.algorithm_name(), "maglev");
        assert!(format!("{t:?}").contains("table_size"));
    }

    #[test]
    fn single_server_owns_all_slots() {
        let t = filled(1, 211);
        assert_eq!(t.slot_counts()[&ServerId::new(0)], 211);
    }

    #[test]
    fn deterministic() {
        let a = filled(12, 1031);
        let b = filled(12, 1031);
        for k in 0..500u64 {
            assert_eq!(
                a.lookup(RequestKey::new(k)).expect("non-empty"),
                b.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }
}
