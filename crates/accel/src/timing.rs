//! Execution schedules: how the datapath is clocked.
//!
//! The same gate-level datapath ([`crate::datapath`]) can be driven three
//! ways, trading clock frequency against cycles per lookup:
//!
//! * **Combinational** — the entire inference settles in one (long) cycle:
//!   Schmuck et al.'s demonstrated single-clock-cycle associative memory
//!   and the paper's `O(1)` reference point.
//! * **Pipelined** — registers split the critical path into `stages`;
//!   the clock shortens, a lookup takes `stages` cycles of latency, but a
//!   new lookup *starts every cycle* (initiation interval 1), so the
//!   streaming throughput matches the shorter clock.
//! * **Word-serial** — a small ALU array processes the hypervectors
//!   64-bit-word by word, the discipline a CPU/GPU emulation is stuck
//!   with; cycles per lookup grow linearly in `k · d`. This is the model
//!   of the *software* implementations the paper measures, included so
//!   projections can show all three regimes on one axis.

use crate::datapath::CombinationalAm;
use crate::tech::TechnologyParams;

/// How the datapath is clocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExecutionModel {
    /// One combinational cycle per lookup (the paper's reference point).
    Combinational,
    /// `stages` pipeline registers across the critical path; initiation
    /// interval of one cycle.
    Pipelined {
        /// Number of pipeline stages (clamped to at least 1).
        stages: usize,
    },
    /// `lanes` 64-bit word operations per cycle over the whole memory —
    /// the software-equivalent regime.
    WordSerial {
        /// Word operations per cycle (clamped to at least 1).
        lanes: usize,
    },
}

impl core::fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecutionModel::Combinational => f.write_str("combinational"),
            ExecutionModel::Pipelined { stages } => write!(f, "pipelined({stages})"),
            ExecutionModel::WordSerial { lanes } => write!(f, "word-serial({lanes})"),
        }
    }
}

/// A concrete clocking plan for one datapath shape under one technology
/// corner.
///
/// # Examples
///
/// ```
/// use hdhash_accel::{ExecutionModel, LookupSchedule, TechnologyParams};
///
/// let tech = TechnologyParams::fpga_28nm();
/// let single = LookupSchedule::plan(ExecutionModel::Combinational, 512, 10_000, &tech);
/// assert_eq!(single.latency_cycles, 1);
/// let piped = LookupSchedule::plan(ExecutionModel::Pipelined { stages: 8 }, 512, 10_000, &tech);
/// // Pipelining never slows the stream down.
/// assert!(piped.time_per_lookup_ps() <= single.time_per_lookup_ps());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LookupSchedule {
    /// The clocking discipline.
    pub model: ExecutionModel,
    /// Clock period, in picoseconds.
    pub cycle_time_ps: f64,
    /// Cycles from probe to winner for one lookup.
    pub latency_cycles: u64,
    /// Cycles between consecutive lookup starts in a stream.
    pub initiation_interval_cycles: u64,
}

impl LookupSchedule {
    /// Plans a schedule for `k` stored vectors of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `d == 0`.
    #[must_use]
    pub fn plan(model: ExecutionModel, k: usize, d: usize, tech: &TechnologyParams) -> Self {
        assert!(k > 0, "a schedule for an empty memory is undefined");
        assert!(d > 0, "dimension must be positive");
        let critical_path_ps = CombinationalAm::timing_for(k, d, tech).critical_path_ps();
        let platform_period_ps = 1.0e12 / tech.max_platform_clock_hz;
        match model {
            ExecutionModel::Combinational => Self {
                model,
                cycle_time_ps: critical_path_ps.max(platform_period_ps),
                latency_cycles: 1,
                initiation_interval_cycles: 1,
            },
            ExecutionModel::Pipelined { stages } => {
                let stages = stages.max(1);
                Self {
                    model,
                    cycle_time_ps: (critical_path_ps / stages as f64).max(platform_period_ps),
                    latency_cycles: stages as u64,
                    initiation_interval_cycles: 1,
                }
            }
            ExecutionModel::WordSerial { lanes } => {
                let lanes = lanes.max(1);
                let word_ops = k as u64 * d.div_ceil(64) as u64;
                let cycles = word_ops.div_ceil(lanes as u64).max(1);
                Self {
                    model,
                    cycle_time_ps: platform_period_ps,
                    latency_cycles: cycles,
                    initiation_interval_cycles: cycles,
                }
            }
        }
    }

    /// Probe-to-winner latency of one lookup, in picoseconds.
    #[must_use]
    pub fn latency_ps(&self) -> f64 {
        self.latency_cycles as f64 * self.cycle_time_ps
    }

    /// Steady-state time per lookup in a request stream, in picoseconds
    /// (initiation interval × clock period).
    #[must_use]
    pub fn time_per_lookup_ps(&self) -> f64 {
        self.initiation_interval_cycles as f64 * self.cycle_time_ps
    }

    /// Steady-state lookups per second.
    #[must_use]
    pub fn throughput_per_s(&self) -> f64 {
        1.0e12 / self.time_per_lookup_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: usize = 512;
    const D: usize = 10_000;

    #[test]
    fn combinational_cycle_covers_the_critical_path() {
        let tech = TechnologyParams::fpga_28nm();
        let cp = CombinationalAm::timing_for(K, D, &tech).critical_path_ps();
        let s = LookupSchedule::plan(ExecutionModel::Combinational, K, D, &tech);
        assert!(s.cycle_time_ps >= cp);
        assert_eq!(s.latency_cycles, 1);
        assert_eq!(s.initiation_interval_cycles, 1);
    }

    #[test]
    fn pipelining_trades_latency_for_throughput() {
        let tech = TechnologyParams::asic_22nm();
        let single = LookupSchedule::plan(ExecutionModel::Combinational, K, D, &tech);
        let piped = LookupSchedule::plan(ExecutionModel::Pipelined { stages: 8 }, K, D, &tech);
        assert!(piped.latency_cycles > single.latency_cycles);
        assert!(piped.throughput_per_s() >= single.throughput_per_s());
        assert!(piped.cycle_time_ps < single.cycle_time_ps);
    }

    #[test]
    fn platform_clock_caps_pipelining() {
        let tech = TechnologyParams::asic_7nm();
        // Absurd over-pipelining cannot beat the platform clock.
        let s = LookupSchedule::plan(ExecutionModel::Pipelined { stages: 10_000 }, K, D, &tech);
        let platform_period = 1.0e12 / tech.max_platform_clock_hz;
        assert!((s.cycle_time_ps - platform_period).abs() < 1e-9);
    }

    #[test]
    fn word_serial_scales_linearly_in_pool_size() {
        let tech = TechnologyParams::asic_22nm();
        let model = ExecutionModel::WordSerial { lanes: 8 };
        let small = LookupSchedule::plan(model, 64, D, &tech);
        let large = LookupSchedule::plan(model, 2048, D, &tech);
        let ratio = large.time_per_lookup_ps() / small.time_per_lookup_ps();
        assert!((31.0..33.0).contains(&ratio), "expected ~32x, got {ratio:.2}x");
    }

    #[test]
    fn combinational_is_flat_in_pool_size() {
        // The hardware restatement of the paper's O(1) claim.
        let tech = TechnologyParams::fpga_28nm();
        let small = LookupSchedule::plan(ExecutionModel::Combinational, 2, D, &tech);
        let large = LookupSchedule::plan(ExecutionModel::Combinational, 2048, D, &tech);
        let ratio = large.time_per_lookup_ps() / small.time_per_lookup_ps();
        assert!(ratio < 2.0, "combinational lookup must stay near-flat, got {ratio:.2}x");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let tech = TechnologyParams::fpga_28nm();
        let s = LookupSchedule::plan(ExecutionModel::Pipelined { stages: 0 }, 1, 1, &tech);
        assert_eq!(s.latency_cycles, 1);
        let s = LookupSchedule::plan(ExecutionModel::WordSerial { lanes: 0 }, 1, 1, &tech);
        assert_eq!(s.latency_cycles, 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExecutionModel::Combinational.to_string(), "combinational");
        assert_eq!(ExecutionModel::Pipelined { stages: 4 }.to_string(), "pipelined(4)");
        assert_eq!(ExecutionModel::WordSerial { lanes: 2 }.to_string(), "word-serial(2)");
    }

    #[test]
    #[should_panic(expected = "empty memory")]
    fn empty_memory_schedule_panics() {
        let _ = LookupSchedule::plan(
            ExecutionModel::Combinational,
            0,
            64,
            &TechnologyParams::fpga_28nm(),
        );
    }
}
