//! Technology corners for the hardware cost model.
//!
//! Every delay, area and energy figure in this crate is expressed in
//! *technology-independent units* (full-adder delays, gate counts, gate
//! switches) and converted to physical units through a
//! [`TechnologyParams`] corner. The presets are order-of-magnitude
//! figures for the platforms the HDC hardware literature targets — a
//! mid-range FPGA (Schmuck et al. demonstrate their combinational
//! associative memory on an FPGA) and standard-cell ASIC processes —
//! not vendor datasheet values. The *shape* of every projection (how
//! lookup time scales with `k` and `d`) is independent of the corner;
//! only absolute numbers move.

/// Physical parameters of one implementation technology.
///
/// # Examples
///
/// ```
/// use hdhash_accel::TechnologyParams;
///
/// let fpga = TechnologyParams::fpga_28nm();
/// let asic = TechnologyParams::asic_22nm();
/// // ASIC gates are faster than FPGA LUT + routing hops.
/// assert!(asic.fa_delay_ps < fpga.fa_delay_ps);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TechnologyParams {
    /// Human-readable corner name.
    pub name: String,
    /// Delay of one full-adder stage, in picoseconds (includes local
    /// routing for FPGA corners).
    pub fa_delay_ps: f64,
    /// Delay of one 2-input XOR gate, in picoseconds.
    pub xor_delay_ps: f64,
    /// Delay of one `w`-bit compare-and-select node per bit, in
    /// picoseconds (the comparator is a ripple structure in `w`).
    pub compare_delay_per_bit_ps: f64,
    /// Energy of one gate output toggle, in femtojoules.
    pub switch_energy_fj: f64,
    /// Highest clock the platform can distribute regardless of logic
    /// depth, in hertz (pipelining cannot exceed this).
    pub max_platform_clock_hz: f64,
}

impl TechnologyParams {
    /// A 28 nm FPGA corner (6-LUT fabric, carry chains): the platform of
    /// Schmuck et al.'s demonstrated single-cycle associative memory.
    #[must_use]
    pub fn fpga_28nm() -> Self {
        Self {
            name: "fpga-28nm".to_string(),
            fa_delay_ps: 600.0,
            xor_delay_ps: 450.0,
            compare_delay_per_bit_ps: 60.0,
            switch_energy_fj: 15.0,
            max_platform_clock_hz: 500.0e6,
        }
    }

    /// A 22 nm standard-cell ASIC corner — the feature size of the
    /// paper's soft-error discussion (Ibe et al.).
    #[must_use]
    pub fn asic_22nm() -> Self {
        Self {
            name: "asic-22nm".to_string(),
            fa_delay_ps: 40.0,
            xor_delay_ps: 25.0,
            compare_delay_per_bit_ps: 8.0,
            switch_energy_fj: 0.8,
            max_platform_clock_hz: 3.0e9,
        }
    }

    /// An aggressive 7 nm ASIC corner, bounding what a modern process
    /// could reach.
    #[must_use]
    pub fn asic_7nm() -> Self {
        Self {
            name: "asic-7nm".to_string(),
            fa_delay_ps: 12.0,
            xor_delay_ps: 8.0,
            compare_delay_per_bit_ps: 2.5,
            switch_energy_fj: 0.15,
            max_platform_clock_hz: 5.0e9,
        }
    }

    /// All built-in corners, slowest first.
    #[must_use]
    pub fn presets() -> Vec<TechnologyParams> {
        vec![Self::fpga_28nm(), Self::asic_22nm(), Self::asic_7nm()]
    }
}

impl Default for TechnologyParams {
    /// Defaults to the FPGA corner — the only platform the cited work
    /// actually demonstrated.
    fn default() -> Self {
        Self::fpga_28nm()
    }
}

impl core::fmt::Display for TechnologyParams {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_ordered_by_speed() {
        let fpga = TechnologyParams::fpga_28nm();
        let asic22 = TechnologyParams::asic_22nm();
        let asic7 = TechnologyParams::asic_7nm();
        assert!(fpga.fa_delay_ps > asic22.fa_delay_ps);
        assert!(asic22.fa_delay_ps > asic7.fa_delay_ps);
        assert!(fpga.switch_energy_fj > asic7.switch_energy_fj);
        assert!(fpga.max_platform_clock_hz < asic7.max_platform_clock_hz);
    }

    #[test]
    fn all_parameters_positive() {
        for corner in TechnologyParams::presets() {
            assert!(corner.fa_delay_ps > 0.0, "{corner}");
            assert!(corner.xor_delay_ps > 0.0, "{corner}");
            assert!(corner.compare_delay_per_bit_ps > 0.0, "{corner}");
            assert!(corner.switch_energy_fj > 0.0, "{corner}");
            assert!(corner.max_platform_clock_hz > 0.0, "{corner}");
        }
    }

    #[test]
    fn default_is_the_demonstrated_platform() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::fpga_28nm());
        assert_eq!(TechnologyParams::default().to_string(), "fpga-28nm");
    }
}
