//! A deep adder tree reducing `d` one-bit inputs to their sum (popcount).
//!
//! After the XOR stage of the combinational associative memory, the
//! Hamming distance of a probe against one stored vector is the population
//! count of `d` difference bits. Schmuck et al. compute it with a balanced
//! binary tree of ripple-carry adders whose width grows by one bit per
//! level ("deep adder trees") — `d - 1` adder nodes, `⌈log₂ d⌉` levels,
//! and a critical path that grows only *logarithmically* in `d`. That
//! logarithmic depth is the entire hardware case for the paper's `O(1)`
//! lookup: the whole reduction is combinational, no loop, no cycles.
//!
//! [`AdderTree`] is both the **cost model** (node counts, full-adder
//! equivalents, critical path) and a **functional simulator**
//! ([`AdderTree::reduce`]) whose dataflow mirrors the hardware exactly and
//! is tested to agree with a plain software popcount.

/// Structural model of a balanced binary adder tree over `inputs` one-bit
/// operands.
///
/// # Examples
///
/// ```
/// use hdhash_accel::AdderTree;
///
/// let tree = AdderTree::new(10_000);
/// assert_eq!(tree.depth(), 14);          // ⌈log₂ 10000⌉
/// assert_eq!(tree.node_count(), 9_999);  // one adder per reduction
/// // The final sum of 10k one-bit inputs needs 14 bits.
/// assert_eq!(tree.output_bits(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdderTree {
    inputs: usize,
}

impl AdderTree {
    /// Models a tree over `inputs` one-bit operands.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0`.
    #[must_use]
    pub fn new(inputs: usize) -> Self {
        assert!(inputs > 0, "an adder tree needs at least one input");
        Self { inputs }
    }

    /// Number of one-bit inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of reduction levels, `⌈log₂ inputs⌉`.
    #[must_use]
    pub fn depth(&self) -> usize {
        usize::BITS as usize - (self.inputs - 1).leading_zeros() as usize
    }

    /// Total adder nodes (`inputs − 1`): each node reduces two operands to
    /// one.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.inputs - 1
    }

    /// Bit-width of the final sum, `⌈log₂(inputs + 1)⌉`.
    #[must_use]
    pub fn output_bits(&self) -> usize {
        (usize::BITS - self.inputs.leading_zeros()) as usize
    }

    /// Total full-adder equivalents across all nodes.
    ///
    /// A node at level `l` (1-based) adds two `l`-bit operands with an
    /// `l`-bit ripple-carry adder (`l` full adders, carry-out becomes the
    /// new MSB). Level widths are capped at [`Self::output_bits`]: sums
    /// can never exceed the input count, so top-of-tree adders do not keep
    /// widening.
    #[must_use]
    pub fn fa_equivalents(&self) -> usize {
        let cap = self.output_bits();
        let mut operands = self.inputs;
        let mut width = 1usize; // operand width entering the level
        let mut total = 0usize;
        while operands > 1 {
            total += (operands / 2) * width.min(cap);
            operands = operands.div_ceil(2);
            width += 1;
        }
        total
    }

    /// Critical path through the tree, in full-adder delays.
    ///
    /// In a ripple-carry adder tree the LSB of each level is valid one
    /// full-adder delay after its inputs' LSBs, so the carry ripple of a
    /// level overlaps the levels above it; only the final adder's ripple
    /// is fully exposed. The standard estimate is
    /// `depth + output_bits − 1`.
    #[must_use]
    pub fn critical_path_fa(&self) -> usize {
        if self.inputs == 1 {
            return 0;
        }
        self.depth() + self.output_bits() - 1
    }

    /// Functionally reduces `values` exactly as the tree wires do:
    /// pairwise, level by level, odd operand passing through.
    ///
    /// The result is tested to equal a plain sum — that equality is the
    /// functional-correctness contract of the hardware model.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the modelled input count.
    #[must_use]
    pub fn reduce(&self, values: &[u64]) -> u64 {
        assert_eq!(values.len(), self.inputs, "operand count differs from the model");
        let mut level: Vec<u64> = values.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(pair.iter().sum());
            }
            level = next;
        }
        level[0]
    }

    /// Reduces the bits of packed `words` (a hypervector's storage, `d`
    /// significant bits) through the tree.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `inputs` bits.
    #[must_use]
    pub fn popcount(&self, words: &[u64]) -> u64 {
        assert!(
            words.len() * 64 >= self.inputs,
            "words provide {} bits, tree needs {}",
            words.len() * 64,
            self.inputs
        );
        let bits: Vec<u64> =
            (0..self.inputs).map(|i| (words[i / 64] >> (i % 64)) & 1).collect();
        self.reduce(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn structural_numbers_for_known_sizes() {
        let t = AdderTree::new(1);
        assert_eq!((t.depth(), t.node_count(), t.output_bits()), (0, 0, 1));
        assert_eq!(t.critical_path_fa(), 0);

        let t = AdderTree::new(2);
        assert_eq!((t.depth(), t.node_count(), t.output_bits()), (1, 1, 2));

        let t = AdderTree::new(64);
        assert_eq!((t.depth(), t.node_count(), t.output_bits()), (6, 63, 7));

        let t = AdderTree::new(10_000);
        assert_eq!((t.depth(), t.node_count(), t.output_bits()), (14, 9_999, 14));
    }

    #[test]
    fn critical_path_is_logarithmic() {
        // The load-bearing property for the paper's O(1) claim: doubling d
        // adds O(1) levels, it does not double the path.
        let small = AdderTree::new(1_024).critical_path_fa();
        let large = AdderTree::new(1_048_576).critical_path_fa();
        assert!(large < 3 * small, "path must grow logarithmically: {small} -> {large}");
    }

    #[test]
    fn fa_equivalents_bounded_and_monotone() {
        // d-1 nodes of width >= 1 gives a lower bound; width <= output_bits
        // gives an upper bound.
        for d in [2usize, 3, 64, 1000, 10_000] {
            let t = AdderTree::new(d);
            let fa = t.fa_equivalents();
            assert!(fa >= t.node_count(), "d={d}");
            assert!(fa <= t.node_count() * t.output_bits(), "d={d}");
        }
        assert!(AdderTree::new(10_000).fa_equivalents() > AdderTree::new(1_000).fa_equivalents());
    }

    #[test]
    fn reduce_handles_odd_widths() {
        let t = AdderTree::new(5);
        assert_eq!(t.reduce(&[1, 2, 3, 4, 5]), 15);
        let t = AdderTree::new(7);
        assert_eq!(t.reduce(&[1; 7]), 7);
    }

    #[test]
    fn popcount_counts_only_significant_bits() {
        // 70 significant bits over two words; the tail of word 1 is noise
        // that the tree must never see.
        let words = [u64::MAX, u64::MAX];
        assert_eq!(AdderTree::new(70).popcount(&words), 70);
        assert_eq!(AdderTree::new(128).popcount(&words), 128);
        assert_eq!(AdderTree::new(1).popcount(&words), 1);
    }

    #[test]
    #[should_panic(expected = "operand count")]
    fn reduce_wrong_arity_panics() {
        let _ = AdderTree::new(4).reduce(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_panics() {
        let _ = AdderTree::new(0);
    }

    proptest! {
        #[test]
        fn reduce_equals_sum(values in prop::collection::vec(0u64..1000, 1..200)) {
            let t = AdderTree::new(values.len());
            prop_assert_eq!(t.reduce(&values), values.iter().sum::<u64>());
        }

        #[test]
        fn popcount_equals_software_popcount(words in prop::collection::vec(any::<u64>(), 1..8),
                                             cut in 0usize..63) {
            let d = words.len() * 64 - cut;
            let t = AdderTree::new(d);
            let expected: u64 = (0..d).map(|i| (words[i / 64] >> (i % 64)) & 1).sum();
            prop_assert_eq!(t.popcount(&words), expected);
        }

        #[test]
        fn depth_is_ceil_log2(d in 1usize..100_000) {
            let t = AdderTree::new(d);
            prop_assert!(1usize << t.depth() >= d);
            if t.depth() > 0 {
                prop_assert!(1usize << (t.depth() - 1) < d);
            }
        }
    }
}
