//! Projecting the paper's Figure 4 onto modelled HDC hardware.
//!
//! Figure 4 plots average request-handling time against pool size for
//! consistent, rendezvous and HD hashing, with HD measured on a GPU
//! stand-in for real HDC hardware; Section 5.2 then argues accelerators
//! would flatten HD's curve to a constant. This module computes that
//! projected curve from the gate-level model, so the benchmark harness
//! can print the measured CPU series and the projected hardware series
//! side by side — making the substitution (GPU → cycle model) explicit
//! and auditable rather than a verbal claim.

use crate::tech::TechnologyParams;
use crate::timing::{ExecutionModel, LookupSchedule};

/// One projected point of the Figure 4 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProjectionPoint {
    /// Pool size `k` (stored server hypervectors).
    pub servers: usize,
    /// Steady-state seconds per request on the modelled hardware.
    pub seconds_per_request: f64,
}

/// Projects steady-state request-handling time for each pool size.
///
/// `dimension` is the hypervector width (the paper's default is 10 000)
/// and `model` selects the clocking discipline — use
/// [`ExecutionModel::Combinational`] for the paper's single-cycle claim.
///
/// # Panics
///
/// Panics if any pool size or the dimension is zero.
///
/// # Examples
///
/// ```
/// use hdhash_accel::projection::project_figure4;
/// use hdhash_accel::{ExecutionModel, TechnologyParams};
///
/// let points = project_figure4(
///     &[2, 32, 512, 2048],
///     10_000,
///     ExecutionModel::Combinational,
///     &TechnologyParams::fpga_28nm(),
/// );
/// // Single-cycle hardware: the curve is flat where software is O(n).
/// let first = points.first().expect("non-empty").seconds_per_request;
/// let last = points.last().expect("non-empty").seconds_per_request;
/// assert!(last / first < 2.0);
/// ```
#[must_use]
pub fn project_figure4(
    pool_sizes: &[usize],
    dimension: usize,
    model: ExecutionModel,
    tech: &TechnologyParams,
) -> Vec<ProjectionPoint> {
    pool_sizes
        .iter()
        .map(|&k| ProjectionPoint {
            servers: k,
            seconds_per_request: LookupSchedule::plan(model, k, dimension, tech)
                .time_per_lookup_ps()
                / 1.0e12,
        })
        .collect()
}

/// The speedup of a projected hardware point over a measured software
/// time for the same pool size.
///
/// # Panics
///
/// Panics if `software_seconds_per_request` is not positive and finite.
#[must_use]
pub fn speedup_over_software(point: ProjectionPoint, software_seconds_per_request: f64) -> f64 {
    assert!(
        software_seconds_per_request.is_finite() && software_seconds_per_request > 0.0,
        "software time must be positive"
    );
    software_seconds_per_request / point.seconds_per_request
}

#[cfg(test)]
mod tests {
    use super::*;

    const POOLS: [usize; 11] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

    #[test]
    fn combinational_projection_is_flat() {
        let points = project_figure4(
            &POOLS,
            10_000,
            ExecutionModel::Combinational,
            &TechnologyParams::fpga_28nm(),
        );
        assert_eq!(points.len(), POOLS.len());
        let first = points[0].seconds_per_request;
        let last = points[POOLS.len() - 1].seconds_per_request;
        assert!(last / first < 2.0, "single-cycle curve must be near-flat");
        // Every point is a usable sub-microsecond lookup.
        for p in &points {
            assert!(p.seconds_per_request < 1.0e-6, "{p:?}");
            assert!(p.seconds_per_request > 0.0, "{p:?}");
        }
    }

    #[test]
    fn word_serial_projection_is_linear() {
        let points = project_figure4(
            &POOLS,
            10_000,
            ExecutionModel::WordSerial { lanes: 8 },
            &TechnologyParams::asic_22nm(),
        );
        let first = points[0].seconds_per_request;
        let last = points[POOLS.len() - 1].seconds_per_request;
        let ratio = last / first;
        assert!(
            (512.0..2048.0).contains(&ratio),
            "word-serial must scale ~1024x over the sweep, got {ratio:.0}x"
        );
    }

    #[test]
    fn pipelined_throughput_beats_combinational() {
        let tech = TechnologyParams::asic_22nm();
        let single =
            project_figure4(&[512], 10_000, ExecutionModel::Combinational, &tech)[0];
        let piped =
            project_figure4(&[512], 10_000, ExecutionModel::Pipelined { stages: 8 }, &tech)[0];
        assert!(piped.seconds_per_request <= single.seconds_per_request);
    }

    #[test]
    fn speedup_is_ratio() {
        let point = ProjectionPoint { servers: 512, seconds_per_request: 1.0e-8 };
        let speedup = speedup_over_software(point, 1.0e-5);
        assert!((speedup - 1000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speedup_rejects_nonpositive_software_time() {
        let point = ProjectionPoint { servers: 1, seconds_per_request: 1.0e-9 };
        let _ = speedup_over_software(point, 0.0);
    }

    #[test]
    fn corners_preserve_ordering() {
        // Faster corners give faster lookups at identical shape.
        let fpga = project_figure4(&[512], 10_000, ExecutionModel::Combinational,
                                   &TechnologyParams::fpga_28nm())[0];
        let asic = project_figure4(&[512], 10_000, ExecutionModel::Combinational,
                                   &TechnologyParams::asic_22nm())[0];
        assert!(asic.seconds_per_request < fpga.seconds_per_request);
    }
}
