//! A winner-take-all comparator tree selecting the arg-min distance.
//!
//! The last stage of the combinational associative memory compares the `k`
//! Hamming distances produced by the adder trees and outputs the index of
//! the smallest — Eq. 2's arg-max similarity, expressed over distances.
//! A balanced binary tree of compare-and-select nodes does this in
//! `⌈log₂ k⌉` levels with `k − 1` comparators, so — like the adder tree —
//! the critical path grows logarithmically and the whole selection stays
//! inside the same combinational cycle.
//!
//! Ties break toward the **lower index**, matching the software
//! tie-break (earliest-inserted entry) in
//! [`hdhash_hdc::AssociativeMemory`], so hardware and software return
//! bit-identical winners. That equality is asserted by the datapath tests.

/// Structural model of a `k`-leaf comparator tree over `score_bits`-wide
/// operands.
///
/// # Examples
///
/// ```
/// use hdhash_accel::ComparatorTree;
///
/// // 512 servers, 14-bit distances (d = 10_000).
/// let tree = ComparatorTree::new(512, 14);
/// assert_eq!(tree.depth(), 9);
/// assert_eq!(tree.node_count(), 511);
/// let (winner, best) = ComparatorTree::new(4, 14).argmin(&[9, 4, 7, 4]);
/// assert_eq!((winner, best), (1, 4)); // tie 1 vs 3 -> lower index
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComparatorTree {
    entries: usize,
    score_bits: usize,
}

impl ComparatorTree {
    /// Models a tree over `entries` scores of `score_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or `score_bits == 0`.
    #[must_use]
    pub fn new(entries: usize, score_bits: usize) -> Self {
        assert!(entries > 0, "a comparator tree needs at least one entry");
        assert!(score_bits > 0, "scores must be at least one bit wide");
        Self { entries, score_bits }
    }

    /// Number of competing scores.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Operand width in bits.
    #[must_use]
    pub fn score_bits(&self) -> usize {
        self.score_bits
    }

    /// Number of compare-and-select levels, `⌈log₂ entries⌉`.
    #[must_use]
    pub fn depth(&self) -> usize {
        usize::BITS as usize - (self.entries - 1).leading_zeros() as usize
    }

    /// Total compare-and-select nodes (`entries − 1`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.entries - 1
    }

    /// Critical path in single-bit compare stages.
    ///
    /// Each node resolves its magnitude comparison with a ripple over the
    /// operand width before selecting, so one node costs `score_bits`
    /// stages and the path is `depth · score_bits`.
    #[must_use]
    pub fn critical_path_stages(&self) -> usize {
        self.depth() * self.score_bits
    }

    /// Functionally selects the minimum score exactly as the tree wires
    /// do: pairwise, level by level, ties toward the lower index. Returns
    /// `(index, score)`.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len()` differs from the modelled entry count, or
    /// if any score needs more than `score_bits` bits (a hardware
    /// overflow the model refuses to hide).
    #[must_use]
    pub fn argmin(&self, scores: &[u64]) -> (usize, u64) {
        assert_eq!(scores.len(), self.entries, "score count differs from the model");
        let limit = if self.score_bits >= 64 { u64::MAX } else { (1u64 << self.score_bits) - 1 };
        let mut level: Vec<(usize, u64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                assert!(s <= limit, "score {s} overflows {} bits", self.score_bits);
                (i, s)
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(match pair {
                    [a, b] => {
                        // Strict '<' keeps ties on the left (lower index).
                        if b.1 < a.1 {
                            *b
                        } else {
                            *a
                        }
                    }
                    [a] => *a,
                    _ => unreachable!("chunks(2) yields one or two items"),
                });
            }
            level = next;
        }
        level[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn structure_for_known_sizes() {
        let t = ComparatorTree::new(1, 8);
        assert_eq!((t.depth(), t.node_count()), (0, 0));
        assert_eq!(t.critical_path_stages(), 0);

        let t = ComparatorTree::new(2048, 14);
        assert_eq!((t.depth(), t.node_count()), (11, 2047));
        assert_eq!(t.critical_path_stages(), 11 * 14);
        assert_eq!(t.entries(), 2048);
        assert_eq!(t.score_bits(), 14);
    }

    #[test]
    fn single_entry_wins_trivially() {
        assert_eq!(ComparatorTree::new(1, 4).argmin(&[13]), (0, 13));
    }

    #[test]
    fn ties_resolve_to_lowest_index_everywhere() {
        // All-equal scores: index 0 must survive every level.
        for n in [2usize, 3, 5, 8, 17] {
            let t = ComparatorTree::new(n, 8);
            assert_eq!(t.argmin(&vec![42; n]), (0, 42), "n={n}");
        }
        // A tie in the right subtree resolves locally to the lower index.
        let t = ComparatorTree::new(4, 8);
        assert_eq!(t.argmin(&[9, 7, 7, 9]), (1, 7));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_score_panics() {
        let _ = ComparatorTree::new(2, 4).argmin(&[3, 16]);
    }

    #[test]
    #[should_panic(expected = "score count")]
    fn wrong_arity_panics() {
        let _ = ComparatorTree::new(3, 8).argmin(&[1, 2]);
    }

    #[test]
    fn wide_scores_do_not_overflow_the_limit_mask() {
        let t = ComparatorTree::new(2, 64);
        assert_eq!(t.argmin(&[u64::MAX, 5]), (1, 5));
    }

    proptest! {
        #[test]
        fn argmin_matches_linear_scan(scores in prop::collection::vec(0u64..10_000, 1..300)) {
            let t = ComparatorTree::new(scores.len(), 14);
            let (idx, best) = t.argmin(&scores);
            let linear = scores
                .iter()
                .enumerate()
                .min_by_key(|&(i, &s)| (s, i))
                .map(|(i, &s)| (i, s))
                .expect("non-empty");
            prop_assert_eq!((idx, best), linear);
        }

        #[test]
        fn depth_is_ceil_log2(k in 1usize..10_000) {
            let t = ComparatorTree::new(k, 8);
            prop_assert!(1usize << t.depth() >= k);
            if t.depth() > 0 {
                prop_assert!(1usize << (t.depth() - 1) < k);
            }
        }
    }
}
