//! Binarized bundling: majority by a tree of 3-input majority gates.
//!
//! Bundling `k` hypervectors exactly requires, per dimension, a counter
//! wide enough to hold `k` votes and a final threshold — `k − 1`
//! full-adder equivalents per bit. Schmuck et al.'s *binarized bundling*
//! replaces the counters with a tree of single-gate 3-input majorities
//! evaluated on **binary partial results**: far cheaper (one gate per
//! reduction step, no carries) at the cost of *fidelity* — the tree
//! result is a good but inexact approximation of the true bitwise
//! majority. This module implements both, quantifies the hardware saving
//! ([`BundlingCost`]) and exposes the fidelity for measurement
//! ([`agreement`]), which the tests pin to its analytic expectations.

use hdhash_hdc::{DimensionMismatchError, Hypervector};

/// The 3-input bitwise majority `(a∧b) ∨ (b∧c) ∨ (a∧c)` — one gate per
/// dimension in hardware, three AND/OR word operations here.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if dimensions differ.
///
/// # Examples
///
/// ```
/// use hdhash_accel::majority::maj3;
/// use hdhash_hdc::Hypervector;
///
/// let a = Hypervector::ones(64);
/// let b = Hypervector::ones(64);
/// let c = Hypervector::zeros(64);
/// assert_eq!(maj3(&a, &b, &c)?, Hypervector::ones(64));
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
pub fn maj3(
    a: &Hypervector,
    b: &Hypervector,
    c: &Hypervector,
) -> Result<Hypervector, DimensionMismatchError> {
    let d = a.dimension();
    for hv in [b, c] {
        if hv.dimension() != d {
            return Err(DimensionMismatchError { left: d, right: hv.dimension() });
        }
    }
    let mut out = Hypervector::zeros(d);
    for i in 0..d {
        let votes = u8::from(a.bit(i)) + u8::from(b.bit(i)) + u8::from(c.bit(i));
        out.set_bit(i, votes >= 2);
    }
    Ok(out)
}

/// Exact bitwise majority of an **odd** number of hypervectors (the
/// counter-based reference the binarized tree approximates).
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if any dimension differs from the
/// first.
///
/// # Panics
///
/// Panics if `inputs` is empty or has an even length — the hardware
/// comparison is only meaningful where the exact majority is tie-free.
pub fn exact_majority(inputs: &[&Hypervector]) -> Result<Hypervector, DimensionMismatchError> {
    assert!(!inputs.is_empty(), "majority of zero hypervectors is undefined");
    assert!(inputs.len() % 2 == 1, "exact majority requires an odd input count");
    let d = inputs[0].dimension();
    for hv in inputs {
        if hv.dimension() != d {
            return Err(DimensionMismatchError { left: d, right: hv.dimension() });
        }
    }
    let half = inputs.len() / 2;
    let mut out = Hypervector::zeros(d);
    for i in 0..d {
        let votes = inputs.iter().filter(|hv| hv.bit(i)).count();
        out.set_bit(i, votes > half);
    }
    Ok(out)
}

/// Binarized bundling: reduce the inputs with a tree of [`maj3`] gates.
///
/// Levels consume operands three at a time; one or two leftovers pass to
/// the next level. When exactly two operands remain, the final gate votes
/// with `tie`, the auxiliary random vector of the binarized-bundling
/// scheme (for odd input counts the tie vector never decides alone — it
/// only arbitrates the two-operand tail the tree structure produces).
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if any dimension differs.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn binarized_bundle(
    inputs: &[&Hypervector],
    tie: &Hypervector,
) -> Result<Hypervector, DimensionMismatchError> {
    assert!(!inputs.is_empty(), "bundle of zero hypervectors is undefined");
    let d = inputs[0].dimension();
    for hv in inputs.iter().copied().chain([tie]) {
        if hv.dimension() != d {
            return Err(DimensionMismatchError { left: d, right: hv.dimension() });
        }
    }
    let mut level: Vec<Hypervector> = inputs.iter().map(|hv| (*hv).clone()).collect();
    while level.len() > 1 {
        if level.len() == 2 {
            return maj3(&level[0], &level[1], tie);
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(3));
        for chunk in level.chunks(3) {
            match chunk {
                [a, b, c] => next.push(maj3(a, b, c)?),
                rest => next.extend(rest.iter().cloned()),
            }
        }
        level = next;
    }
    Ok(level.remove(0))
}

/// Fraction of agreeing bits between two hypervectors (`1.0` = equal).
///
/// # Panics
///
/// Panics if dimensions differ.
#[must_use]
pub fn agreement(a: &Hypervector, b: &Hypervector) -> f64 {
    assert_eq!(a.dimension(), b.dimension(), "agreement requires equal dimensions");
    1.0 - a.hamming_distance(b) as f64 / a.dimension() as f64
}

/// Per-dimension hardware cost of bundling `k` vectors both ways.
///
/// # Examples
///
/// ```
/// use hdhash_accel::majority::BundlingCost;
///
/// let cost = BundlingCost::for_inputs(27);
/// // The binarized tree halves the logic of the counters it replaces —
/// // and a maj3 gate is one cell where a full adder is several.
/// assert!(cost.maj3_gates_per_bit * 2 <= cost.counter_fa_per_bit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BundlingCost {
    /// Inputs being bundled.
    pub inputs: usize,
    /// Full-adder equivalents per dimension for the exact counter
    /// (`k − 1` increments).
    pub counter_fa_per_bit: usize,
    /// 3-input majority gates per dimension for the binarized tree.
    pub maj3_gates_per_bit: usize,
}

impl BundlingCost {
    /// Costs for bundling `k` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn for_inputs(k: usize) -> Self {
        assert!(k > 0, "bundling zero inputs is undefined");
        // Walk the same level structure binarized_bundle uses.
        let mut gates = 0usize;
        let mut len = k;
        while len > 1 {
            if len == 2 {
                gates += 1;
                len = 1;
            } else {
                gates += len / 3;
                len = len / 3 + len % 3;
            }
        }
        Self { inputs: k, counter_fa_per_bit: k - 1, maj3_gates_per_bit: gates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_hdc::Rng;

    fn random_set(k: usize, d: usize, seed: u64) -> Vec<Hypervector> {
        let mut rng = Rng::new(seed);
        (0..k).map(|_| Hypervector::random(d, &mut rng)).collect()
    }

    #[test]
    fn maj3_truth_table() {
        let o = Hypervector::ones(8);
        let z = Hypervector::zeros(8);
        assert_eq!(maj3(&o, &o, &o).expect("dims"), o);
        assert_eq!(maj3(&o, &o, &z).expect("dims"), o);
        assert_eq!(maj3(&o, &z, &z).expect("dims"), z);
        assert_eq!(maj3(&z, &z, &z).expect("dims"), z);
    }

    #[test]
    fn maj3_dimension_mismatch_errors() {
        let a = Hypervector::zeros(8);
        let b = Hypervector::zeros(9);
        assert!(maj3(&a, &a, &b).is_err());
        assert!(maj3(&a, &b, &a).is_err());
    }

    #[test]
    fn three_inputs_binarized_equals_exact() {
        // One gate *is* the exact majority of three.
        let set = random_set(3, 2048, 70);
        let refs: Vec<&Hypervector> = set.iter().collect();
        let tie = Hypervector::random(2048, &mut Rng::new(71));
        assert_eq!(
            binarized_bundle(&refs, &tie).expect("dims"),
            exact_majority(&refs).expect("dims")
        );
    }

    #[test]
    fn single_input_is_identity() {
        let set = random_set(1, 256, 72);
        let tie = Hypervector::zeros(256);
        assert_eq!(binarized_bundle(&[&set[0]], &tie).expect("dims"), set[0]);
    }

    #[test]
    fn nine_inputs_fidelity_matches_analysis() {
        // For nine iid uniform inputs the two-level maj3 tree agrees with
        // the exact majority on a clear supermajority of dimensions —
        // the documented fidelity trade of binarized bundling.
        let set = random_set(9, 10_000, 73);
        let refs: Vec<&Hypervector> = set.iter().collect();
        let tie = Hypervector::random(10_000, &mut Rng::new(74));
        let tree = binarized_bundle(&refs, &tie).expect("dims");
        let exact = exact_majority(&refs).expect("dims");
        let a = agreement(&tree, &exact);
        assert!(a > 0.70, "tree majority lost too much fidelity: {a:.3}");
        assert!(a < 1.00, "nine inputs cannot agree perfectly");
    }

    #[test]
    fn bundle_remains_similar_to_every_input() {
        // P(tree output = input bit) ≈ 0.625 for 9 inputs (¾ per maj3
        // level), well above the 0.5 of an unrelated vector.
        let set = random_set(9, 10_000, 75);
        let refs: Vec<&Hypervector> = set.iter().collect();
        let tie = Hypervector::random(10_000, &mut Rng::new(76));
        let tree = binarized_bundle(&refs, &tie).expect("dims");
        for (i, hv) in set.iter().enumerate() {
            let a = agreement(&tree, hv);
            assert!(a > 0.55, "input {i} decorrelated from its bundle: {a:.3}");
        }
        let unrelated = Hypervector::random(10_000, &mut Rng::new(77));
        assert!(agreement(&tree, &unrelated) < 0.55);
    }

    #[test]
    fn even_counts_use_the_tie_vector() {
        let set = random_set(2, 4096, 78);
        let tie = Hypervector::random(4096, &mut Rng::new(79));
        let out = binarized_bundle(&[&set[0], &set[1]], &tie).expect("dims");
        assert_eq!(out, maj3(&set[0], &set[1], &tie).expect("dims"));
    }

    #[test]
    #[should_panic(expected = "odd input count")]
    fn exact_majority_rejects_even_counts() {
        let set = random_set(4, 64, 80);
        let refs: Vec<&Hypervector> = set.iter().collect();
        let _ = exact_majority(&refs);
    }

    #[test]
    fn cost_model_counts_the_actual_tree() {
        // k=9: two full levels of 3 gates and 1 gate -> 3 + 1 = 4 gates.
        let c = BundlingCost::for_inputs(9);
        assert_eq!(c.maj3_gates_per_bit, 4);
        assert_eq!(c.counter_fa_per_bit, 8);
        // k=27: 9 + 3 + 1 = 13 gates vs 26 FA.
        let c = BundlingCost::for_inputs(27);
        assert_eq!(c.maj3_gates_per_bit, 13);
        assert_eq!(c.counter_fa_per_bit, 26);
        // Degenerate sizes.
        assert_eq!(BundlingCost::for_inputs(1).maj3_gates_per_bit, 0);
        assert_eq!(BundlingCost::for_inputs(2).maj3_gates_per_bit, 1);
    }

    #[test]
    fn cost_saving_grows_with_inputs() {
        for k in [9usize, 27, 81, 243] {
            let c = BundlingCost::for_inputs(k);
            assert!(
                c.maj3_gates_per_bit < c.counter_fa_per_bit / 2 + 1,
                "no saving at k={k}: {c:?}"
            );
        }
    }
}
