//! Rule-90 cellular-automaton rematerialization of hypervectors.
//!
//! Storing a codebook of `n` basis hypervectors costs `n · d` bits of
//! memory — the dominant area term of an HDC accelerator. Schmuck et al.
//! instead store a *single* seed hypervector and regenerate ("re-
//! materialize") the `i`-th basis vector on the fly as the `i`-step
//! evolution of a **rule-90 cellular automaton** seeded with it: each cell
//! becomes the XOR of its two neighbours,
//!
//! ```text
//! x'[j] = x[(j-1) mod d] ⊕ x[(j+1) mod d]
//! ```
//!
//! Rule 90 is a good pseudo-random expander (successive states of a random
//! seed are pairwise ~orthogonal) and — crucially for hardware — **linear
//! over GF(2)**: the one-step operator is `L + R` where `L`/`R` are cyclic
//! shifts. Linearity gives the freezing property this module exploits:
//!
//! ```text
//! (L + R)^(2^j) = L^(2^j) + R^(2^j)        (over GF(2))
//! ```
//!
//! so evolving `2^j` steps is a *single* stride-`2^j` XOR, and evolving any
//! `k` steps costs only `popcount(k)` stride-XORs ([`Rematerializer`]
//! uses this `O(log k)` shortcut; [`ca90_step`] is the literal automaton).

use hdhash_hdc::ops::permute;
use hdhash_hdc::Hypervector;

/// Advances a hypervector by one rule-90 step (cyclic boundary).
///
/// # Examples
///
/// ```
/// use hdhash_accel::ca90_step;
/// use hdhash_hdc::Hypervector;
///
/// // A single live cell spreads to exactly its two neighbours.
/// let mut seed = Hypervector::zeros(101);
/// seed.set_bit(50, true);
/// let next = ca90_step(&seed);
/// assert!(next.bit(49) && next.bit(51) && !next.bit(50));
/// assert_eq!(next.count_ones(), 2);
/// ```
#[must_use]
pub fn ca90_step(hv: &Hypervector) -> Hypervector {
    stride_step(hv, 1)
}

/// Applies the `s`-stride operator `L^s + R^s`: each cell becomes the XOR
/// of the cells `s` positions away on either side.
///
/// By linearity this equals `2^j` literal steps when `s = 2^j`. When the
/// two shifts coincide (`2s ≡ 0 (mod d)`) the operator annihilates every
/// state — a real property of rule 90 on cyclic lattices, not an edge
/// case to paper over.
#[must_use]
pub fn stride_step(hv: &Hypervector, s: usize) -> Hypervector {
    let d = hv.dimension();
    let left = permute(hv, s % d);
    let right = permute(hv, (d - s % d) % d);
    left.xor(&right).expect("both rotations preserve the dimension")
}

/// Evolves a hypervector by `steps` rule-90 steps in `O(popcount(steps))`
/// stride-XOR operations.
///
/// # Examples
///
/// ```
/// use hdhash_accel::ca90::{ca90_step, evolve};
/// use hdhash_hdc::{Hypervector, Rng};
///
/// let seed = Hypervector::random(777, &mut Rng::new(1));
/// let mut literal = seed.clone();
/// for _ in 0..13 {
///     literal = ca90_step(&literal);
/// }
/// assert_eq!(evolve(&seed, 13), literal);
/// ```
#[must_use]
pub fn evolve(hv: &Hypervector, steps: usize) -> Hypervector {
    let mut state = hv.clone();
    let mut remaining = steps;
    let mut stride = 1usize;
    while remaining > 0 {
        if remaining & 1 == 1 {
            state = stride_step(&state, stride);
        }
        // Strides only matter modulo d; keep them bounded.
        stride = (stride * 2) % hv.dimension().max(1);
        remaining >>= 1;
    }
    state
}

/// Regenerates basis hypervectors from a stored seed instead of a stored
/// codebook.
///
/// Hardware holding `d` seed bits plus the CA logic replaces `n · d` bits
/// of codebook ROM; [`Rematerializer::storage_bits`] vs.
/// [`Rematerializer::replaced_bits`] quantifies the saving. Sequential
/// access (`next`) costs one CA step; random access (`materialize`) costs
/// `O(log i)` stride-XORs thanks to GF(2) linearity.
///
/// # Examples
///
/// ```
/// use hdhash_accel::Rematerializer;
/// use hdhash_hdc::{Hypervector, Rng};
///
/// let seed = Hypervector::random(10_000, &mut Rng::new(42));
/// let remat = Rematerializer::new(seed.clone());
/// assert_eq!(remat.materialize(0), seed);
/// // Successive states of a random seed are pairwise quasi-orthogonal.
/// let a = remat.materialize(3);
/// let b = remat.materialize(9);
/// let dist = a.hamming_distance(&b);
/// assert!((4_000..6_000).contains(&dist));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rematerializer {
    seed: Hypervector,
}

impl Rematerializer {
    /// Wraps a seed hypervector.
    #[must_use]
    pub fn new(seed: Hypervector) -> Self {
        Self { seed }
    }

    /// The stored seed (state `0`).
    #[must_use]
    pub fn seed(&self) -> &Hypervector {
        &self.seed
    }

    /// The hypervector dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.seed.dimension()
    }

    /// Regenerates the `index`-th basis hypervector (the `index`-step CA
    /// evolution of the seed).
    #[must_use]
    pub fn materialize(&self, index: usize) -> Hypervector {
        evolve(&self.seed, index)
    }

    /// Regenerates a whole prefix of the basis sequentially (one CA step
    /// per element — the streaming discipline of the hardware).
    #[must_use]
    pub fn materialize_prefix(&self, count: usize) -> Vec<Hypervector> {
        let mut out = Vec::with_capacity(count);
        let mut state = self.seed.clone();
        for _ in 0..count {
            let next = ca90_step(&state);
            out.push(state);
            state = next;
        }
        out
    }

    /// Bits the accelerator actually stores: the seed only.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.seed.dimension()
    }

    /// Bits a stored codebook of `n` vectors would occupy instead.
    #[must_use]
    pub fn replaced_bits(&self, n: usize) -> usize {
        n * self.seed.dimension()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_hdc::Rng;
    use proptest::prelude::*;

    #[test]
    fn zero_state_is_a_fixed_point() {
        let z = Hypervector::zeros(257);
        assert_eq!(ca90_step(&z), z);
        assert_eq!(evolve(&z, 1000), z);
    }

    #[test]
    fn single_cell_spreads_symmetrically() {
        let mut seed = Hypervector::zeros(1001);
        seed.set_bit(500, true);
        // After k < d/2 steps the pattern is the Pascal-triangle-mod-2 row,
        // whose support is within [500-k, 500+k] and symmetric about 500.
        let mut state = seed;
        for k in 1..=20usize {
            state = ca90_step(&state);
            for j in 0..1001 {
                let mirrored = 1000 - j; // reflect about 500: j' = 1000 - j
                assert_eq!(state.bit(j), state.bit(mirrored), "asymmetry at step {k}, bit {j}");
                if state.bit(j) {
                    let dist = j.abs_diff(500);
                    assert!(dist <= k, "cell {j} outside the light cone at step {k}");
                }
            }
        }
    }

    #[test]
    fn sierpinski_row_weights() {
        // Row k of Pascal's triangle mod 2 has 2^popcount(k) odd entries
        // (Kummer), so a single seeded cell evolves to that many live cells
        // while the light cone fits the lattice.
        let mut seed = Hypervector::zeros(4096);
        seed.set_bit(2048, true);
        for k in [1usize, 2, 3, 4, 7, 8, 15, 16, 31] {
            let state = evolve(&seed, k);
            assert_eq!(
                state.count_ones(),
                1 << k.count_ones(),
                "wrong live-cell count at step {k}"
            );
        }
    }

    #[test]
    fn evolve_matches_literal_iteration() {
        for d in [64usize, 101, 1000] {
            let seed = Hypervector::random(d, &mut Rng::new(d as u64));
            let mut literal = seed.clone();
            for k in 0..40usize {
                assert_eq!(evolve(&seed, k), literal, "divergence at step {k}, d={d}");
                literal = ca90_step(&literal);
            }
        }
    }

    #[test]
    fn annihilation_on_power_of_two_lattice() {
        // On a cyclic lattice whose size divides 2^j, 2^j steps annihilate
        // every state: L^(2^j) = R^(2^j) so the operator is zero.
        let seed = Hypervector::random(64, &mut Rng::new(9));
        assert_eq!(evolve(&seed, 64).count_ones(), 0);
        // Odd lattice sizes never annihilate a non-zero state this way.
        let seed = Hypervector::random(63, &mut Rng::new(10));
        assert_ne!(evolve(&seed, 64).count_ones(), 0);
    }

    #[test]
    fn successive_states_decorrelate() {
        let remat = Rematerializer::new(Hypervector::random(10_000, &mut Rng::new(77)));
        let states = remat.materialize_prefix(8);
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                let dist = states[i].hamming_distance(&states[j]);
                assert!(
                    (4_200..5_800).contains(&dist),
                    "states {i},{j} are correlated: distance {dist}"
                );
            }
        }
    }

    #[test]
    fn prefix_matches_random_access() {
        let remat = Rematerializer::new(Hypervector::random(512, &mut Rng::new(4)));
        let prefix = remat.materialize_prefix(10);
        for (i, hv) in prefix.iter().enumerate() {
            assert_eq!(&remat.materialize(i), hv, "prefix diverges at index {i}");
        }
    }

    #[test]
    fn storage_accounting() {
        let remat = Rematerializer::new(Hypervector::random(10_000, &mut Rng::new(5)));
        assert_eq!(remat.storage_bits(), 10_000);
        assert_eq!(remat.replaced_bits(512), 5_120_000);
        assert_eq!(remat.dimension(), 10_000);
        assert_eq!(remat.seed().dimension(), 10_000);
    }

    proptest! {
        #[test]
        fn linearity_over_gf2(seed_a in any::<u64>(), seed_b in any::<u64>(), d in 2usize..300) {
            let a = Hypervector::random(d, &mut Rng::new(seed_a));
            let b = Hypervector::random(d, &mut Rng::new(seed_b));
            let sum = a.xor(&b).expect("same dimension");
            prop_assert_eq!(
                ca90_step(&sum),
                ca90_step(&a).xor(&ca90_step(&b)).expect("same dimension")
            );
        }

        #[test]
        fn evolve_is_additive_in_steps(seed in any::<u64>(), d in 2usize..200,
                                       i in 0usize..64, j in 0usize..64) {
            let hv = Hypervector::random(d, &mut Rng::new(seed));
            prop_assert_eq!(evolve(&evolve(&hv, i), j), evolve(&hv, i + j));
        }

        #[test]
        fn step_preserves_dimension(seed in any::<u64>(), d in 1usize..500) {
            let hv = Hypervector::random(d, &mut Rng::new(seed));
            prop_assert_eq!(ca90_step(&hv).dimension(), d);
        }
    }
}
