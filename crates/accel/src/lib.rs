//! # hdhash-accel — a cycle-level model of an HDC inference accelerator
//!
//! The paper's efficiency argument (Sections 2.3 and 3) rests on Schmuck,
//! Benini and Rahimi, *"Hardware optimizations of dense binary
//! hyperdimensional computing: Rematerialization of hypervectors, binarized
//! bundling, and combinational associative memory"* (JETC 2019) — the
//! paper's reference \[18\]: on dedicated hardware, the similarity arg-max
//! of Eq. 2 ("inference") executes in a **single clock cycle**, which would
//! make every HD-hashing lookup `O(1)`.
//!
//! The authors could not build that hardware and substituted a GPU; we
//! cannot either, so this crate provides the closest software equivalent a
//! systems evaluation can use: a **functionally exact, cycle- and
//! gate-level model** of the combinational associative memory. Every
//! component both *computes the real answer* (bit-for-bit equal to the
//! software path in `hdhash-hdc`) and *accounts for the hardware cost* of
//! doing so — gate delays on the critical path, adder/comparator counts,
//! and per-lookup switching energy.
//!
//! The model follows the three techniques of Schmuck et al.:
//!
//! * [`ca90`] — **rematerialization**: basis hypervectors are not stored
//!   but regenerated on the fly from a small seed by iterating a rule-90
//!   cellular automaton (linear over GF(2), which gives an `O(log k)`
//!   stride-XOR shortcut for the `k`-step state);
//! * [`majority`] — **binarized bundling**: bitwise majority evaluated by
//!   a tree of 3-input majority gates on binary partial results instead of
//!   wide counters, traded against fidelity to the exact majority;
//! * [`datapath`] — the **combinational associative memory**: per stored
//!   vector an XOR stage and a deep adder tree ([`adder_tree`]) compute the
//!   Hamming distance, and a comparator tree ([`comparator`]) selects the
//!   arg-min, all in one combinational pass — one clock cycle.
//!
//! [`timing`] schedules the datapath under three execution disciplines
//! (fully combinational, pipelined, word-serial) against a technology
//! corner from [`tech`], and [`projection`] projects the paper's Figure 4
//! (average request-handling time vs. pool size) for accelerated HD
//! hashing next to the CPU-measured baselines.
//!
//! ## Quick example
//!
//! ```
//! use hdhash_accel::datapath::CombinationalAm;
//! use hdhash_accel::tech::TechnologyParams;
//! use hdhash_hdc::{Hypervector, Rng};
//!
//! let mut rng = Rng::new(5);
//! let stored: Vec<Hypervector> =
//!     (0..16).map(|_| Hypervector::random(2048, &mut rng)).collect();
//! let am = CombinationalAm::new(2048, stored.clone())?;
//!
//! // Functional: the datapath returns the true nearest neighbour.
//! let hit = am.infer(&stored[3]).expect("memory is non-empty");
//! assert_eq!(hit.index, 3);
//! assert_eq!(hit.distance, 0);
//!
//! // Timing: the whole inference fits in one (slow) combinational cycle.
//! let timing = am.timing(&TechnologyParams::asic_22nm());
//! assert!(timing.max_frequency_hz() > 1.0e6);
//! # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder_tree;
pub mod ca90;
pub mod comparator;
pub mod datapath;
pub mod majority;
pub mod projection;
pub mod tech;
pub mod timing;

pub use adder_tree::AdderTree;
pub use ca90::{ca90_step, Rematerializer};
pub use comparator::ComparatorTree;
pub use datapath::{CombinationalAm, Inference};
pub use tech::TechnologyParams;
pub use timing::{ExecutionModel, LookupSchedule};
