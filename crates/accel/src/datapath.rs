//! The combinational associative memory: one lookup, one clock cycle.
//!
//! This is the headline structure of Schmuck et al. that the paper's
//! `O(1)` claim stands on. For `k` stored hypervectors of dimension `d`
//! the datapath instantiates, fully in parallel:
//!
//! ```text
//! probe ──┬─ XOR (d gates) ── adder tree (d−1 nodes) ──┐
//!         ├─ XOR (d gates) ── adder tree (d−1 nodes) ──┤  comparator
//!         ┆        …                    …              ├─ tree (k−1) ── winner
//!         └─ XOR (d gates) ── adder tree (d−1 nodes) ──┘
//! ```
//!
//! No stage stores state, so the winner settles one critical-path delay
//! after the probe arrives: a *single clock cycle* at any frequency whose
//! period exceeds that path. [`CombinationalAm`] computes real answers
//! through exactly this dataflow (tested bit-identical to the software
//! scan in [`hdhash_hdc::AssociativeMemory`]) and reports the timing, area
//! and energy of the modelled hardware.

use hdhash_hdc::{DimensionMismatchError, Hypervector};

use crate::adder_tree::AdderTree;
use crate::comparator::ComparatorTree;
use crate::tech::TechnologyParams;

/// The winner of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inference {
    /// Index of the most similar stored vector (lowest index on ties).
    pub index: usize,
    /// Its Hamming distance from the probe.
    pub distance: u64,
}

/// Critical-path timing of one combinational lookup, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingReport {
    /// Delay of the XOR difference stage.
    pub xor_ps: f64,
    /// Delay of the popcount adder tree.
    pub adder_tree_ps: f64,
    /// Delay of the arg-min comparator tree.
    pub comparator_ps: f64,
}

impl TimingReport {
    /// Total critical path: the three stages are in series.
    #[must_use]
    pub fn critical_path_ps(&self) -> f64 {
        self.xor_ps + self.adder_tree_ps + self.comparator_ps
    }

    /// Highest clock at which the lookup still completes in one cycle,
    /// capped by what the platform can distribute.
    #[must_use]
    pub fn max_frequency_hz(&self) -> f64 {
        1.0e12 / self.critical_path_ps()
    }
}

/// Gate-count area summary of the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaReport {
    /// Two-input XOR gates in the difference stage (`k · d`).
    pub xor_gates: usize,
    /// Full-adder equivalents across all `k` adder trees.
    pub fa_equivalents: usize,
    /// Compare-and-select nodes in the arg-min tree (`k − 1`).
    pub comparator_nodes: usize,
    /// Bits of stored-vector memory with a plain codebook ROM (`k · d`).
    pub storage_bits: usize,
    /// Bits of stored-vector memory with CA90 rematerialization (one
    /// `d`-bit seed; see [`crate::ca90`]).
    pub rematerialized_storage_bits: usize,
}

/// First-order per-lookup switching activity (`α = 1` for XOR outputs
/// that actually differ, `α = ½` for arithmetic nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyActivity {
    /// XOR outputs that toggled — exactly the sum of all `k` Hamming
    /// distances for this probe.
    pub xor_toggles: u64,
    /// Adder-tree node toggles under the `α = ½` convention.
    pub adder_toggles: u64,
    /// Comparator node toggles (each node re-evaluates once per probe).
    pub comparator_toggles: u64,
}

impl EnergyActivity {
    /// Total toggles.
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.xor_toggles + self.adder_toggles + self.comparator_toggles
    }

    /// Energy of this lookup under a technology corner, in femtojoules.
    #[must_use]
    pub fn energy_fj(&self, tech: &TechnologyParams) -> f64 {
        self.total_toggles() as f64 * tech.switch_energy_fj
    }
}

/// A fully combinational associative memory over `k` stored hypervectors.
///
/// # Examples
///
/// ```
/// use hdhash_accel::datapath::CombinationalAm;
/// use hdhash_hdc::{Hypervector, Rng};
///
/// let mut rng = Rng::new(8);
/// let stored: Vec<Hypervector> =
///     (0..8).map(|_| Hypervector::random(1024, &mut rng)).collect();
/// let am = CombinationalAm::new(1024, stored)?;
/// let probe = Hypervector::random(1024, &mut rng);
/// let hit = am.infer(&probe).expect("non-empty");
/// assert!(hit.index < 8);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CombinationalAm {
    dimension: usize,
    stored: Vec<Hypervector>,
}

impl CombinationalAm {
    /// Builds the datapath around `stored` vectors of dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if any stored vector has the
    /// wrong dimension.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize, stored: Vec<Hypervector>) -> Result<Self, DimensionMismatchError> {
        assert!(d > 0, "dimension must be positive");
        for hv in &stored {
            if hv.dimension() != d {
                return Err(DimensionMismatchError { left: d, right: hv.dimension() });
            }
        }
        Ok(Self { dimension: d, stored })
    }

    /// The hypervector dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The number of stored vectors `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// Whether the memory holds no vectors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// The per-entry popcount tree.
    #[must_use]
    pub fn adder_tree(&self) -> AdderTree {
        AdderTree::new(self.dimension)
    }

    /// The arg-min selection tree (defined for non-empty memories).
    #[must_use]
    pub fn comparator_tree(&self) -> Option<ComparatorTree> {
        if self.stored.is_empty() {
            None
        } else {
            Some(ComparatorTree::new(self.stored.len(), self.adder_tree().output_bits()))
        }
    }

    /// All `k` Hamming distances, computed through the modelled adder
    /// trees (not a software popcount).
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn distances(&self, probe: &Hypervector) -> Vec<u64> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        let tree = self.adder_tree();
        self.stored
            .iter()
            .map(|hv| {
                let diff = probe.xor(hv).expect("dimensions checked at construction");
                tree.popcount(diff.as_words())
            })
            .collect()
    }

    /// One combinational inference: XOR stage, adder trees, comparator
    /// tree. Returns `None` on an empty memory.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn infer(&self, probe: &Hypervector) -> Option<Inference> {
        let comparator = self.comparator_tree()?;
        let distances = self.distances(probe);
        let (index, distance) = comparator.argmin(&distances);
        Some(Inference { index, distance })
    }

    /// Critical-path timing under a technology corner.
    ///
    /// Purely structural — see [`CombinationalAm::timing_for`].
    #[must_use]
    pub fn timing(&self, tech: &TechnologyParams) -> TimingReport {
        Self::timing_for(self.stored.len().max(1), self.dimension, tech)
    }

    /// Timing for a datapath of `k` entries and dimension `d` without
    /// materializing one (all three stage delays are functions of the
    /// shape alone).
    #[must_use]
    pub fn timing_for(k: usize, d: usize, tech: &TechnologyParams) -> TimingReport {
        let adder = AdderTree::new(d);
        let comparator = ComparatorTree::new(k.max(1), adder.output_bits());
        TimingReport {
            xor_ps: tech.xor_delay_ps,
            adder_tree_ps: adder.critical_path_fa() as f64 * tech.fa_delay_ps,
            comparator_ps: comparator.critical_path_stages() as f64
                * tech.compare_delay_per_bit_ps,
        }
    }

    /// Gate-count area of the instantiated datapath.
    #[must_use]
    pub fn area(&self) -> AreaReport {
        Self::area_for(self.stored.len(), self.dimension)
    }

    /// Area for a datapath of `k` entries and dimension `d`.
    #[must_use]
    pub fn area_for(k: usize, d: usize) -> AreaReport {
        let adder = AdderTree::new(d);
        AreaReport {
            xor_gates: k * d,
            fa_equivalents: k * adder.fa_equivalents(),
            comparator_nodes: k.saturating_sub(1),
            storage_bits: k * d,
            rematerialized_storage_bits: d,
        }
    }

    /// Switching activity of one lookup with this probe.
    ///
    /// XOR toggles are exact (outputs that differ from zero are exactly
    /// the difference bits); arithmetic stages use the first-order
    /// `α = ½` activity convention of hand energy estimates.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn activity(&self, probe: &Hypervector) -> EnergyActivity {
        let distances = self.distances(probe);
        let adder = self.adder_tree();
        EnergyActivity {
            xor_toggles: distances.iter().sum(),
            adder_toggles: (self.stored.len() * adder.node_count()) as u64 / 2,
            comparator_toggles: self.stored.len().saturating_sub(1) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_hdc::{AssociativeMemory, Rng};

    fn filled(k: usize, d: usize, seed: u64) -> (CombinationalAm, Vec<Hypervector>) {
        let mut rng = Rng::new(seed);
        let stored: Vec<Hypervector> = (0..k).map(|_| Hypervector::random(d, &mut rng)).collect();
        (CombinationalAm::new(d, stored.clone()).expect("uniform dimensions"), stored)
    }

    #[test]
    fn infer_matches_software_associative_memory() {
        // The central contract: the gate-level dataflow and the software
        // scan return the same winner for the same state.
        let (am, stored) = filled(33, 1024, 60);
        let mut software = AssociativeMemory::new(1024);
        for (i, hv) in stored.iter().enumerate() {
            software.insert(i, hv.clone()).expect("dims");
        }
        let mut rng = Rng::new(61);
        for _ in 0..50 {
            let probe = Hypervector::random(1024, &mut rng);
            let hw = am.infer(&probe).expect("non-empty");
            let sw = software.nearest(&probe).expect("non-empty");
            assert_eq!(hw.index, sw.key);
        }
    }

    #[test]
    fn distances_equal_hamming() {
        let (am, stored) = filled(9, 500, 62);
        let probe = Hypervector::random(500, &mut Rng::new(63));
        let through_trees = am.distances(&probe);
        for (i, hv) in stored.iter().enumerate() {
            assert_eq!(through_trees[i], probe.hamming_distance(hv) as u64);
        }
    }

    #[test]
    fn exact_probe_hits_itself_at_distance_zero() {
        let (am, stored) = filled(16, 2048, 64);
        for (i, hv) in stored.iter().enumerate() {
            let hit = am.infer(hv).expect("non-empty");
            assert_eq!((hit.index, hit.distance), (i, 0));
        }
    }

    #[test]
    fn empty_memory_infers_none() {
        let am = CombinationalAm::new(64, Vec::new()).expect("no vectors to mismatch");
        assert!(am.is_empty());
        assert!(am.infer(&Hypervector::zeros(64)).is_none());
        assert!(am.comparator_tree().is_none());
    }

    #[test]
    fn construction_rejects_mixed_dimensions() {
        let stored = vec![Hypervector::zeros(64), Hypervector::zeros(65)];
        assert!(CombinationalAm::new(64, stored).is_err());
    }

    #[test]
    fn timing_grows_logarithmically_in_k_and_d() {
        let tech = TechnologyParams::asic_22nm();
        let base = CombinationalAm::timing_for(64, 1024, &tech).critical_path_ps();
        let wide = CombinationalAm::timing_for(64, 16_384, &tech).critical_path_ps();
        let tall = CombinationalAm::timing_for(2048, 1024, &tech).critical_path_ps();
        // 16x the dimension and 32x the pool each cost well under 2x delay
        // (log depth) — the hardware version of the paper's O(1) claim.
        assert!(wide < 2.0 * base, "d-scaling not logarithmic: {base} -> {wide}");
        assert!(tall < 2.0 * base, "k-scaling not logarithmic: {base} -> {tall}");
    }

    #[test]
    fn single_cycle_at_plausible_frequency() {
        // The paper's configuration: 512 servers, 10k-bit hypervectors.
        let tech = TechnologyParams::fpga_28nm();
        let timing = CombinationalAm::timing_for(512, 10_000, &tech);
        let mhz = timing.max_frequency_hz() / 1.0e6;
        // A deep combinational path — tens of MHz on FPGA is the expected
        // order; it must be a usable clock, not sub-MHz.
        assert!(mhz > 10.0, "combinational clock too slow: {mhz:.1} MHz");
        assert!(mhz < 1000.0, "model too optimistic: {mhz:.1} MHz");
    }

    #[test]
    fn area_accounts_rematerialization_saving() {
        let area = CombinationalAm::area_for(512, 10_000);
        assert_eq!(area.xor_gates, 512 * 10_000);
        assert_eq!(area.storage_bits, 5_120_000);
        assert_eq!(area.rematerialized_storage_bits, 10_000);
        assert_eq!(area.comparator_nodes, 511);
        assert!(area.fa_equivalents > 512 * 9_999);
    }

    #[test]
    fn activity_scales_with_probe_distance() {
        let (am, stored) = filled(8, 4096, 65);
        // Probing with a stored vector floors the XOR toggles relative to
        // a random probe.
        let near = am.activity(&stored[0]);
        let far = am.activity(&Hypervector::random(4096, &mut Rng::new(66)));
        assert!(near.xor_toggles < far.xor_toggles);
        assert!(near.total_toggles() > 0);
        let tech = TechnologyParams::asic_7nm();
        assert!(far.energy_fj(&tech) > near.energy_fj(&tech));
    }

    #[test]
    fn timing_report_stage_sum() {
        let tech = TechnologyParams::asic_22nm();
        let t = CombinationalAm::timing_for(100, 1000, &tech);
        let sum = t.xor_ps + t.adder_tree_ps + t.comparator_ps;
        assert!((t.critical_path_ps() - sum).abs() < 1e-9);
        assert!(t.max_frequency_hz() > 0.0);
    }
}
