//! Emits `BENCH_chaos.json`: gossip convergence cost under injected
//! network faults, across a drop-rate × partition-duration × replica-count
//! grid.
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_chaos
//! cargo run --release -p hdhash-bench --bin bench_chaos -- quick=1
//! cargo run --release -p hdhash-bench --bin bench_chaos -- out=/tmp/B.json drop=250,500
//! ```
//!
//! Each grid point builds a replica set with divergent membership
//! histories on a [`ChaosNetwork`] whose fault plan drops
//! `drop_per_mille`‰ of traffic (plus bounded delay and duplication) and,
//! when `partition_rounds > 0`, cuts replica 0 → replica 1 one-way for
//! that many rounds. The set gossips under faults for up to
//! `FAULT_ROUNDS` rounds; if still diverged, the network heals and the
//! remaining rounds measure recovery. Reported per point:
//!
//! * `rounds_to_converge` — total chaos rounds until every replica's
//!   per-shard signatures are byte-identical (the paper-level invariant:
//!   convergence is bounded no matter what the fault plan did);
//! * `converged_under_faults` — whether retry plus redundant fanout
//!   converged the set before the heal (common below 50% loss);
//! * `sync_retries` / `retry_bytes` — bounded-retry traffic: timed-out
//!   sync exchanges retransmitted under jittered exponential backoff;
//! * `dropped_total`, `bytes_on_wire`, `wall_ms`.
//!
//! The whole run is deterministic from the printed `chaos seed`; every
//! fault decision, gossip target, and retry jitter derives from it.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use hdhash_bench::{telemetry_embed, Params};
use hdhash_obs::TelemetrySnapshot;
use hdhash_serve::chaos::{ChaosEndpoint, ChaosNetwork, FaultPlan, LinkFaults};
use hdhash_serve::gossip::{converged, GossipConfig, GossipNode};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::telemetry::{export_chaos, export_gossip};
use hdhash_serve::transport::ReplicaId;
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;

/// Seed for every fault plan in the grid; printed so a point replays.
const CHAOS_SEED: u64 = 0xC4A0_5EED;
/// Engine seed shared by all replicas (identical codebook geometry is
/// what makes converged memberships byte-identical).
const ENGINE_SEED: u64 = 0x6055;
/// Members joined identically on every replica before the divergence.
const BASE_MEMBERS: u64 = 12;
/// Hostile rounds driven before the network heals.
const FAULT_ROUNDS: usize = 12;
/// Convergence-after-heal budget; the suite asserts the same bound.
const MAX_HEAL_ROUNDS: usize = 64;
/// Hypervector dimension per shard.
const DIMENSION: usize = 2048;

struct ChaosPoint {
    replicas: usize,
    drop_per_mille: u16,
    partition_rounds: u64,
    rounds_to_converge: usize,
    converged_under_faults: bool,
    sync_retries: u64,
    sync_abandoned: u64,
    retry_bytes: u64,
    bytes_on_wire: u64,
    dropped_total: u64,
    delivered: u64,
    wall_ms: f64,
}

fn serve_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 256,
        dimension: DIMENSION,
        codebook_size: 64,
        seed: ENGINE_SEED,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    }
}

/// One chaos round: advance the virtual clock (releasing held traffic),
/// advert from every node, pump until the mailboxes drain.
fn chaos_round(net: &ChaosNetwork, nodes: &[GossipNode<ChaosEndpoint>]) {
    net.advance_round();
    for node in nodes {
        node.tick();
    }
    loop {
        let moved: usize = nodes.iter().map(GossipNode::pump).sum();
        if moved == 0 {
            break;
        }
    }
}

fn run_point(
    replicas: usize,
    drop_per_mille: u16,
    partition_rounds: u64,
    telemetry: &mut TelemetrySnapshot,
) -> ChaosPoint {
    let mut plan = FaultPlan::new(CHAOS_SEED).with_default_link(LinkFaults {
        drop_per_mille,
        duplicate_per_mille: 50,
        delay_per_mille: 100,
        max_delay_rounds: 2,
        reorder_per_mille: 50,
        ..LinkFaults::RELIABLE
    });
    if partition_rounds > 0 {
        plan = plan.with_partition_one_way(ReplicaId::new(0), ReplicaId::new(1), 0..partition_rounds);
    }
    let net = ChaosNetwork::new(plan);
    let peers: Vec<ReplicaId> = (0..replicas as u64).map(ReplicaId::new).collect();
    let engines: Vec<Arc<ReplicatedEngine>> = (0..replicas as u64)
        .map(|i| {
            Arc::new(
                ReplicatedEngine::new(ReplicaId::new(i), serve_config(2))
                    .expect("valid config"),
            )
        })
        .collect();
    let nodes: Vec<GossipNode<ChaosEndpoint>> = engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let id = ReplicaId::new(i as u64);
            GossipNode::new(
                Arc::clone(engine),
                net.endpoint(id),
                peers.clone(),
                GossipConfig::default(),
            )
        })
        .collect();

    // Shared base membership, then divergent histories: disjoint joins
    // per replica plus one removal, so reconciliation (and the retry
    // machinery under loss) has real work on every link.
    for (i, engine) in engines.iter().enumerate() {
        for id in 0..BASE_MEMBERS {
            engine.join(ServerId::new(id)).expect("fresh");
        }
        for s in 0..4u64 {
            engine.join(ServerId::new(100 + 10 * i as u64 + s)).expect("fresh");
        }
    }
    engines[0].leave(ServerId::new(1)).expect("present");

    let replica_refs: Vec<&ReplicatedEngine> = engines.iter().map(Arc::as_ref).collect();

    // Drive chaos rounds until the signatures agree. The fault plan runs
    // for FAULT_ROUNDS; if the set is still diverged at that point the
    // network heals and the remaining rounds measure recovery. Retry and
    // redundant fanout usually converge the set *through* the faults —
    // `converged_under_faults` records when that happened.
    let started = Instant::now();
    let mut rounds = 0usize;
    let mut healed = false;
    while !converged(&replica_refs) {
        if rounds >= FAULT_ROUNDS && !healed {
            net.heal();
            healed = true;
        }
        rounds += 1;
        assert!(
            rounds <= FAULT_ROUNDS + MAX_HEAL_ROUNDS,
            "replicas={replicas} drop={drop_per_mille} partition={partition_rounds}: \
             no convergence within {MAX_HEAL_ROUNDS} healed rounds"
        );
        chaos_round(&net, &nodes);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let stats = net.stats();
    assert!(stats.reconciles(), "fault counters must reconcile");
    let metrics: Vec<_> = nodes.iter().map(GossipNode::metrics).collect();
    // Fold this point's gossip + chaos counters into the run-wide
    // unified snapshot; the JSON embeds its validated totals.
    let (n, d, p) =
        (replicas.to_string(), drop_per_mille.to_string(), partition_rounds.to_string());
    for (i, m) in metrics.iter().enumerate() {
        let r = i.to_string();
        let labels = [
            ("replicas", n.as_str()),
            ("drop", d.as_str()),
            ("partition", p.as_str()),
            ("replica", r.as_str()),
        ];
        export_gossip(telemetry, &labels, m);
    }
    export_chaos(
        telemetry,
        &[("replicas", n.as_str()), ("drop", d.as_str()), ("partition", p.as_str())],
        &stats,
    );
    ChaosPoint {
        replicas,
        drop_per_mille,
        partition_rounds,
        rounds_to_converge: rounds,
        converged_under_faults: !healed,
        sync_retries: metrics.iter().map(|m| m.sync_retries).sum(),
        sync_abandoned: metrics.iter().map(|m| m.sync_abandoned).sum(),
        retry_bytes: metrics.iter().map(|m| m.retry_bytes).sum(),
        bytes_on_wire: metrics.iter().map(|m| m.bytes_sent).sum(),
        dropped_total: stats.dropped_total(),
        delivered: stats.delivered,
        wall_ms,
    }
}

fn main() {
    let params = Params::from_env();
    let quick =
        params.get_usize("quick", 0) != 0 || std::env::args().any(|a| a == "--quick");
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_chaos.json".to_owned());
    let drop_rates = params
        .get_usize_list("drop", if quick { &[250, 500][..] } else { &[100, 250, 500][..] });
    let partition_durations = params
        .get_usize_list("partition", if quick { &[0, 6][..] } else { &[0, 6, 12][..] });
    let replica_counts =
        params.get_usize_list("replicas", if quick { &[3][..] } else { &[2, 3, 5][..] });

    println!("chaos seed: {CHAOS_SEED:#x}");
    let mut telemetry = TelemetrySnapshot::new();
    let mut grid: Vec<ChaosPoint> = Vec::new();
    for &replicas in &replica_counts {
        for &drop in &drop_rates {
            for &partition in &partition_durations {
                let point = run_point(
                    replicas,
                    u16::try_from(drop).expect("drop rate fits in per-mille"),
                    partition as u64,
                    &mut telemetry,
                );
                println!(
                    "replicas={:<2} drop={:<4}‰ partition={:<3} rounds-to-converge={:<3} \
                     ({}) retries={:<3} retry {:>6} B  dropped {:>5}  wire {:>8} B  {:>7.2} ms",
                    point.replicas,
                    point.drop_per_mille,
                    point.partition_rounds,
                    point.rounds_to_converge,
                    if point.converged_under_faults { "under faults" } else { "after heal" },
                    point.sync_retries,
                    point.retry_bytes,
                    point.dropped_total,
                    point.bytes_on_wire,
                    point.wall_ms,
                );
                grid.push(point);
            }
        }
    }

    let max_rounds = grid.iter().map(|p| p.rounds_to_converge).max().unwrap_or(0);
    println!(
        "convergence after heal is bounded: worst grid point needed {max_rounds} round(s)"
    );

    let mut json = String::from("{\n  \"benchmark\": \"BENCH_chaos\",\n");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", hdhash_simdkernels::kernel_name());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    );
    let _ = writeln!(json, "  \"chaos_seed\": {CHAOS_SEED},");
    let _ = writeln!(json, "  \"dimension\": {DIMENSION},");
    let _ = writeln!(json, "  \"base_members\": {BASE_MEMBERS},");
    let _ = writeln!(json, "  \"fault_rounds\": {FAULT_ROUNDS},");
    let _ = writeln!(
        json,
        "  \"faults\": \"per-link drop + 50‰ duplicate + 100‰ delay (≤2 rounds) + \
         50‰ reorder; optional one-way partition 0→1\","
    );
    let _ = writeln!(json, "  \"max_rounds_to_converge\": {max_rounds},");
    let _ = writeln!(
        json,
        "  \"telemetry\": {},",
        telemetry_embed::embed(
            &telemetry,
            &[
                "hdhash_chaos_offered_total",
                "hdhash_chaos_delivered_total",
                "hdhash_chaos_dropped_random_total",
                "hdhash_chaos_dropped_partition_total",
                "hdhash_gossip_sync_retries_total",
                "hdhash_gossip_sync_abandoned_total",
            ],
        )
    );
    json.push_str("  \"series\": [\n");
    for (i, p) in grid.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"replicas\": {}, \"drop_per_mille\": {}, \"partition_rounds\": {}, \
             \"rounds_to_converge\": {}, \"converged_under_faults\": {}, \
             \"sync_retries\": {}, \"sync_abandoned\": {}, \
             \"retry_bytes\": {}, \"bytes_on_wire\": {}, \"dropped_total\": {}, \
             \"delivered\": {}, \"wall_ms\": {:.2}}}{}",
            p.replicas,
            p.drop_per_mille,
            p.partition_rounds,
            p.rounds_to_converge,
            p.converged_under_faults,
            p.sync_retries,
            p.sync_abandoned,
            p.retry_bytes,
            p.bytes_on_wire,
            p.dropped_total,
            p.delivered,
            p.wall_ms,
            if i + 1 == grid.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
