//! Emits `BENCH_layout.json`: the full matrix-layout × `ROW_BLOCK` ×
//! dimension sweep behind the lookup engine's construction-time autotune
//! table (see `hdhash_hdc::batch`).
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_layout
//! cargo run --release -p hdhash-bench --bin bench_layout -- quick=1
//! cargo run --release -p hdhash-bench --bin bench_layout -- dims=4096,10240 blocks=8,16,32
//! HDHASH_FORCE_SCALAR=1 cargo run --release -p hdhash-bench --bin bench_layout
//! ```
//!
//! Each grid point pins an engine to one layout and block size, then
//! measures the two bracket workloads (single noisy-probe nearest and the
//! multi-probe batch sweep). The kernel tier is a per-process axis — the
//! dispatcher resolves once — so the scalar-tier trajectory comes from a
//! re-run under `HDHASH_FORCE_SCALAR=1`; the JSON's `machine` stamp names
//! the tier that actually ran. The `best_per_dim` block is what the
//! static autotune table in `hdhash_hdc::batch::EngineOptions` pins when
//! the caller leaves layout/block unset.

use std::fmt::Write as _;

use hdhash_bench::layout_sweep::{best_per_dim, machine_stamp, run_sweep, sweep_json};
use hdhash_bench::Params;

fn main() {
    let params = Params::from_env();
    let quick =
        params.get_usize("quick", 0) != 0 || std::env::args().any(|a| a == "--quick");
    let samples = params.get_usize("samples", if quick { 5 } else { 11 });
    let members = params.get_usize("members", if quick { 256 } else { 1024 });
    let batch_probes = params.get_usize("probes", 64);
    let dims = params
        .get_usize_list("dims", if quick { &[10_240][..] } else { &[2_048, 4_096, 10_240][..] });
    let blocks =
        params.get_usize_list("blocks", if quick { &[8, 16][..] } else { &[4, 8, 16, 32][..] });
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_layout.json".to_owned());

    println!(
        "sweeping dims {dims:?} × layouts × blocks {blocks:?} \
         ({members} members, {batch_probes}-probe batches, kernel {})",
        hdhash_simdkernels::kernel_name()
    );
    let points = run_sweep(&dims, &blocks, members, batch_probes, samples);
    for p in &points {
        println!(
            "d={:<6} {:<12} block={:<3} nearest {:>9.0} ns  batch {:>9.0} ns/probe",
            p.dim,
            p.layout.name(),
            p.row_block,
            p.nearest_ns,
            p.batch_ns_per_probe,
        );
    }
    let winners = best_per_dim(&points);
    for w in &winners {
        println!(
            "winner d={:<6} -> {} block={} (score {:.0} ns)",
            w.dim,
            w.layout.name(),
            w.row_block,
            w.score()
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"BENCH_layout\",\n");
    json.push_str(&machine_stamp());
    let _ = writeln!(json, "  \"members\": {members},");
    let _ = writeln!(json, "  \"batch_probes\": {batch_probes},");
    json.push_str("  \"sweep\": [\n");
    json.push_str(&sweep_json(&points, 4));
    json.push_str("  ],\n  \"best_per_dim\": [\n");
    json.push_str(&sweep_json(&winners, 4));
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
