//! Offline validator for the unified telemetry layer's two export
//! formats — CI's observability job runs it against the files the
//! `serving` example emits.
//!
//! ```text
//! check_telemetry <trace.jsonl> <metrics.prom> [required_kind ...]
//! ```
//!
//! * every JSONL line must parse and carry a known [`SpanKind`];
//! * every `required_kind` must appear at least once in the trace;
//! * the Prometheus exposition must survive the strict vendored parser
//!   (`# HELP`/`# TYPE` headers, label syntax, histogram invariants)
//!   and must contain at least one `hdhash_`-prefixed series.
//!
//! Exits non-zero with a one-line diagnosis on the first violation; no
//! network, no external tooling.

use std::collections::BTreeSet;
use std::process::ExitCode;

use hdhash_obs::{jsonlite, promparse, SpanKind};

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path, required @ ..] = args.as_slice() else {
        return Err("usage: check_telemetry <trace.jsonl> <metrics.prom> [kind ...]".into());
    };

    // --- the JSONL trace: every line a well-formed, known span event.
    let trace = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("read {trace_path}: {e}"))?;
    let mut kinds = BTreeSet::new();
    let mut events = 0usize;
    for (i, line) in trace.lines().enumerate() {
        let doc = jsonlite::parse(line)
            .map_err(|e| format!("{trace_path}:{}: bad JSON: {e}", i + 1))?;
        let kind = doc
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or_else(|| format!("{trace_path}:{}: missing `kind` field", i + 1))?;
        let parsed = SpanKind::parse(kind)
            .ok_or_else(|| format!("{trace_path}:{}: unknown span kind `{kind}`", i + 1))?;
        for field in ["ts_us", "trace_id", "lane", "subject", "amount"] {
            doc.get(field)
                .and_then(jsonlite::JsonValue::as_f64)
                .ok_or_else(|| {
                    format!("{trace_path}:{}: missing numeric `{field}`", i + 1)
                })?;
        }
        kinds.insert(parsed.name().to_string());
        events += 1;
    }
    if events == 0 {
        return Err(format!("{trace_path}: empty trace — tracing was not enabled?"));
    }
    for kind in required {
        if SpanKind::parse(kind).is_none() {
            return Err(format!("required kind `{kind}` is not a known span kind"));
        }
        if !kinds.contains(kind.as_str()) {
            return Err(format!(
                "{trace_path}: required span kind `{kind}` absent (saw {kinds:?})"
            ));
        }
    }

    // --- the Prometheus exposition: strict-parse, then validate.
    let text = std::fs::read_to_string(metrics_path)
        .map_err(|e| format!("read {metrics_path}: {e}"))?;
    let parsed =
        promparse::parse(&text).map_err(|e| format!("{metrics_path}: parse: {e}"))?;
    promparse::validate(&parsed).map_err(|e| format!("{metrics_path}: validate: {e}"))?;
    let hd = parsed.series.iter().filter(|s| s.name.starts_with("hdhash_")).count();
    if hd == 0 {
        return Err(format!("{metrics_path}: no hdhash_* series in exposition"));
    }

    println!(
        "check_telemetry ok: {events} trace events across {} kinds ({}); \
         {} series ({hd} hdhash_*) validated",
        kinds.len(),
        kinds.iter().cloned().collect::<Vec<_>>().join(", "),
        parsed.series.len(),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("check_telemetry: {message}");
            ExitCode::FAILURE
        }
    }
}
