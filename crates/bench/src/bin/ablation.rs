//! Quality ablations for the design choices DESIGN.md calls out.
//!
//! Prints four studies:
//!
//! 1. **dimension** — HD robustness margin and mismatch rate vs `d`
//!    (justifies the ≥10k-bit default);
//! 2. **codebook** — HD uniformity (χ²) vs the codebook/server ratio;
//! 3. **metric** — Hamming vs cosine arg-max agreement (they must rank
//!    identically);
//! 4. **vnodes** — consistent hashing χ² vs virtual-node count,
//!    contextualizing Figure 6;
//! 5. **replicas** — the same study for HD hashing via the weighted
//!    table (replicas are HD's virtual nodes);
//! 6. **bounded loads** — max/min load of plain vs bounded-load HD
//!    assignment across ε (paper reference \[13\] transferred to
//!    hyperspace).
//!
//! Usage: `ablation [lookups=20000] [servers=64] [seed=...]`

use hdhash_bench::Params;
use hdhash_core::{BoundedHdTable, HdConfig, HdHashTable, WeightedHdTable};
use hdhash_ring::ConsistentTable;
use hdhash_table::{Assignment, DynamicHashTable, NoisyTable, RequestKey, ServerId};

fn keys(lookups: usize, seed: u64) -> Vec<RequestKey> {
    let mut rng = hdhash_hashfn::SplitMix64::new(seed);
    (0..lookups).map(|_| RequestKey::new(rng.next_u64())).collect()
}

fn join_all<T: DynamicHashTable>(table: &mut T, servers: usize) {
    for i in 0..servers as u64 {
        table.join(ServerId::new(i)).expect("fresh server");
    }
}

fn chi_squared_of_loads(loads: &std::collections::HashMap<ServerId, usize>, servers: usize, lookups: usize) -> f64 {
    let mut counts = vec![0usize; servers];
    for (&s, &c) in loads {
        if (s.get() as usize) < servers {
            counts[s.get() as usize] = c;
        }
    }
    let expected = lookups as f64 / servers as f64;
    counts.iter().map(|&c| { let d = c as f64 - expected; d * d / expected }).sum()
}

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 20_000);
    let servers = params.get_usize("servers", 64);
    let seed = params.get_u64("seed", 0xAB1A);
    let workload = keys(lookups, seed);

    println!("# Ablation 1: dimension vs robustness (servers = {servers}, 10-bit bursts)");
    println!("dimension,quantum,tolerated_flips,mismatch_pct_at_10_flips");
    for d in [1_000usize, 2_000, 4_000, 10_000, 16_000] {
        let mut table = HdHashTable::builder()
            .dimension(d)
            .codebook_size(2 * servers)
            .seed(seed)
            .build()
            .expect("valid config");
        join_all(&mut table, servers);
        let quantum = table.config().quantum();
        let reference =
            Assignment::capture(&table, workload.iter().copied()).expect("non-empty");
        let mut mismatch = 0.0;
        let trials = 10;
        for t in 0..trials {
            table.inject_bit_flips(10, seed ^ t);
            let noisy =
                Assignment::capture(&table, workload.iter().copied()).expect("non-empty");
            mismatch += hdhash_table::remap_fraction(&reference, &noisy);
            table.clear_noise();
        }
        println!(
            "{d},{quantum},{},{:.4}",
            (quantum - 1) / 2,
            100.0 * mismatch / trials as f64
        );
    }

    println!();
    println!("# Ablation 2: codebook/server ratio vs uniformity (chi-squared, lower = flatter)");
    println!("ratio,codebook,chi_squared");
    for ratio in [2usize, 4, 8, 16, 32] {
        let mut table = HdHashTable::builder()
            .dimension(10_000)
            .codebook_size(ratio * servers)
            .seed(seed)
            .build()
            .expect("valid config");
        join_all(&mut table, servers);
        let loads = Assignment::capture(&table, workload.iter().copied())
            .expect("non-empty")
            .load_by_server();
        println!("{ratio},{},{:.2}", ratio * servers, chi_squared_of_loads(&loads, servers, lookups));
    }

    println!();
    println!("# Ablation 3: metric agreement (inverse-hamming vs cosine arg-max)");
    let mut hamming_table = HdHashTable::builder()
        .dimension(10_000)
        .codebook_size(2 * servers)
        .metric(hdhash_hdc::SimilarityMetric::InverseHamming)
        .seed(seed)
        .build()
        .expect("valid config");
    let mut cosine_table = HdHashTable::builder()
        .dimension(10_000)
        .codebook_size(2 * servers)
        .metric(hdhash_hdc::SimilarityMetric::Cosine)
        .seed(seed)
        .build()
        .expect("valid config");
    join_all(&mut hamming_table, servers);
    join_all(&mut cosine_table, servers);
    let agree = workload
        .iter()
        .filter(|&&k| hamming_table.lookup(k).ok() == cosine_table.lookup(k).ok())
        .count();
    println!("agreement: {agree}/{lookups} (expected: identical ranking)");

    println!();
    println!("# Ablation 4: consistent hashing virtual nodes vs uniformity");
    println!("vnodes,chi_squared");
    for vnodes in [1usize, 4, 16, 64, 128] {
        let mut ring = ConsistentTable::with_vnodes(vnodes);
        join_all(&mut ring, servers);
        let loads = Assignment::capture(&ring, workload.iter().copied())
            .expect("non-empty")
            .load_by_server();
        println!("{vnodes},{:.2}", chi_squared_of_loads(&loads, servers, lookups));
    }

    println!();
    println!("# Ablation 5: HD hashing replicas (virtual nodes) vs uniformity");
    println!("replicas,chi_squared");
    for replicas in [1u32, 2, 4, 8, 16] {
        let codebook = (2 * servers * replicas as usize).next_power_of_two();
        let mut table = WeightedHdTable::with_config(
            HdConfig::builder()
                .dimension(10_000)
                .codebook_size(codebook)
                .seed(seed)
                .build_config()
                .expect("valid config"),
        );
        for i in 0..servers as u64 {
            table.join_weighted(ServerId::new(i), replicas).expect("fresh server");
        }
        let loads = Assignment::capture(&table, workload.iter().copied())
            .expect("non-empty")
            .load_by_server();
        println!("{replicas},{:.2}", chi_squared_of_loads(&loads, servers, lookups));
    }

    println!();
    println!("# Ablation 6: bounded-load HD assignment (epsilon vs max/min load)");
    println!("epsilon,max_load,min_load,cap");
    for &epsilon in &[0.05f64, 0.1, 0.25, 0.5, 1.0, 8.0] {
        let mut table = BoundedHdTable::with_config(
            HdConfig::builder()
                .dimension(10_000)
                .codebook_size(2 * servers)
                .seed(seed)
                .build_config()
                .expect("valid config"),
            epsilon,
        );
        for i in 0..servers as u64 {
            table.join(ServerId::new(i)).expect("fresh server");
        }
        for &k in &workload {
            table.assign(k).expect("non-empty pool");
        }
        let max = table.loads().values().copied().max().unwrap_or(0);
        let min = table.loads().values().copied().min().unwrap_or(0);
        println!("{epsilon},{max},{min},{}", table.capacity_per_server());
    }
}
