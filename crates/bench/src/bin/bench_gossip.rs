//! Emits `BENCH_gossip.json`: replica-set convergence cost across a churn
//! volume × shard count grid.
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_gossip
//! cargo run --release -p hdhash-bench --bin bench_gossip -- quick=1
//! cargo run --release -p hdhash-bench --bin bench_gossip -- out=/tmp/B.json churn=8,64
//! ```
//!
//! Each grid point builds two replica engines sharing a base membership,
//! applies `churn_ops` divergent membership operations (split between the
//! replicas: disjoint joins plus conflicting joins/leaves on a contended
//! range), then runs explicit gossip rounds until the per-shard membership
//! signatures are byte-identical. Reported per point:
//!
//! * `rounds_to_converge` — driver rounds (each: both nodes advert, the
//!   network drains); anti-entropy converges in O(1) rounds regardless of
//!   churn volume, which is the headline this series pins;
//! * `trajectory` — total signature Hamming distance (summed over shards)
//!   before each round, ending at 0;
//! * `bytes_on_wire` — protocol bytes under the documented frame
//!   accounting: adverts cost `shards · d` bits (plus the piggybacked
//!   seen-through ack) per adverted peer per round, member records move
//!   **only** for diverged state;
//! * `records_adopted`, `divergence_detections`, `wall_ms`.
//!
//! A second series (`six_replica_series`) runs a 6-replica set with
//! divergent per-replica histories under restricted gossip fanout
//! (`min(fanout, peers)` deterministically-seeded peers per round):
//! convergence stays bounded while per-round advert traffic drops from
//! `peers` to `fanout` messages per node.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use hdhash_bench::{telemetry_embed, Params};
use hdhash_obs::TelemetrySnapshot;
use hdhash_serve::gossip::{converged, run_round, GossipConfig, GossipNode};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::telemetry::export_gossip;
use hdhash_serve::transport::{InProcessNetwork, ReplicaId};
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;

/// Base membership shared by both replicas before the churn.
const BASE_MEMBERS: u64 = 24;
/// Hypervector dimension per shard (advert bytes scale with it).
const DIMENSION: usize = 2048;

struct GridPoint {
    shards: usize,
    churn_ops: usize,
    rounds_to_converge: usize,
    trajectory: Vec<usize>,
    advert_bytes_per_round: u64,
    bytes_on_wire: u64,
    records_adopted: u64,
    divergence_detections: u64,
    wall_ms: f64,
}

fn replica(id: u64, shards: usize) -> (Arc<ReplicatedEngine>, ReplicaId) {
    let replica_id = ReplicaId::new(id);
    let config = ServeConfig {
        shards,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 256,
        dimension: DIMENSION,
        codebook_size: 256,
        seed: 0x6055,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    };
    (
        Arc::new(ReplicatedEngine::new(replica_id, config).expect("valid config")),
        replica_id,
    )
}

/// Total Hamming distance between the replicas' signatures, over shards.
fn signature_distance(a: &ReplicatedEngine, b: &ReplicatedEngine) -> usize {
    a.shard_signatures()
        .iter()
        .zip(b.shard_signatures().iter())
        .map(|(x, y)| x.hamming_distance(y))
        .sum()
}

fn run_point(
    shards: usize,
    churn_ops: usize,
    telemetry: &mut TelemetrySnapshot,
) -> GridPoint {
    let network = InProcessNetwork::new();
    let (a, a_id) = replica(0, shards);
    let (b, b_id) = replica(1, shards);
    let peers = vec![a_id, b_id];
    let node_a = GossipNode::new(
        Arc::clone(&a),
        network.endpoint(a_id),
        peers.clone(),
        GossipConfig::default(),
    );
    let node_b = GossipNode::new(
        Arc::clone(&b),
        network.endpoint(b_id),
        peers,
        GossipConfig::default(),
    );

    // Shared base membership, installed identically on both replicas.
    for id in 0..BASE_MEMBERS {
        a.join(ServerId::new(id)).expect("fresh");
        b.join(ServerId::new(id)).expect("fresh");
    }
    // Divergent churn: disjoint joins plus a contended range where the
    // replicas issue conflicting joins/leaves.
    for op in 0..churn_ops {
        let op64 = op as u64;
        match op % 4 {
            0 => drop(a.join(ServerId::new(1000 + op64))),
            1 => drop(b.join(ServerId::new(2000 + op64))),
            2 => {
                let id = ServerId::new(op64 % BASE_MEMBERS);
                let _ = a.leave(id);
            }
            _ => {
                let id = ServerId::new(3000 + op64 % 8);
                let _ = a.join(id);
                let _ = b.join(id);
                let _ = b.leave(id);
            }
        }
    }

    let nodes = [node_a, node_b];
    let started = Instant::now();
    let mut trajectory = vec![signature_distance(&a, &b)];
    let mut rounds = 0usize;
    while !converged(&[&a, &b]) {
        rounds += 1;
        assert!(rounds <= 64, "gossip failed to converge in 64 rounds");
        run_round(&nodes);
        trajectory.push(signature_distance(&a, &b));
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let metrics = [nodes[0].metrics(), nodes[1].metrics()];
    // Fold this point's gossip counters into the run-wide unified
    // snapshot; the JSON embeds its validated totals.
    for (i, m) in metrics.iter().enumerate() {
        let (s, c, r) = (shards.to_string(), churn_ops.to_string(), i.to_string());
        let labels =
            [("shards", s.as_str()), ("churn", c.as_str()), ("replica", r.as_str())];
        export_gossip(telemetry, &labels, m);
    }
    let advert_bytes_per_round =
        (shards * (4 + DIMENSION / 8) + 13 + 9) as u64 * nodes.len() as u64;
    GridPoint {
        shards,
        churn_ops,
        rounds_to_converge: rounds,
        trajectory,
        advert_bytes_per_round,
        bytes_on_wire: metrics.iter().map(|m| m.bytes_sent).sum(),
        records_adopted: metrics.iter().map(|m| m.records_adopted).sum(),
        divergence_detections: metrics.iter().map(|m| m.divergence_detections).sum(),
        wall_ms,
    }
}

struct FanoutPoint {
    replicas: usize,
    fanout: usize,
    rounds_to_converge: usize,
    adverts_per_node_per_round: u64,
    bytes_on_wire: u64,
    records_adopted: u64,
    wall_ms: f64,
}

/// 6 replicas with disjoint divergent histories, gossiping under a
/// restricted per-round fanout.
fn run_fanout_point(replicas: usize, shards: usize, fanout: usize) -> FanoutPoint {
    let network = InProcessNetwork::new();
    let peers: Vec<ReplicaId> = (0..replicas as u64).map(ReplicaId::new).collect();
    let set: Vec<(Arc<ReplicatedEngine>, _)> = (0..replicas as u64)
        .map(|i| {
            let (replica, id) = replica(i, shards);
            let node = GossipNode::new(
                Arc::clone(&replica),
                network.endpoint(id),
                peers.clone(),
                GossipConfig { fanout, ..GossipConfig::default() },
            );
            (replica, node)
        })
        .collect();
    // Shared base plus disjoint per-replica joins and one removal, so
    // every pair diverges and removal propagation rides the sparse
    // rounds.
    for (i, (replica, _)) in set.iter().enumerate() {
        for id in 0..BASE_MEMBERS {
            replica.join(ServerId::new(id)).expect("fresh");
        }
        for s in 0..4u64 {
            replica.join(ServerId::new(1000 + 10 * i as u64 + s)).expect("fresh");
        }
    }
    set[0].0.leave(ServerId::new(3)).expect("present");

    let replicas_refs: Vec<&ReplicatedEngine> =
        set.iter().map(|(r, _)| r.as_ref()).collect();
    let nodes: Vec<_> = set.iter().map(|(_, n)| n).collect();
    let started = Instant::now();
    let mut rounds = 0usize;
    while !converged(&replicas_refs) {
        rounds += 1;
        assert!(rounds <= 128, "fanout {fanout} failed to converge in 128 rounds");
        for node in &nodes {
            node.tick();
        }
        loop {
            let moved: usize = nodes.iter().map(|n| n.pump()).sum();
            if moved == 0 {
                break;
            }
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let metrics: Vec<_> = nodes.iter().map(|n| n.metrics()).collect();
    let total_rounds: u64 = metrics.iter().map(|m| m.rounds).sum();
    let total_adverts: u64 = metrics.iter().map(|m| m.adverts_sent).sum();
    FanoutPoint {
        replicas,
        fanout,
        rounds_to_converge: rounds,
        adverts_per_node_per_round: total_adverts.checked_div(total_rounds).unwrap_or(0),
        bytes_on_wire: metrics.iter().map(|m| m.bytes_sent).sum(),
        records_adopted: metrics.iter().map(|m| m.records_adopted).sum(),
        wall_ms,
    }
}

fn main() {
    let params = Params::from_env();
    let quick =
        params.get_usize("quick", 0) != 0 || std::env::args().any(|a| a == "--quick");
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_gossip.json".to_owned());
    let shard_counts =
        params.get_usize_list("shards", if quick { &[1, 2][..] } else { &[1, 2, 4][..] });
    let churn_rates =
        params.get_usize_list("churn", if quick { &[8, 32][..] } else { &[0, 8, 32, 128][..] });

    let mut telemetry = TelemetrySnapshot::new();
    let mut grid: Vec<GridPoint> = Vec::new();
    for &shards in &shard_counts {
        for &churn_ops in &churn_rates {
            let point = run_point(shards, churn_ops, &mut telemetry);
            println!(
                "shards={:<2} churn={:<4} rounds={:<2} start-distance={:<6} \
                 wire {:>7} B  records {:>4}  {:>7.2} ms",
                point.shards,
                point.churn_ops,
                point.rounds_to_converge,
                point.trajectory.first().copied().unwrap_or(0),
                point.bytes_on_wire,
                point.records_adopted,
                point.wall_ms,
            );
            grid.push(point);
        }
    }

    let max_rounds = grid.iter().map(|p| p.rounds_to_converge).max().unwrap_or(0);
    println!(
        "convergence is bounded: every grid point converged within {max_rounds} round(s); \
         quiescent pairs pay only the {}-byte advert",
        grid.first().map_or(0, |p| p.advert_bytes_per_round),
    );

    // The 6-replica fanout series: full mesh (fanout ≥ peers) vs
    // restricted epidemic fan-out.
    let fanouts: &[usize] = if quick { &[2, 5] } else { &[2, 3, 5] };
    let mut fanout_grid: Vec<FanoutPoint> = Vec::new();
    for &fanout in fanouts {
        let point = run_fanout_point(6, 2, fanout);
        println!(
            "replicas=6 fanout={:<2} rounds={:<3} adverts/node/round={:<2} wire {:>8} B  \
             records {:>4}  {:>7.2} ms",
            point.fanout,
            point.rounds_to_converge,
            point.adverts_per_node_per_round,
            point.bytes_on_wire,
            point.records_adopted,
            point.wall_ms,
        );
        fanout_grid.push(point);
    }

    let mut json = String::from("{\n  \"benchmark\": \"BENCH_gossip\",\n");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", hdhash_simdkernels::kernel_name());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    );
    let _ = writeln!(json, "  \"dimension\": {DIMENSION},");
    let _ = writeln!(json, "  \"base_members\": {BASE_MEMBERS},");
    let _ = writeln!(
        json,
        "  \"protocol\": \"advert per-shard signatures; push-pull LWW member records on divergence\","
    );
    let _ = writeln!(json, "  \"max_rounds_to_converge\": {max_rounds},");
    let _ = writeln!(
        json,
        "  \"telemetry\": {},",
        telemetry_embed::embed(
            &telemetry,
            &[
                "hdhash_gossip_rounds_total",
                "hdhash_gossip_syncs_sent_total",
                "hdhash_gossip_sync_retries_total",
                "hdhash_gossip_sync_abandoned_total",
                "hdhash_gossip_records_adopted_total",
                "hdhash_gossip_bytes_sent_total",
            ],
        )
    );
    json.push_str("  \"series\": [\n");
    for (i, p) in grid.iter().enumerate() {
        let trajectory = p
            .trajectory
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"churn_ops\": {}, \"rounds_to_converge\": {}, \
             \"advert_bytes_per_round\": {}, \"bytes_on_wire\": {}, \
             \"records_adopted\": {}, \"divergence_detections\": {}, \
             \"wall_ms\": {:.2}, \"trajectory\": [{}]}}{}",
            p.shards,
            p.churn_ops,
            p.rounds_to_converge,
            p.advert_bytes_per_round,
            p.bytes_on_wire,
            p.records_adopted,
            p.divergence_detections,
            p.wall_ms,
            trajectory,
            if i + 1 == grid.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"six_replica_series\": [\n");
    for (i, p) in fanout_grid.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"replicas\": {}, \"fanout\": {}, \"rounds_to_converge\": {}, \
             \"adverts_per_node_per_round\": {}, \"bytes_on_wire\": {}, \
             \"records_adopted\": {}, \"wall_ms\": {:.2}}}{}",
            p.replicas,
            p.fanout,
            p.rounds_to_converge,
            p.adverts_per_node_per_round,
            p.bytes_on_wire,
            p.records_adopted,
            p.wall_ms,
            if i + 1 == fanout_grid.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
