//! Emits `BENCH_lookup.json`: wall-clock comparisons of the word-parallel
//! HDC kernels and the batched lookup engine against the seed's
//! bit-at-a-time / pointer-chasing formulations.
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_lookup
//! cargo run --release -p hdhash-bench --bin bench_lookup -- out=/tmp/B.json samples=30
//! ```
//!
//! The JSON's `comparisons` list is flat — each entry has the baseline
//! and optimized median ns/op and the speedup factor — so successive PRs
//! can track the perf trajectory with a stable schema. On top of that the
//! report carries a `machine` stamp (dispatched kernel tier, host ISA,
//! cores), a `layout_sweep` block (the layout × `ROW_BLOCK` grid behind
//! the engine's construction-time autotune; full grid via the
//! `bench_layout` bin) and the `autotune_defaults` the sweep elected.
//! Re-run under `HDHASH_FORCE_SCALAR=1` for the scalar-tier trajectory —
//! the stamp names the tier that ran.

use std::fmt::Write as _;
use std::time::Instant;

use hdhash_bench::layout_sweep;
use hdhash_bench::Params;
use hdhash_core::HdHashTable;
use hdhash_hdc::maintenance::MembershipCentroid;
use hdhash_hdc::ops::{bundle, permute, reference, MajorityBundler};
use hdhash_hdc::{AssociativeMemory, BatchLookup, Hypervector, Rng};
use hdhash_table::{DynamicHashTable, RequestKey, ServerId};

/// Median ns/op over `samples` timed runs of `op` (each run amortized over
/// `iters` calls).
fn median_ns<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> f64 {
    // One untimed warm-up run.
    op();
    let mut times: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

struct Comparison {
    name: &'static str,
    baseline: &'static str,
    optimized: &'static str,
    baseline_ns: f64,
    optimized_ns: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

fn main() {
    let params = Params::from_env();
    let samples = params.get_usize("samples", 15);
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_lookup.json".to_owned());

    let mut comparisons: Vec<Comparison> = Vec::new();

    // --- bundle: n = 16, d = 10_000 (the acceptance-criteria case) ------
    let mut rng = Rng::new(1);
    let inputs: Vec<Hypervector> =
        (0..16).map(|_| Hypervector::random(10_000, &mut rng)).collect();
    let refs: Vec<&Hypervector> = inputs.iter().collect();
    let naive = median_ns(samples, 2, || {
        let mut r = Rng::new(2);
        std::hint::black_box(reference::bundle(&refs, &mut r).expect("dims"));
    });
    let fast = median_ns(samples, 50, || {
        let mut r = Rng::new(2);
        std::hint::black_box(bundle(&refs, &mut r).expect("dims"));
    });
    comparisons.push(Comparison {
        name: "bundle_n16_d10000",
        baseline: "per-bit majority count",
        optimized: "bit-sliced carry-save counter network",
        baseline_ns: naive,
        optimized_ns: fast,
    });

    // --- permute: d = 10_000, odd shift ---------------------------------
    let hv = Hypervector::random(10_000, &mut rng);
    let naive = median_ns(samples, 10, || {
        std::hint::black_box(reference::permute(&hv, 4097));
    });
    let fast = median_ns(samples, 200, || {
        std::hint::black_box(permute(&hv, 4097));
    });
    comparisons.push(Comparison {
        name: "permute_d10000",
        baseline: "per-bit rotation",
        optimized: "word-level rotation with carry",
        baseline_ns: naive,
        optimized_ns: fast,
    });

    // --- single-probe nearest: 1_000 members, d = 10_240 ----------------
    let d = 10_240;
    let members: Vec<Hypervector> =
        (0..1_000).map(|_| Hypervector::random(d, &mut rng)).collect();
    let mut memory = AssociativeMemory::new(d);
    let mut engine = BatchLookup::new(d);
    for (i, hv) in members.iter().enumerate() {
        engine.push(hv).expect("dims");
        memory.insert(i, hv.clone()).expect("dims");
    }
    let seed_scan = |probe: &Hypervector| {
        // The seed path: pointer-chase entries, full float metric each.
        members
            .iter()
            .enumerate()
            .map(|(i, hv)| (i, 1.0 - probe.hamming_distance(hv) as f64 / d as f64))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
    };

    // The representative inference probe: a corrupted copy of a member
    // (every HDC lookup has a near match — that is the memory's contract).
    let mut noisy_probe = members[500].clone();
    noisy_probe.flip_bits(rng.distinct_indices(500, d));
    let naive = median_ns(samples, 20, || {
        std::hint::black_box(seed_scan(&noisy_probe));
    });
    let fast = median_ns(samples, 20, || {
        std::hint::black_box(engine.nearest_one(&noisy_probe));
    });
    comparisons.push(Comparison {
        name: "nearest_1000_members_d10240_noisy_probe",
        baseline: "entry-chasing full-metric scan",
        optimized: "prefix-filter + early-exit matrix scan",
        baseline_ns: naive,
        optimized_ns: fast,
    });

    // Adversarial case: a uniformly random probe (no near match), where
    // abandonment has the least to work with. The calibrator collapses
    // the engine to the straight blocked scan after a couple of these —
    // warm it up past the adaptation window so the steady state is what
    // gets measured (PR 1's fixed prefix filter was 0.81x here).
    let random_probe = Hypervector::random(d, &mut rng);
    for _ in 0..8 {
        std::hint::black_box(engine.nearest_one(&random_probe));
    }
    let naive = median_ns(samples, 20, || {
        std::hint::black_box(seed_scan(&random_probe));
    });
    let fast = median_ns(samples, 20, || {
        std::hint::black_box(engine.nearest_one(&random_probe));
    });
    comparisons.push(Comparison {
        name: "nearest_1000_members_d10240_random_probe",
        baseline: "entry-chasing full-metric scan",
        optimized: "calibrated adaptive scan (collapsed to blocked sweep)",
        baseline_ns: naive,
        optimized_ns: fast,
    });

    // --- SIMD vs scalar distance kernel: one d = 10_240 row pair --------
    let ka = Hypervector::random(d, &mut rng);
    let kb = Hypervector::random(d, &mut rng);
    let scalar_ns = median_ns(samples, 2000, || {
        std::hint::black_box(hdhash_simdkernels::scalar::hamming_distance_words(
            ka.as_words(),
            kb.as_words(),
        ));
    });
    let dispatched_ns = median_ns(samples, 2000, || {
        std::hint::black_box(hdhash_simdkernels::hamming_distance_words(
            ka.as_words(),
            kb.as_words(),
        ));
    });
    comparisons.push(Comparison {
        name: "hamming_kernel_d10240_simd_vs_scalar",
        baseline: "portable scalar popcount",
        optimized: "runtime-dispatched kernel (this host)",
        baseline_ns: scalar_ns,
        optimized_ns: dispatched_ns,
    });
    println!("dispatched distance kernel: {}", hdhash_simdkernels::kernel_name());

    // --- membership churn: replace 1 of 1024 members, d = 10_240 --------
    // Baseline: the old discipline — re-bundle the entire surviving
    // membership from scratch (using the word-parallel carry-save
    // bundler, i.e. the *strongest* from-scratch formulation) and read
    // the centroid out. Optimized: the incremental counter-plane update —
    // retract the leaver, add the joiner, read out.
    let churn_members: Vec<Hypervector> =
        (0..1024).map(|_| Hypervector::random(d, &mut rng)).collect();
    let joiner = Hypervector::random(d, &mut rng);
    let mut scratch_bundler = MajorityBundler::new(d);
    let naive = median_ns(samples, 2, || {
        scratch_bundler.reset();
        for hv in churn_members.iter().skip(1) {
            scratch_bundler.add(hv).expect("dims");
        }
        scratch_bundler.add(&joiner).expect("dims");
        std::hint::black_box(scratch_bundler.majority(None));
    });
    let mut centroid = MembershipCentroid::new(d);
    for hv in &churn_members {
        centroid.add(hv).expect("dims");
    }
    let fast = median_ns(samples, 50, || {
        // Two symmetric membership changes (swap out, swap back), each
        // with its readout, so the state is restored every iteration.
        centroid.remove(&churn_members[0]).expect("present");
        centroid.add(&joiner).expect("dims");
        std::hint::black_box(centroid.read());
        centroid.remove(&joiner).expect("present");
        centroid.add(&churn_members[0]).expect("dims");
        std::hint::black_box(centroid.read());
    });
    comparisons.push(Comparison {
        name: "churn_swap_1_of_1024_members_d10240",
        baseline: "from-scratch re-bundle of the membership",
        optimized: "incremental counter-plane update + readout",
        baseline_ns: naive,
        // Two swaps per iteration: halve to report one membership change.
        optimized_ns: fast / 2.0,
    });

    // --- batched probes: 256 probes, 512 members ------------------------
    let members_512: Vec<Hypervector> =
        (0..512).map(|_| Hypervector::random(d, &mut rng)).collect();
    let probes: Vec<Hypervector> =
        (0..256).map(|_| Hypervector::random(d, &mut rng)).collect();
    let probe_refs: Vec<&Hypervector> = probes.iter().collect();
    let mut engine_512 = BatchLookup::new(d);
    for hv in &members_512 {
        engine_512.push(hv).expect("dims");
    }
    let naive = median_ns(samples, 3, || {
        let n = probe_refs.iter().filter_map(|p| engine_512.nearest_one(p)).count();
        std::hint::black_box(n);
    });
    let mut out_buf = Vec::new();
    let fast = median_ns(samples, 3, || {
        engine_512.nearest_batch_into(&probe_refs, &mut out_buf);
        std::hint::black_box(out_buf.len());
    });
    comparisons.push(Comparison {
        name: "batch_256_probes_512_members",
        baseline: "independent per-probe scans",
        optimized: "cache-blocked multi-probe sweep",
        baseline_ns: naive,
        optimized_ns: fast,
    });

    // --- end-to-end table batch: HD lookup of 10_000 keys, 512 servers --
    let mut table = HdHashTable::builder()
        .dimension(10_240)
        .codebook_size(1024)
        .seed(7)
        .build()
        .expect("valid config");
    for i in 0..512 {
        table.join(ServerId::new(i)).expect("fresh server");
    }
    let keys: Vec<RequestKey> = (0..10_000).map(RequestKey::new).collect();
    let naive = median_ns(samples.min(7), 1, || {
        let hits = keys.iter().filter(|&&k| table.lookup(k).is_ok()).count();
        std::hint::black_box(hits);
    });
    let fast = median_ns(samples.min(7), 1, || {
        let hits = table.lookup_batch(&keys).iter().filter(|r| r.is_ok()).count();
        std::hint::black_box(hits);
    });
    comparisons.push(Comparison {
        name: "hd_table_10000_lookups_512_servers",
        baseline: "one-by-one lookups",
        optimized: "slot-deduplicated batched lookups",
        baseline_ns: naive,
        optimized_ns: fast,
    });

    // --- layout × ROW_BLOCK sweep ---------------------------------------
    // The compact grid feeding the engine's construction-time autotune
    // table (hdhash_hdc::batch): both layouts at the block sizes that
    // bracket the default, on the dimensions the repo actually serves.
    // The finer exploration grid lives in the bench_layout bin.
    let sweep_dims = params.get_usize_list("sweep_dims", &[2_048, 4_096, 10_240][..]);
    let sweep_blocks = params.get_usize_list("sweep_blocks", &[8, 16, 32][..]);
    let sweep_members = params.get_usize("sweep_members", 1024);
    let sweep =
        layout_sweep::run_sweep(&sweep_dims, &sweep_blocks, sweep_members, 64, samples.min(9));
    let winners = layout_sweep::best_per_dim(&sweep);
    for w in &winners {
        println!(
            "layout autotune d={:<6} -> {} block={} (nearest {:.0} ns, batch {:.0} ns/probe)",
            w.dim,
            w.layout.name(),
            w.row_block,
            w.nearest_ns,
            w.batch_ns_per_probe,
        );
    }

    // --- report ----------------------------------------------------------
    let mut json = String::from("{\n  \"benchmark\": \"BENCH_lookup\",\n");
    json.push_str(&layout_sweep::machine_stamp());
    json.push_str("  \"comparisons\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        json.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"baseline\": \"{}\",\n      \
             \"optimized\": \"{}\",\n      \"baseline_ns_per_op\": {:.1},\n      \
             \"optimized_ns_per_op\": {:.1},\n      \"speedup\": {:.2}\n    }}{}\n",
            c.name,
            c.baseline,
            c.optimized,
            c.baseline_ns,
            c.optimized_ns,
            c.speedup(),
            if i + 1 == comparisons.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"layout_sweep_members\": {sweep_members},");
    json.push_str("  \"layout_sweep\": [\n");
    json.push_str(&layout_sweep::sweep_json(&sweep, 4));
    json.push_str("  ],\n  \"autotune_defaults\": [\n");
    json.push_str(&layout_sweep::sweep_json(&winners, 4));
    json.push_str("  ]\n}\n");

    for c in &comparisons {
        println!(
            "{:<42} {:>12.0} ns -> {:>12.0} ns   ({:.2}x)",
            c.name,
            c.baseline_ns,
            c.optimized_ns,
            c.speedup()
        );
    }
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
