//! Figure 4: average request handling duration as the pool grows.
//!
//! Reproduces the efficiency sweep: for each algorithm and pool size
//! (powers of two up to `max_servers`), joins the servers and measures the
//! mean lookup latency over `lookups` requests drained in batches of
//! `batch` (the paper batches 256 requests per GPU dispatch).
//!
//! Usage: `fig4 [lookups=10000] [batch=256] [max_servers=2048] [seed=...]`
//!
//! Expected shape (paper §5.2): rendezvous is clearly O(n); consistent
//! hashing stays nearly flat; HD hashing on *commodity* hardware pays an
//! O(n) associative-memory scan — the multi-threaded `hd-parallel` column
//! is this repo's stand-in for the paper's GPU, and HDC accelerators would
//! bring it to O(1) (single clock cycle, Schmuck et al.).

use hdhash_bench::Params;
use hdhash_emulator::report::format_efficiency;
use hdhash_emulator::runner::{run_efficiency, EfficiencyConfig};
use hdhash_emulator::AlgorithmKind;

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 10_000);
    let batch = params.get_usize("batch", 256);
    let max_servers = params.get_usize("max_servers", 2048);
    let seed = params.get_u64("seed", 0xF16_4);

    let mut server_counts = Vec::new();
    let mut n = 2;
    while n <= max_servers {
        server_counts.push(n);
        n *= 2;
    }

    let config = EfficiencyConfig {
        algorithms: vec![
            AlgorithmKind::Modular,
            AlgorithmKind::Consistent,
            AlgorithmKind::Rendezvous,
            AlgorithmKind::Hd,
            AlgorithmKind::HdParallel,
        ],
        server_counts,
        lookups,
        batch,
        seed,
    };

    eprintln!(
        "# Figure 4 reproduction: {} lookups per point, batch {}, servers up to {}",
        lookups, batch, max_servers
    );
    let samples = run_efficiency(&config);
    println!("# Figure 4: average request handling duration (microseconds)");
    print!("{}", format_efficiency(&samples));
}
