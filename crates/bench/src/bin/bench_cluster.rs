//! Emits `BENCH_cluster.json`: gossip convergence over **real loopback
//! TCP sockets** versus the in-process computed trajectory, per
//! replica-count × churn grid point.
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_cluster
//! cargo run --release -p hdhash-bench --bin bench_cluster -- quick=1
//! cargo run --release -p hdhash-bench --bin bench_cluster -- out=/tmp/B.json churn=16,64
//! ```
//!
//! Each point runs the **same deterministic churn script twice**:
//!
//! 1. *in-process* — `InProcessNetwork` driven by explicit lockstep
//!    rounds ([`run_round`]); its `bytes_sent` is the computed
//!    `wire_size` accounting the repo has reported since PR 4;
//! 2. *tcp* — one `TcpNetwork` per replica bound to an OS-assigned
//!    loopback port, full-mesh, the same gossip nodes driven
//!    tick/pump with real kernel delivery in between.
//!
//! After the TCP run quiesces, the bench **asserts** (not just reports)
//! the measured-bytes contract: kernel bytes written equal the gossip
//! layer's computed `wire_size` total plus exactly
//! [`FRAME_OVERHEAD`] bytes per
//! frame — the accounting and the wire agree to the byte, with the
//! division reported per point (`payload_bytes` + `frame_overhead_bytes`
//! = `measured_bytes`). Convergence rounds are reported for both
//! transports; TCP rounds may exceed the lockstep count by the rounds
//! that elapse while frames are in flight, which is itself the measured
//! cost of leaving the synchronous harness.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash_bench::Params;
use hdhash_serve::gossip::{converged, run_round, GossipConfig, GossipNode};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::tcp::{TcpConfig, TcpEndpoint, TcpNetwork};
use hdhash_serve::transport::{InProcessEndpoint, InProcessNetwork, ReplicaId};
use hdhash_serve::wire::FRAME_OVERHEAD;
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;

/// Base membership shared by every replica before the churn.
const BASE_MEMBERS: u64 = 24;
/// Hypervector dimension per shard.
const DIMENSION: usize = 2048;
/// Shards per engine.
const SHARDS: usize = 2;

fn replica(id: u64) -> Arc<ReplicatedEngine> {
    let config = ServeConfig {
        shards: SHARDS,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 256,
        dimension: DIMENSION,
        codebook_size: 256,
        seed: 0x6055,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    };
    Arc::new(ReplicatedEngine::new(ReplicaId::new(id), config).expect("valid config"))
}

/// The deterministic divergence script, identical for both transports:
/// shared base, then disjoint joins, contended-range conflicts and a few
/// leaves, spread across the replica set.
fn apply_churn(replicas: &[Arc<ReplicatedEngine>], churn_ops: usize) {
    for replica in replicas {
        for id in 0..BASE_MEMBERS {
            replica.join(ServerId::new(id)).expect("fresh");
        }
    }
    for op in 0..churn_ops {
        let op64 = op as u64;
        let owner = &replicas[op % replicas.len()];
        match op % 4 {
            0 | 1 => drop(owner.join(ServerId::new(1000 + op64))),
            2 => drop(owner.leave(ServerId::new(op64 % BASE_MEMBERS))),
            _ => {
                let contended = ServerId::new(3000 + op64 % 8);
                let other = &replicas[(op + 1) % replicas.len()];
                let _ = owner.join(contended);
                let _ = other.join(contended);
                let _ = other.leave(contended);
            }
        }
    }
}

struct TransportRun {
    rounds: usize,
    payload_bytes: u64,
    wall_ms: f64,
}

struct TcpRun {
    base: TransportRun,
    frames: u64,
    measured_bytes: u64,
    frame_overhead_bytes: u64,
}

struct Point {
    replicas: usize,
    churn_ops: usize,
    inprocess: TransportRun,
    tcp: TcpRun,
}

/// Lockstep in-process reference: the computed byte trajectory.
fn run_inprocess(n: usize, churn_ops: usize) -> TransportRun {
    let network = InProcessNetwork::new();
    let peers: Vec<ReplicaId> = (0..n as u64).map(ReplicaId::new).collect();
    let replicas: Vec<Arc<ReplicatedEngine>> = (0..n as u64).map(replica).collect();
    let nodes: Vec<GossipNode<InProcessEndpoint>> = replicas
        .iter()
        .enumerate()
        .map(|(i, r)| {
            GossipNode::new(
                Arc::clone(r),
                network.endpoint(ReplicaId::new(i as u64)),
                peers.clone(),
                GossipConfig::default(),
            )
        })
        .collect();
    apply_churn(&replicas, churn_ops);
    let views: Vec<&ReplicatedEngine> = replicas.iter().map(Arc::as_ref).collect();
    let started = Instant::now();
    let mut rounds = 0usize;
    while !converged(&views) {
        rounds += 1;
        assert!(rounds <= 128, "in-process run failed to converge");
        run_round(&nodes);
    }
    TransportRun {
        rounds,
        payload_bytes: nodes.iter().map(|n| n.metrics().bytes_sent).sum(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The same script over real loopback sockets, with the measured-bytes
/// assertion after the wire quiesces.
fn run_tcp(n: usize, churn_ops: usize) -> TcpRun {
    let tcp_config = TcpConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(1),
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        outbox_capacity: 4096,
    };
    let networks: Vec<TcpNetwork> = (0..n as u64)
        .map(|i| {
            TcpNetwork::bind(ReplicaId::new(i), "127.0.0.1:0", tcp_config).expect("bind loopback")
        })
        .collect();
    let addrs: Vec<_> = networks.iter().map(TcpNetwork::local_addr).collect();
    for (i, network) in networks.iter().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                network.add_peer(ReplicaId::new(j as u64), addr);
            }
        }
    }
    let peers: Vec<ReplicaId> = (0..n as u64).map(ReplicaId::new).collect();
    let replicas: Vec<Arc<ReplicatedEngine>> = (0..n as u64).map(replica).collect();
    let nodes: Vec<GossipNode<TcpEndpoint>> = replicas
        .iter()
        .zip(&networks)
        .map(|(r, network)| {
            GossipNode::new(Arc::clone(r), network.endpoint(), peers.clone(), GossipConfig::default())
        })
        .collect();
    apply_churn(&replicas, churn_ops);
    let views: Vec<&ReplicatedEngine> = replicas.iter().map(Arc::as_ref).collect();
    let started = Instant::now();
    let deadline = started + Duration::from_secs(120);
    let mut rounds = 0usize;
    while !converged(&views) {
        rounds += 1;
        assert!(Instant::now() < deadline, "tcp run failed to converge");
        for node in &nodes {
            node.tick();
        }
        // Give the kernel a delivery window, then drain what arrived.
        std::thread::sleep(Duration::from_millis(5));
        for node in &nodes {
            node.pump();
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    // Quiesce: every queued frame must reach a socket before the ledger
    // is compared.
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    while networks.iter().any(|nw| nw.pending_frames() > 0) {
        assert!(Instant::now() < drain_deadline, "outboxes never drained");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut payload_bytes = 0u64;
    let mut measured_bytes = 0u64;
    let mut frames = 0u64;
    for (network, node) in networks.iter().zip(&nodes) {
        let tcp = network.stats();
        let gossip = node.metrics();
        assert_eq!(tcp.peer_backpressure_drops, 0, "bench must not run into backpressure");
        assert_eq!(
            tcp.bytes_sent,
            gossip.bytes_sent + FRAME_OVERHEAD as u64 * tcp.frames_sent,
            "measured socket bytes must equal the wire_size accounting \
             plus exactly one frame header per frame"
        );
        payload_bytes += gossip.bytes_sent;
        measured_bytes += tcp.bytes_sent;
        frames += tcp.frames_sent;
    }
    TcpRun {
        base: TransportRun { rounds, payload_bytes, wall_ms },
        frames,
        measured_bytes,
        frame_overhead_bytes: FRAME_OVERHEAD as u64 * frames,
    }
}

fn main() {
    let params = Params::from_env();
    let quick = params.get_usize("quick", 0) != 0 || std::env::args().any(|a| a == "--quick");
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_cluster.json".to_owned());
    let replica_counts =
        params.get_usize_list("replicas", if quick { &[3][..] } else { &[3, 5][..] });
    let churn_rates =
        params.get_usize_list("churn", if quick { &[16][..] } else { &[16, 64, 128][..] });

    let mut grid: Vec<Point> = Vec::new();
    for &n in &replica_counts {
        for &churn_ops in &churn_rates {
            let inprocess = run_inprocess(n, churn_ops);
            let tcp = run_tcp(n, churn_ops);
            println!(
                "replicas={n} churn={churn_ops:<4} rounds in-process={:<2} tcp={:<3} \
                 payload {:>7} B  measured {:>7} B (= payload + {} B × {} frames)  \
                 tcp wall {:>8.2} ms",
                inprocess.rounds,
                tcp.base.rounds,
                tcp.base.payload_bytes,
                tcp.measured_bytes,
                FRAME_OVERHEAD,
                tcp.frames,
                tcp.base.wall_ms,
            );
            grid.push(Point { replicas: n, churn_ops, inprocess, tcp });
        }
    }

    println!(
        "accounting holds on every point: measured bytes == computed wire_size total \
         + {FRAME_OVERHEAD}-byte frame header × frames (asserted, not rounded)"
    );

    let mut json = String::from("{\n  \"benchmark\": \"BENCH_cluster\",\n");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", hdhash_simdkernels::kernel_name());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    );
    let _ = writeln!(json, "  \"dimension\": {DIMENSION},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"base_members\": {BASE_MEMBERS},");
    let _ = writeln!(json, "  \"frame_overhead_bytes\": {FRAME_OVERHEAD},");
    let _ = writeln!(
        json,
        "  \"transport\": \"framed loopback TCP (magic/version/sender/len/crc32) vs in-process lockstep\","
    );
    let _ = writeln!(json, "  \"accounting_exact\": true,");
    json.push_str("  \"series\": [\n");
    for (i, p) in grid.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"replicas\": {}, \"churn_ops\": {}, \
             \"inprocess\": {{\"rounds_to_converge\": {}, \"bytes_on_wire\": {}, \"wall_ms\": {:.2}}}, \
             \"tcp\": {{\"rounds_to_converge\": {}, \"payload_bytes\": {}, \"frames\": {}, \
             \"frame_overhead_bytes\": {}, \"measured_bytes\": {}, \"wall_ms\": {:.2}}}}}{}",
            p.replicas,
            p.churn_ops,
            p.inprocess.rounds,
            p.inprocess.payload_bytes,
            p.inprocess.wall_ms,
            p.tcp.base.rounds,
            p.tcp.base.payload_bytes,
            p.tcp.frames,
            p.tcp.frame_overhead_bytes,
            p.tcp.measured_bytes,
            p.tcp.base.wall_ms,
            if i + 1 == grid.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
