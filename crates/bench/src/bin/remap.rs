//! Remap-on-resize measurement: the paper's "minimal rehashing" claim.
//!
//! The introduction motivates consistent/rendezvous/HD hashing with the
//! failure of modular hashing: "a change in table size requires virtually
//! all requests to be redistributed". This harness quantifies that for
//! every algorithm — the fraction of requests that move when one server
//! joins or leaves, across pool sizes (ideal: `1/(n+1)` on join, `1/n` on
//! leave).
//!
//! Usage: `remap [lookups=20000] [max_servers=512]`

use hdhash_bench::Params;
use hdhash_emulator::AlgorithmKind;
use hdhash_table::{remap_fraction, Assignment, RequestKey, ServerId};

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 20_000);
    let max_servers = params.get_usize("max_servers", 512);
    let algorithms = [
        AlgorithmKind::Modular,
        AlgorithmKind::Consistent,
        AlgorithmKind::Rendezvous,
        AlgorithmKind::Maglev,
        AlgorithmKind::Jump,
        AlgorithmKind::Hd,
    ];

    let keys: Vec<RequestKey> =
        (0..lookups as u64).map(|k| RequestKey::new(hdhash_hashfn::mix64(k))).collect();

    let mut server_counts = Vec::new();
    let mut n = 8;
    while n <= max_servers {
        server_counts.push(n);
        n *= 4;
    }

    println!("# Remapped fraction when one server joins (ideal = 1/(n+1))");
    print!("servers,ideal");
    for kind in algorithms {
        print!(",{kind}");
    }
    println!();
    for &servers in &server_counts {
        print!("{servers},{:.4}", 1.0 / (servers + 1) as f64);
        for kind in algorithms {
            let mut table = kind.build(servers + 2);
            for i in 0..servers as u64 {
                table.join(ServerId::new(i)).expect("fresh server");
            }
            let before =
                Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            table.join(ServerId::new(1_000_000)).expect("fresh");
            let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            print!(",{:.4}", remap_fraction(&before, &after));
        }
        println!();
    }

    println!();
    println!("# Remapped fraction when one server leaves (ideal = 1/n)");
    print!("servers,ideal");
    for kind in algorithms {
        print!(",{kind}");
    }
    println!();
    for &servers in &server_counts {
        print!("{servers},{:.4}", 1.0 / servers as f64);
        for kind in algorithms {
            let mut table = kind.build(servers + 2);
            for i in 0..servers as u64 {
                table.join(ServerId::new(i)).expect("fresh server");
            }
            let before =
                Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            table.leave(ServerId::new(servers as u64 / 2)).expect("present");
            let after = Assignment::capture(&*table, keys.iter().copied()).expect("non-empty");
            print!(",{:.4}", remap_fraction(&before, &after));
        }
        println!();
    }
}
