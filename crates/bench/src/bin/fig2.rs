//! Figure 2: pairwise cosine similarities within sets of 12
//! basis-hypervectors (random, level, circular).
//!
//! Prints the three 12×12 similarity matrices plus the profile of each set
//! relative to its first member — the data behind the paper's heatmaps and
//! node visualizations.
//!
//! Usage: `fig2 [n=12] [d=10000] [seed=2]`

use hdhash_bench::Params;
use hdhash_hdc::basis::{CircularBasis, LevelBasis, RandomBasis};
use hdhash_hdc::profile::SimilarityMatrix;
use hdhash_hdc::{Rng, SimilarityMetric};

fn main() {
    let params = Params::from_env();
    let n = params.get_usize("n", 12);
    let d = params.get_usize("d", 10_000);
    let seed = params.get_u64("seed", 2);

    println!("# Figure 2 reproduction: pairwise cosine similarity of {n} basis-hypervectors (d = {d})");
    println!();

    let mut rng = Rng::new(seed);
    let random = RandomBasis::generate(n, d, &mut rng).expect("valid parameters");
    let level = LevelBasis::generate(n, d, &mut rng).expect("valid parameters");
    let circular = CircularBasis::generate(n, d, &mut rng).expect("valid parameters");

    for (name, set) in [
        ("random", random.hypervectors()),
        ("level", level.hypervectors()),
        ("circular", circular.hypervectors()),
    ] {
        let matrix = SimilarityMatrix::compute(set, SimilarityMetric::Cosine);
        println!("## {name}-hypervectors");
        print!("{}", matrix.to_text());
        let profile: Vec<String> =
            matrix.profile_from_first().iter().map(|v| format!("{v:.2}")).collect();
        println!("profile(first vs k): [{}]", profile.join(", "));
        println!();
    }

    println!("# Reading guide (matches the paper):");
    println!("#  random   — identity diagonal, ~0 elsewhere (quasi-orthogonal)");
    println!("#  level    — similarity decays with |i-j|; ends dissimilar (discontinuity)");
    println!("#  circular — similarity decays with circular distance; no discontinuity");
}
