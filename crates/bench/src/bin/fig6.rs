//! Figure 6: discrepancy between the request distribution and uniform,
//! measured by Pearson's χ² test.
//!
//! Reproduces the uniformity sweep: for each pool size and bit-error
//! count, distributes the workload and computes
//! `χ² = Σ_s (R(s) − E)² / E` with `E = |R| / |S|`. The paper plots
//! consistent hashing and HD hashing (rendezvous is omitted as perfectly
//! pseudo-uniform by construction); we include rendezvous as a reference
//! row.
//!
//! Usage: `fig6 [lookups=100000] [max_servers=2048] [errors=0,5,10] [seed=...]`
//!
//! Expected shape (paper §5.3): HD hashing more uniform than consistent
//! hashing even without noise; bit errors worsen consistent hashing
//! further while HD hashing's distribution is unchanged.

use hdhash_bench::Params;
use hdhash_emulator::report::format_uniformity;
use hdhash_emulator::runner::{run_uniformity, UniformityConfig};
use hdhash_emulator::AlgorithmKind;

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 100_000);
    let max_servers = params.get_usize("max_servers", 2048);
    let errors = params.get_usize_list("errors", &[0, 5, 10]);
    let seed = params.get_u64("seed", 0xF16_6);

    let mut server_counts = Vec::new();
    let mut n = 2;
    while n <= max_servers {
        server_counts.push(n);
        n *= 2;
    }

    eprintln!(
        "# Figure 6 reproduction: {lookups} lookups, servers up to {max_servers}, errors {errors:?}"
    );

    let config = UniformityConfig {
        algorithms: vec![
            AlgorithmKind::Consistent,
            AlgorithmKind::Hd,
            AlgorithmKind::Rendezvous,
        ],
        server_counts,
        bit_errors: errors,
        lookups,
        seed,
    };
    let samples = run_uniformity(&config);
    println!("# Figure 6: chi-squared vs uniform (columns: algorithm_e<bit errors>)");
    print!("{}", format_uniformity(&samples));
}
