//! Figure 5: percentage of mismatched requests under bit errors.
//!
//! Reproduces the robustness sweep: for each pool size and each bit-error
//! count 0..=10, injects that many single-event upsets into each
//! algorithm's stored state, re-resolves the workload against the clean
//! ground truth, and reports the mean mismatched percentage over `trials`
//! independent corruptions. Also prints the paper's headline: 512 servers
//! with one 10-bit MCU burst.
//!
//! Usage: `fig5 [lookups=10000] [trials=10] [servers=128,512] [max_errors=10] [seed=...]`
//!
//! The paper's 2048-server point is reachable with `servers=2048`
//! (expect a long run: HD lookups scan 2048 hypervectors per request).
//!
//! Expected shape (paper §5.3): consistent hashing worst (≈12% at 512
//! servers / 10 errors; >20% at realistic error levels), rendezvous mild
//! (≈4%), HD hashing exactly 0%.

use hdhash_bench::Params;
use hdhash_emulator::report::format_mismatches;
use hdhash_emulator::runner::{run_robustness, RobustnessConfig, RobustnessNoise};
use hdhash_emulator::AlgorithmKind;

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 10_000);
    let trials = params.get_usize("trials", 10);
    let server_counts = params.get_usize_list("servers", &[128, 512]);
    let max_errors = params.get_usize("max_errors", 10);
    let seed = params.get_u64("seed", 0xF16_5);

    eprintln!(
        "# Figure 5 reproduction: {lookups} lookups, {trials} trials per point, servers {server_counts:?}"
    );

    let config = RobustnessConfig {
        algorithms: AlgorithmKind::PAPER.to_vec(),
        server_counts: server_counts.clone(),
        bit_errors: (0..=max_errors).collect(),
        lookups,
        trials,
        noise: RobustnessNoise::Seu,
        seed,
    };
    let samples = run_robustness(&config);
    println!("# Figure 5: % mismatched requests vs injected bit errors (SEU model)");
    print!("{}", format_mismatches(&samples));

    // The headline: "With 512 servers and a 10-bit MCU, HD hashing is
    // unaffected while rendezvous and consistent hashing mismatch 4% and
    // 12% of requests, respectively."
    let headline = RobustnessConfig {
        algorithms: AlgorithmKind::PAPER.to_vec(),
        server_counts: vec![512],
        bit_errors: vec![10],
        lookups,
        trials,
        noise: RobustnessNoise::Mcu,
        seed,
    };
    println!();
    println!("# Headline: 512 servers, one 10-bit MCU burst (paper: consistent 12%, rendezvous 4%, hd 0%)");
    for sample in run_robustness(&headline) {
        println!(
            "{}: {:.3}% mismatched",
            sample.algorithm,
            sample.mismatch_percent()
        );
    }
}
