//! Accelerator projection: Figure 4 with the hardware the paper invokes.
//!
//! Section 5.2 ends with "we expect the use of HDC accelerators to reduce
//! the request handling time to a constant with the extreme of a single
//! clock-cycle". This binary makes that expectation a computed series:
//! it measures HD hashing's CPU curve with the emulator (the same driver
//! as `fig4`), then prints, for each technology corner of the gate-level
//! model in `hdhash-accel`, the projected single-cycle and pipelined
//! request-handling times — plus the resulting speedups.
//!
//! Usage: `accel_projection [lookups=2000] [servers=2,8,...,2048] [dimension=10000] [seed=...]`
//!
//! Expected shape: the CPU series grows ~linearly in the pool size (a
//! serial O(k·d) scan); every projected accelerator series is flat
//! (logarithmic gate depth), restating the paper's O(1) claim with an
//! auditable model instead of a sentence.

use hdhash_accel::projection::{project_figure4, speedup_over_software};
use hdhash_accel::{ExecutionModel, TechnologyParams};
use hdhash_bench::Params;
use hdhash_emulator::runner::{run_efficiency, EfficiencyConfig};
use hdhash_emulator::AlgorithmKind;

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 2000);
    let server_counts = params.get_usize_list("servers", &[2, 8, 32, 128, 512, 2048]);
    let dimension = params.get_usize("dimension", 10_000);
    let seed = params.get_u64("seed", 0xF16_4);

    eprintln!("# Accelerator projection: {lookups} lookups, servers {server_counts:?}");

    // Measured CPU reference (HD hashing, serial inference).
    let measured = run_efficiency(&EfficiencyConfig {
        algorithms: vec![AlgorithmKind::Hd],
        server_counts: server_counts.clone(),
        lookups,
        batch: 256,
        seed,
    });

    println!("# Figure 4 projected onto HDC hardware (see DESIGN.md substitutions)");
    println!("# cpu = measured on this machine; others = gate-level model projections");
    println!(
        "{:>8} {:>14} {:>16} {:>16} {:>16} {:>12}",
        "servers", "cpu µs/req", "fpga-28nm µs", "asic-22nm µs", "asic-7nm µs", "speedup@22nm"
    );
    let corners = TechnologyParams::presets();
    for sample in &measured {
        let cpu_s = sample.avg_lookup.as_secs_f64();
        let mut projected_us = Vec::new();
        let mut speedup_22 = 0.0;
        for corner in &corners {
            let point = project_figure4(
                &[sample.servers],
                dimension,
                ExecutionModel::Combinational,
                corner,
            )[0];
            projected_us.push(point.seconds_per_request * 1.0e6);
            if corner.name == "asic-22nm" && cpu_s > 0.0 {
                speedup_22 = speedup_over_software(point, cpu_s);
            }
        }
        println!(
            "{:>8} {:>14.3} {:>16.6} {:>16.6} {:>16.6} {:>12.0}",
            sample.servers,
            cpu_s * 1.0e6,
            projected_us[0],
            projected_us[1],
            projected_us[2],
            speedup_22,
        );
    }

    // The pipelined regime: same datapath, shorter clock, one lookup
    // retired per cycle.
    println!();
    println!("# Pipelined (8 stages) streaming throughput, millions of lookups/s");
    println!("{:>8} {:>14} {:>14} {:>14}", "servers", "fpga-28nm", "asic-22nm", "asic-7nm");
    for &servers in &server_counts {
        let row: Vec<f64> = corners
            .iter()
            .map(|corner| {
                let point = project_figure4(
                    &[servers],
                    dimension,
                    ExecutionModel::Pipelined { stages: 8 },
                    corner,
                )[0];
                1.0 / point.seconds_per_request / 1.0e6
            })
            .collect();
        println!("{:>8} {:>14.1} {:>14.1} {:>14.1}", servers, row[0], row[1], row[2]);
    }
}
