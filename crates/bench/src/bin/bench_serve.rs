//! Emits `BENCH_serve.json`: closed-loop throughput of the sharded
//! serving engine across a shard count × batch size × worker count grid.
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_serve
//! cargo run --release -p hdhash-bench --bin bench_serve -- quick=1
//! cargo run --release -p hdhash-bench --bin bench_serve -- out=/tmp/B.json requests=20000
//! cargo run --release -p hdhash-bench --bin bench_serve -- --scheduler work-stealing
//! cargo run --release -p hdhash-bench --bin bench_serve -- layout=interleaved
//! ```
//!
//! Each grid point builds a fresh engine, replays an emulator-generated
//! uniform workload through `hdhash_serve::load::drive` (closed loop —
//! tickets are reaped through the async front end's block-on executor),
//! and reports completed-requests-per-second plus p50/p99 latency and the
//! mean coalesced batch fill. `scheduler=work-stealing` (or `--scheduler
//! work-stealing`) runs the whole grid on the work-stealing substrate;
//! the JSON's `scheduler` field records which one served. The JSON also
//! records the dispatched distance kernel (`HDHASH_FORCE_SCALAR` is
//! honored end-to-end: the env var flips every shard's scan kernel to the
//! portable scalar path, and the `kernel` field proves which one ran) and
//! the host's core count, since worker scaling is meaningless past it.
//! `layout=row-major|interleaved` pins every shard engine's matrix layout
//! (default: per-dimension autotune), and a paired row-major vs
//! interleaved A/B trial is always recorded in the JSON's `layout_ab`
//! block — the serving-path receipt for the layout autotune default.

use std::fmt::Write as _;

use hdhash_bench::Params;
use hdhash_emulator::{Generator, KeyDistribution, Workload};
use hdhash_serve::{
    drive, EngineOptions, MatrixLayout, SchedulerKind, ServeConfig, ServeEngine, TraceConfig,
};
use hdhash_table::ServerId;

struct GridPoint {
    shards: usize,
    workers: usize,
    batch: usize,
    completed: usize,
    rejected: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_fill: f64,
}

fn run_point(
    shards: usize,
    workers: usize,
    batch: usize,
    requests: usize,
    scheduler: SchedulerKind,
    engine: EngineOptions,
) -> GridPoint {
    run_point_traced(shards, workers, batch, requests, scheduler, engine, TraceConfig::disabled())
}

#[allow(clippy::too_many_arguments)]
fn run_point_traced(
    shards: usize,
    workers: usize,
    batch: usize,
    requests: usize,
    scheduler: SchedulerKind,
    engine_options: EngineOptions,
    trace: TraceConfig,
) -> GridPoint {
    let mut engine = ServeEngine::new(ServeConfig {
        shards,
        workers,
        batch_capacity: batch,
        queue_capacity: 8192,
        dimension: 4096,
        codebook_size: 256,
        seed: 0xBEE,
        scheduler,
        engine: engine_options,
        trace,
    })
    .expect("valid config");
    for id in 0..64u64 {
        engine.join(ServerId::new(id)).expect("fresh server");
    }
    let workload = Workload {
        initial_servers: 0,
        lookups: requests,
        keys: KeyDistribution::Uniform,
        seed: 0x5EED,
    };
    let stream = Generator::new(workload).lookup_requests();
    // Window sized to keep the queue busy without tripping backpressure.
    let report = drive(&engine, &stream, (batch * workers * 4).min(2048));
    engine.shutdown();
    let metrics = engine.metrics();
    let fills: Vec<f64> =
        metrics.shards.iter().filter(|s| s.batches > 0).map(|s| s.mean_batch_fill).collect();
    let latency = report.latency.expect("non-empty run");
    GridPoint {
        shards,
        workers,
        batch,
        completed: report.completed,
        rejected: report.rejected,
        throughput_rps: report.throughput().requests_per_sec(),
        p50_us: latency.p50.as_secs_f64() * 1e6,
        p99_us: latency.p99.as_secs_f64() * 1e6,
        mean_batch_fill: if fills.is_empty() {
            0.0
        } else {
            fills.iter().sum::<f64>() / fills.len() as f64
        },
    }
}

fn main() {
    let params = Params::from_env();
    let quick = params.get_usize("quick", 0) != 0
        || std::env::args().any(|a| a == "--quick");
    let requests = params.get_usize("requests", if quick { 2_000 } else { 20_000 });
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    // Scheduler substrate: `scheduler=work-stealing` or the two-token
    // `--scheduler work-stealing` form; default is the shared queue.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scheduler_name = args
        .iter()
        .find_map(|a| a.strip_prefix("scheduler=").map(str::to_owned))
        .or_else(|| {
            args.iter().position(|a| a == "--scheduler").map(|i| {
                // A bare trailing `--scheduler` must not silently run the
                // default substrate.
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--scheduler requires a value: shared-queue or work-stealing");
                    std::process::exit(2);
                })
            })
        });
    let scheduler = match scheduler_name.as_deref() {
        None => SchedulerKind::SharedQueue,
        Some(name) => SchedulerKind::parse(name).unwrap_or_else(|| {
            eprintln!("unknown scheduler `{name}`; use shared-queue or work-stealing");
            std::process::exit(2);
        }),
    };
    // Shard-engine matrix layout: `layout=row-major|interleaved` (or the
    // two-token `--layout` form) pins every shard's layout; the default
    // leaves it to the per-dimension autotune.
    let layout_name = args
        .iter()
        .find_map(|a| a.strip_prefix("layout=").map(str::to_owned))
        .or_else(|| {
            args.iter().position(|a| a == "--layout").map(|i| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--layout requires a value: row-major or interleaved");
                    std::process::exit(2);
                })
            })
        });
    let layout = layout_name.as_deref().map(|name| {
        MatrixLayout::parse(name).unwrap_or_else(|| {
            eprintln!("unknown layout `{name}`; use row-major or interleaved");
            std::process::exit(2);
        })
    });
    let engine_options = layout.map_or_else(EngineOptions::default, |l| {
        EngineOptions::default().with_layout(l)
    });
    let layout_label = layout.map_or("autotune", MatrixLayout::name);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let shard_counts =
        params.get_usize_list("shards", if quick { &[1, 2][..] } else { &[1, 2, 4][..] });
    let worker_counts =
        params.get_usize_list("workers", if quick { &[2][..] } else { &[1, 2, 4][..] });
    let batch_sizes =
        params.get_usize_list("batches", if quick { &[64][..] } else { &[16, 64, 256][..] });

    let mut grid: Vec<GridPoint> = Vec::new();
    for &shards in &shard_counts {
        for &workers in &worker_counts {
            for &batch in &batch_sizes {
                let point = run_point(shards, workers, batch, requests, scheduler, engine_options);
                println!(
                    "shards={:<2} workers={:<2} batch={:<4} {:>12.0} req/s  \
                     p50 {:>8.1} us  p99 {:>8.1} us  fill {:>6.1}  rejected {}",
                    point.shards,
                    point.workers,
                    point.batch,
                    point.throughput_rps,
                    point.p50_us,
                    point.p99_us,
                    point.mean_batch_fill,
                    point.rejected,
                );
                grid.push(point);
            }
        }
    }

    // Tracing-overhead A/B on a representative mid-grid point: the
    // request-path tracer at its default 1/64 sampling rate vs tracing
    // fully disabled. Arms are interleaved and each keeps its best of 5
    // — closed-loop throughput on a shared host swings far more from
    // scheduler noise than from the one-atomic-per-request tracer, and
    // best-of-N is robust against that one-sided noise. The acceptance
    // bar for the telemetry layer is ≤5% regression.
    let (ab_shards, ab_workers, ab_batch) = (2, 2, 64);
    // 4× the grid's request count per arm: each trial must run long
    // enough that a single descheduling blip can't move the number.
    let ab_requests = requests * 4;
    let ab_run = |trace: TraceConfig| -> f64 {
        run_point_traced(
            ab_shards,
            ab_workers,
            ab_batch,
            ab_requests,
            scheduler,
            engine_options,
            trace,
        )
        .throughput_rps
    };
    // Paired trials: each trial runs both arms back to back and yields
    // one on/off throughput ratio, so slow host drift cancels; the
    // reported regression is the median ratio across trials.
    let (mut trace_off_rps, mut trace_on_rps) = (0.0f64, 0.0f64);
    let mut ratios: Vec<f64> = (0..9)
        .map(|_| {
            let off = ab_run(TraceConfig::disabled());
            let on = ab_run(TraceConfig::sampled(64));
            trace_off_rps = trace_off_rps.max(off);
            trace_on_rps = trace_on_rps.max(on);
            if off > 0.0 { on / off } else { 1.0 }
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let trace_regression_pct = (1.0 - ratios[ratios.len() / 2]) * 100.0;
    println!(
        "tracing overhead @ shards={ab_shards} workers={ab_workers} batch={ab_batch}: \
         best off {trace_off_rps:.0} req/s, best 1/64 sampled {trace_on_rps:.0} req/s, \
         median paired regression {trace_regression_pct:+.1}%"
    );

    // Layout A/B on the same mid-grid point: row-major vs word-interleaved
    // shard engines, end to end through the serving path. Same paired-trial
    // discipline as the tracing A/B — each trial runs both arms back to
    // back and yields one interleaved/row-major throughput ratio, and the
    // reported speedup is the median ratio. The autotune default is
    // row-major at every dimension, so this trial is the serving-path
    // receipt for that call.
    let layout_run = |l: MatrixLayout| -> f64 {
        run_point_traced(
            ab_shards,
            ab_workers,
            ab_batch,
            ab_requests,
            scheduler,
            EngineOptions::default().with_layout(l),
            TraceConfig::disabled(),
        )
        .throughput_rps
    };
    let (mut row_major_rps, mut interleaved_rps) = (0.0f64, 0.0f64);
    let mut layout_ratios: Vec<f64> = (0..5)
        .map(|_| {
            let rm = layout_run(MatrixLayout::RowMajor);
            let il = layout_run(MatrixLayout::Interleaved);
            row_major_rps = row_major_rps.max(rm);
            interleaved_rps = interleaved_rps.max(il);
            if rm > 0.0 { il / rm } else { 1.0 }
        })
        .collect();
    layout_ratios.sort_by(f64::total_cmp);
    let layout_speedup = layout_ratios[layout_ratios.len() / 2];
    println!(
        "layout A/B @ shards={ab_shards} workers={ab_workers} batch={ab_batch}: \
         best row-major {row_major_rps:.0} req/s, best interleaved {interleaved_rps:.0} req/s, \
         median paired interleaved/row-major {layout_speedup:.3}x"
    );

    // Headline scaling ratio: best multi-shard vs best single-shard
    // throughput at the highest measured worker count.
    let max_workers = worker_counts.iter().copied().max().unwrap_or(1);
    let best = |pred: &dyn Fn(&GridPoint) -> bool| {
        grid.iter()
            .filter(|p| p.workers == max_workers && pred(p))
            .map(|p| p.throughput_rps)
            .fold(0.0f64, f64::max)
    };
    let single = best(&|p| p.shards == 1);
    let multi = best(&|p| p.shards > 1);
    let scaling = if single > 0.0 { multi / single } else { 0.0 };
    let note = if cores < 4 {
        format!(
            "host has {cores} core(s): worker/shard scaling is capped by the core count — \
             multi-shard numbers measure coalescing overhead, not parallel speedup; \
             rerun on a many-core box for the scaling headline"
        )
    } else {
        format!("host has {cores} cores; scaling ratio is meaningful up to that width")
    };

    let mut json = String::from("{\n  \"benchmark\": \"BENCH_serve\",\n");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", hdhash_simdkernels::kernel_name());
    let _ = writeln!(json, "  \"scheduler\": \"{}\",", scheduler.name());
    let _ = writeln!(json, "  \"layout\": \"{layout_label}\",");
    let _ = writeln!(json, "  \"host_isa\": \"{}\",", hdhash_simdkernels::host_isa());
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"requests_per_point\": {requests},");
    let _ = writeln!(json, "  \"note\": \"{note}\",");
    let _ = writeln!(
        json,
        "  \"multi_vs_single_shard_at_{max_workers}_workers\": {scaling:.2},"
    );
    let _ = writeln!(
        json,
        "  \"tracing_overhead\": {{\"shards\": {ab_shards}, \"workers\": {ab_workers}, \
         \"batch\": {ab_batch}, \"disabled_rps\": {trace_off_rps:.0}, \
         \"sampled_1_in_64_rps\": {trace_on_rps:.0}, \
         \"regression_pct\": {trace_regression_pct:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"layout_ab\": {{\"shards\": {ab_shards}, \"workers\": {ab_workers}, \
         \"batch\": {ab_batch}, \"row_major_rps\": {row_major_rps:.0}, \
         \"interleaved_rps\": {interleaved_rps:.0}, \
         \"interleaved_vs_row_major\": {layout_speedup:.3}}},"
    );
    json.push_str(
        "  \"latency_note\": \"per-shard latency now feeds a lock-free 65-bucket log2 \
         histogram (atomic increments, bucket-accurate quantiles) instead of the previous \
         Mutex<Vec> reservoir that serialized every worker on the response path; the \
         tracing_overhead A/B above is measured on top of that histogram path\",\n",
    );
    json.push_str("  \"series\": [\n");
    for (i, p) in grid.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"workers\": {}, \"batch\": {}, \"completed\": {}, \
             \"rejected\": {}, \"throughput_rps\": {:.0}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"mean_batch_fill\": {:.2}}}{}",
            p.shards,
            p.workers,
            p.batch,
            p.completed,
            p.rejected,
            p.throughput_rps,
            p.p50_us,
            p.p99_us,
            p.mean_batch_fill,
            if i + 1 == grid.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    println!("kernel: {}", hdhash_simdkernels::kernel_name());
    println!("scheduler: {}", scheduler.name());
    println!("layout: {layout_label}");
    println!("multi-shard vs single-shard at {max_workers} workers: {scaling:.2}x");
    // Surface the scaling caveat in the stdout summary too, so CI logs
    // are self-explanatory without opening the JSON.
    println!("note: {note}");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
