//! Figure 1: a walkthrough of HD hashing's operation.
//!
//! The paper's Figure 1 illustrates three servers and two requests encoded
//! to circular-hypervectors, with each request assigned to the server
//! whose hyperspace representation is closest — and, unlike consistent
//! hashing, "the direction of rotation does not matter". This binary
//! recreates that exact scenario and prints the similarity table behind
//! the picture.
//!
//! Usage: `fig1 [d=10000] [codebook=16] [seed=1]`

use hdhash_bench::Params;
use hdhash_core::HdHashTable;
use hdhash_hdc::similarity::cosine;
use hdhash_table::{DynamicHashTable, RequestKey, ServerId};

fn main() {
    let params = Params::from_env();
    let d = params.get_usize("d", 10_000);
    let codebook = params.get_usize("codebook", 16);
    let seed = params.get_u64("seed", 1);

    let mut table = HdHashTable::builder()
        .dimension(d)
        .codebook_size(codebook)
        .seed(seed)
        .build()
        .expect("valid parameters");

    let servers = [ServerId::new(1), ServerId::new(2), ServerId::new(3)];
    for s in servers {
        table.join(s).expect("fresh server");
    }
    // Two requests, as in the figure.
    let requests = [RequestKey::new(101), RequestKey::new(202)];

    println!("# Figure 1 walkthrough: {} servers, {} requests on a {codebook}-node circle (d = {})", servers.len(), requests.len(), table.config().dimension());
    println!();
    println!("circle slots: {}",
        servers
            .iter()
            .map(|&s| format!("{s}@{}", table.slot_of_server(s).expect("joined")))
            .collect::<Vec<_>>()
            .join("  "));
    println!();
    println!("{:<10} {:>6} {:>22} {:>10}", "request", "slot", "cosine to s1/s2/s3", "assigned");
    for &r in &requests {
        let (_, probe) = {
            let slot = table.slot_of_request(r);
            (slot, table.codebook().hypervector(slot).clone())
        };
        let sims: Vec<String> = servers
            .iter()
            .map(|&s| {
                let hv = table.codebook().hypervector(table.slot_of_server(s).expect("joined"));
                format!("{:+.2}", cosine(&probe, hv))
            })
            .collect();
        let owner = table.lookup(r).expect("non-empty");
        println!(
            "{:<10} {:>6} {:>22} {:>10}",
            r.to_string(),
            table.slot_of_request(r),
            sims.join("/"),
            owner.to_string()
        );
    }
    println!();
    println!("# Note: the winner is the *circularly nearest* slot in either direction —");
    println!("# 'unlike consistent hashing, the direction of rotation does not matter'.");
}
