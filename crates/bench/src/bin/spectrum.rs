//! The robustness spectrum: every algorithm in the workspace under the
//! Figure 5 protocol.
//!
//! Extends the paper's three-way comparison with this repo's extra
//! baselines, bracketing the design space:
//!
//! * **jump** — near-zero state (only the bucket array is corruptible);
//! * **maglev** — large lookup table: damage is *diluted* (one slot/bit);
//! * **modular** — slot array: damage ≈ corrupted slots / n;
//! * **rendezvous** — per-server words: damage ≈ 2/n per bit;
//! * **consistent** — search tree: damage *amplified* by subtree loss;
//! * **hd** — holographic encodings: provably zero under the quantum.
//!
//! Usage: `spectrum [lookups=5000] [trials=8] [servers=256] [max_errors=10]`

use hdhash_bench::Params;
use hdhash_emulator::report::format_mismatches;
use hdhash_emulator::runner::{run_robustness, RobustnessConfig, RobustnessNoise};
use hdhash_emulator::AlgorithmKind;

fn main() {
    let params = Params::from_env();
    let lookups = params.get_usize("lookups", 5_000);
    let trials = params.get_usize("trials", 8);
    let servers = params.get_usize("servers", 256);
    let max_errors = params.get_usize("max_errors", 10);
    let seed = params.get_u64("seed", 0x5BEC);

    eprintln!("# Robustness spectrum: {lookups} lookups, {trials} trials, {servers} servers");

    let config = RobustnessConfig {
        algorithms: vec![
            AlgorithmKind::Jump,
            AlgorithmKind::Maglev,
            AlgorithmKind::Modular,
            AlgorithmKind::Rendezvous,
            AlgorithmKind::Consistent,
            AlgorithmKind::Hd,
        ],
        server_counts: vec![servers],
        bit_errors: (0..=max_errors).collect(),
        lookups,
        trials,
        noise: RobustnessNoise::Seu,
        seed,
    };
    let samples = run_robustness(&config);
    println!("# Robustness spectrum: % mismatched requests vs injected bit errors");
    print!("{}", format_mismatches(&samples));
    println!();
    println!("# Reading guide: state structure determines fragility —");
    println!("#   table/array state degrades in proportion to corrupted words,");
    println!("#   pointer-based search state amplifies single errors,");
    println!("#   holographic hypervector state absorbs them entirely (hd = 0).");
}
