//! Emits `BENCH_scenarios.json`: scenario-engine trajectories across a
//! scenario × engine-config grid (see `docs/SCENARIOS.md`).
//!
//! ```text
//! cargo run --release -p hdhash-bench --bin bench_scenarios
//! cargo run --release -p hdhash-bench --bin bench_scenarios -- quick=1
//! cargo run --release -p hdhash-bench --bin bench_scenarios -- out=/tmp/B.json seed=42
//! SCENARIO_SEED=42 cargo run --release -p hdhash-bench --bin bench_scenarios
//! ```
//!
//! Every cell runs one catalog scenario (diurnal curve, flash crowd,
//! Zipf hotspot, correlated bursts, churn storm, replica crash/rejoin)
//! against one engine configuration (scheduler kind × shard count × batch
//! size × replica count per the scenario) and reports the per-phase
//! trajectory: throughput, p50/p99 latency, shed (open-loop overload),
//! epoch lag and anti-entropy divergence. Each cell is stamped with the
//! seed that reproduces it bit-for-bit (`SCENARIO_SEED=<seed>` replays
//! the whole grid; the per-cell `fingerprint` is the replay check).

use std::fmt::Write as _;

use hdhash_bench::{telemetry_embed, Params};
use hdhash_obs::TelemetrySnapshot;
use hdhash_serve::scenario::{self, Scenario, ScenarioConfig};
use hdhash_serve::{SchedulerKind, ServeConfig};

/// Default seed for the whole grid; `SCENARIO_SEED` or `seed=` overrides.
const DEFAULT_SEED: u64 = 0x5CE4_A210;

/// One engine configuration column of the grid.
struct ConfigCell {
    name: &'static str,
    config: ScenarioConfig,
}

fn configs() -> Vec<ConfigCell> {
    let small = ScenarioConfig::small();
    vec![
        ConfigCell { name: "sq-2shard-b16", config: small },
        ConfigCell {
            name: "ws-4shard-b32",
            config: ScenarioConfig {
                engine: ServeConfig {
                    shards: 4,
                    batch_capacity: 32,
                    scheduler: SchedulerKind::WorkStealing,
                    ..small.engine
                },
                ..small
            },
        },
    ]
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let wanted: &[&str] = if quick {
        &["steady", "flash-crowd", "zipf-hotspot", "churn-storm"]
    } else {
        &["steady", "diurnal", "flash-crowd", "zipf-hotspot", "correlated-bursts", "churn-storm", "crash-rejoin"]
    };
    wanted
        .iter()
        .map(|name| Scenario::by_name(name).expect("catalog scenario"))
        .collect()
}

fn main() {
    let params = Params::from_env();
    let quick =
        params.get_usize("quick", 0) != 0 || std::env::args().any(|a| a == "--quick");
    let out_path = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(str::to_owned))
        .unwrap_or_else(|| "BENCH_scenarios.json".to_owned());
    let seed = std::env::var("SCENARIO_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| params.get_u64("seed", DEFAULT_SEED));

    println!("scenario seed: {seed} (replay: SCENARIO_SEED={seed})");
    let mut telemetry = TelemetrySnapshot::new();
    let mut cells: Vec<String> = Vec::new();

    for s in scenarios(quick) {
        for cell in configs() {
            let report = scenario::run(&s, &cell.config, seed).expect("catalog run");
            assert_eq!(report.hung_tickets, 0, "{}: hung tickets", s.name);
            assert_eq!(report.epoch_mismatches, 0, "{}: epoch mismatches", s.name);
            assert!(report.converged, "{}: replica set did not converge", s.name);

            let completed = report.total(|p| p.completed);
            let shed = report.total(|p| p.shed);
            println!(
                "{:<18} {:<14} completed={:<6} shed={:<5} phases={:<2} epoch-lag≤{:<2} \
                 recovery={:<3} fp={:#018x} {:>7.2} ms",
                s.name,
                cell.name,
                completed,
                shed,
                report.phases.len(),
                report.phases.iter().map(|p| p.epoch_lag).max().unwrap_or(0),
                report.recovery_rounds,
                report.fingerprint(),
                report.wall.as_secs_f64() * 1e3,
            );

            // Phase trajectories (latency quantiles in µs; the histogram
            // records nanoseconds).
            let traj = |f: &dyn Fn(&scenario::PhaseMetrics) -> String| {
                report.phases.iter().map(f).collect::<Vec<_>>().join(", ")
            };
            let quantile_us = |p: &scenario::PhaseMetrics, q: f64| {
                p.latency.quantile(q).map_or(0.0, |ns| ns as f64 / 1e3)
            };
            let mut cell_json = String::from("    {");
            let _ = writeln!(
                cell_json,
                "\"scenario\": \"{}\", \"config\": \"{}\", \"seed\": {seed}, \
                 \"fingerprint\": \"{:#018x}\", \"replicas\": {}, \
                 \"completed\": {completed}, \"shed\": {shed}, \
                 \"converged\": {}, \"recovery_rounds\": {}, \"wall_ms\": {:.2},",
                s.name,
                cell.name,
                report.fingerprint(),
                s.replicas,
                report.converged,
                report.recovery_rounds,
                report.wall.as_secs_f64() * 1e3,
            );
            let _ = writeln!(
                cell_json,
                "     \"throughput_rps\": [{}],",
                traj(&|p| format!("{:.1}", p.throughput_rps()))
            );
            let _ = writeln!(
                cell_json,
                "     \"p50_us\": [{}],",
                traj(&|p| format!("{:.1}", quantile_us(p, 0.50)))
            );
            let _ = writeln!(
                cell_json,
                "     \"p99_us\": [{}],",
                traj(&|p| format!("{:.1}", quantile_us(p, 0.99)))
            );
            let _ = writeln!(
                cell_json,
                "     \"shed_per_phase\": [{}],",
                traj(&|p| p.shed.to_string())
            );
            let _ = writeln!(
                cell_json,
                "     \"epoch_lag\": [{}],",
                traj(&|p| p.epoch_lag.to_string())
            );
            let _ = write!(
                cell_json,
                "     \"divergence\": [{}]}}",
                traj(&|p| p.divergence.to_string())
            );
            cells.push(cell_json);

            // Scenario-level counters into the unified snapshot.
            let labels = [("scenario", s.name), ("config", cell.name)];
            telemetry.push_counter(
                "hdhash_scenario_completed_total",
                "Lookups completed by scenario runs",
                &labels,
                completed,
            );
            telemetry.push_counter(
                "hdhash_scenario_shed_total",
                "Lookups shed by the open-loop window",
                &labels,
                shed,
            );
            telemetry.push_counter(
                "hdhash_scenario_recovery_rounds_total",
                "Post-run anti-entropy rounds to convergence",
                &labels,
                report.recovery_rounds,
            );
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"BENCH_scenarios\",\n");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", hdhash_simdkernels::kernel_name());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    );
    let _ = writeln!(json, "  \"scenario_seed\": {seed},");
    let _ = writeln!(
        json,
        "  \"replay\": \"SCENARIO_SEED={seed} cargo run --release -p hdhash-bench \
         --bin bench_scenarios\","
    );
    let _ = writeln!(
        json,
        "  \"telemetry\": {},",
        telemetry_embed::embed(
            &telemetry,
            &[
                "hdhash_scenario_completed_total",
                "hdhash_scenario_shed_total",
                "hdhash_scenario_recovery_rounds_total",
            ],
        )
    );
    json.push_str("  \"series\": [\n");
    json.push_str(&cells.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
