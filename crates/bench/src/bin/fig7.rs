//! Figure 7 (extension): cumulative mismatches under field-realistic,
//! time-correlated memory errors.
//!
//! The paper's Figure 5 sweeps an instantaneous error count; its sources
//! (Schroeder et al.) describe errors as *clustered in time* on a
//! minority of machines. This extension plays that process forward: a
//! two-state Markov error chain decides which months the hosting machine
//! errors, each error month injects one Ibe-mixture burst, and state is
//! **never repaired** — the fewer-memory-swaps operating mode the paper's
//! introduction motivates. The series show how each algorithm's mismatch
//! fraction accumulates over an emulated deployment lifetime.
//!
//! Usage: `fig7 [servers=512] [months=36] [lookups=10000] [rate=0.0332] [factor=15] [events=1] [machines=4] [seed=...]`
//!
//! Expected shape: consistent hashing's mismatch fraction ratchets up at
//! every error month and never recovers; rendezvous climbs more slowly;
//! HD hashing stays at exactly 0% until far beyond its provable
//! per-vector tolerance.

use hdhash_bench::Params;
use hdhash_emulator::correlated::{run_timeline, CorrelatedErrorModel, TimelineConfig};
use hdhash_emulator::AlgorithmKind;

fn main() {
    let params = Params::from_env();
    let servers = params.get_usize("servers", 512);
    let months = params.get_usize("months", 36);
    let lookups = params.get_usize("lookups", 10_000);
    let rate = params.get_f64("rate", 0.0332);
    let factor = params.get_f64("factor", 15.0);
    let events = params.get_usize("events", 1);
    let machines = params.get_usize("machines", 4);
    let seed = params.get_u64("seed", 0xF16_7);

    let model = CorrelatedErrorModel {
        monthly_error_rate: rate,
        correlation_factor: factor,
        events_per_error: events,
    };
    eprintln!(
        "# Figure 7 extension: {servers} servers, {months} months, annual error rate {:.1}%",
        model.annual_error_probability() * 100.0
    );

    let config = TimelineConfig {
        machines,
        algorithms: AlgorithmKind::PAPER.to_vec(),
        servers,
        months,
        lookups,
        model,
        seed,
    };
    let samples = run_timeline(&config);

    println!("# Figure 7 (extension): cumulative % mismatched vs emulated months");
    println!("# errors accumulate (no repair between months); err column marks error months");
    println!(
        "{:>6} {:>4} {:>10} {:>12} {:>12} {:>12}",
        "month", "err", "bits", "consistent", "rendezvous", "hd"
    );
    for month in 1..=months {
        let row: Vec<_> =
            samples.iter().filter(|s| s.month == month).collect();
        let get = |kind: AlgorithmKind| {
            row.iter()
                .find(|s| s.algorithm == kind)
                .map(|s| s.mismatch_fraction * 100.0)
                .unwrap_or(f64::NAN)
        };
        let errored = row.first().is_some_and(|s| s.errored);
        let bits = row.first().map_or(0, |s| s.cumulative_bits);
        println!(
            "{:>6} {:>4} {:>10} {:>11.3}% {:>11.3}% {:>11.3}%",
            month,
            if errored { "*" } else { "" },
            bits,
            get(AlgorithmKind::Consistent),
            get(AlgorithmKind::Rendezvous),
            get(AlgorithmKind::Hd),
        );
    }

    let final_row = |kind: AlgorithmKind| {
        samples
            .iter().rfind(|s| s.algorithm == kind)
            .map(|s| s.mismatch_fraction * 100.0)
            .unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "# After {months} months: consistent {:.2}%, rendezvous {:.2}%, hd {:.2}%",
        final_row(AlgorithmKind::Consistent),
        final_row(AlgorithmKind::Rendezvous),
        final_row(AlgorithmKind::Hd),
    );

    println!();
    println!("# CSV");
    print!("{}", hdhash_emulator::report::format_timeline(&samples));
}
