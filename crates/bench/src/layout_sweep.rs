//! The layout × `ROW_BLOCK` × dimension sweep behind the lookup engine's
//! construction-time autotune table.
//!
//! One [`SweepPoint`] measures a single engine configuration on the two
//! workloads that bracket the engine's duty cycle: single-probe nearest
//! (noisy probes — the inference contract) and the cache-blocked
//! multi-probe batch. [`run_sweep`] walks the full grid;
//! [`best_per_dim`] reduces it to the per-dimension winner that the
//! static table in `hdhash_hdc::batch` pins at engine construction.
//!
//! The kernel tier is a per-process axis (the dispatcher resolves once),
//! so a tier trajectory is produced by re-running the sweep under
//! `HDHASH_FORCE_SCALAR=1` — every emitted block carries the
//! machine stamp ([`machine_stamp`]) naming the tier that actually ran.

use std::time::Instant;

use hdhash_hdc::{BatchLookup, EngineOptions, Hypervector, MatrixLayout, Rng};

/// One measured grid point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Hypervector dimension of the engine under test.
    pub dim: usize,
    /// Matrix layout the engine was pinned to.
    pub layout: MatrixLayout,
    /// Scan block size / interleave lane count the engine was pinned to.
    pub row_block: usize,
    /// Median ns per single-probe `nearest_one` (noisy probe).
    pub nearest_ns: f64,
    /// Median ns per probe through `nearest_batch_into`.
    pub batch_ns_per_probe: f64,
}

impl SweepPoint {
    /// The scalar rank used to pick per-dimension winners: the sum of the
    /// two per-op medians, weighting both workloads equally.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.nearest_ns + self.batch_ns_per_probe
    }
}

/// Median ns/op over `samples` timed runs of `op`, each amortized over
/// `iters` calls (one untimed warm-up first).
fn median_ns<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> f64 {
    op();
    let mut times: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Measures one engine configuration on the two bracket workloads.
#[must_use]
pub fn run_point(
    dim: usize,
    layout: MatrixLayout,
    row_block: usize,
    members: usize,
    batch_probes: usize,
    samples: usize,
) -> SweepPoint {
    let mut rng = Rng::new(0x5EE9 ^ dim as u64);
    let stored: Vec<Hypervector> =
        (0..members).map(|_| Hypervector::random(dim, &mut rng)).collect();
    let options = EngineOptions::default().with_layout(layout).with_row_block(row_block);
    let mut engine = BatchLookup::with_options(dim, options);
    for hv in &stored {
        engine.push(hv).expect("dims");
    }
    // Noisy member copies: the representative inference probe (every HDC
    // lookup has a near match). Cycle through several so one probe's
    // distance profile can't be branch-predicted away.
    let probes: Vec<Hypervector> = (0..batch_probes.max(8))
        .map(|i| {
            let mut p = stored[(i * 37) % members].clone();
            p.flip_bits(rng.distinct_indices(dim / 20, dim));
            p
        })
        .collect();
    let mut cursor = 0usize;
    let nearest_ns = median_ns(samples, 16, || {
        std::hint::black_box(engine.nearest_one(&probes[cursor % probes.len()]));
        cursor = cursor.wrapping_add(1);
    });
    let batch_refs: Vec<&Hypervector> = probes.iter().take(batch_probes).collect();
    let mut out = Vec::new();
    let batch_ns = median_ns(samples, 2, || {
        engine.nearest_batch_into(&batch_refs, &mut out);
        std::hint::black_box(out.len());
    });
    SweepPoint {
        dim,
        layout,
        row_block,
        nearest_ns,
        batch_ns_per_probe: batch_ns / batch_refs.len() as f64,
    }
}

/// Walks the full `dims × layouts × row_blocks` grid.
#[must_use]
pub fn run_sweep(
    dims: &[usize],
    row_blocks: &[usize],
    members: usize,
    batch_probes: usize,
    samples: usize,
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &dim in dims {
        for layout in MatrixLayout::ALL {
            for &row_block in row_blocks {
                points.push(run_point(dim, layout, row_block, members, batch_probes, samples));
            }
        }
    }
    points
}

/// The per-dimension winner of a sweep: the point with the lowest
/// [`SweepPoint::score`] among those sharing the dimension.
#[must_use]
pub fn best_per_dim(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let mut dims: Vec<usize> = points.iter().map(|p| p.dim).collect();
    dims.dedup();
    dims.iter()
        .filter_map(|&d| {
            points
                .iter()
                .filter(|p| p.dim == d)
                .min_by(|a, b| a.score().partial_cmp(&b.score()).expect("finite"))
                .copied()
        })
        .collect()
}

/// JSON fragment naming the hardware the sweep ran on: the dispatched
/// kernel tier, the host's best supported tier, and the core count.
/// Indented to sit inside a top-level object.
#[must_use]
pub fn machine_stamp() -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    format!(
        "  \"machine\": {{\"kernel\": \"{}\", \"host_isa\": \"{}\", \"cores\": {cores}}},\n",
        hdhash_simdkernels::kernel_name(),
        hdhash_simdkernels::host_isa(),
    )
}

/// Renders sweep points as a JSON array (no trailing comma), indented by
/// `indent` spaces per line.
#[must_use]
pub fn sweep_json(points: &[SweepPoint], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut json = String::new();
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "{pad}{{\"dim\": {}, \"layout\": \"{}\", \"row_block\": {}, \
             \"nearest_ns\": {:.0}, \"batch_ns_per_probe\": {:.0}}}{}\n",
            p.dim,
            p.layout.name(),
            p.row_block,
            p.nearest_ns,
            p.batch_ns_per_probe,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json
}
