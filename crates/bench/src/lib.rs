//! # hdhash-bench — the benchmark and figure-regeneration harness
//!
//! Every table and figure of the paper's evaluation maps to a binary in
//! `src/bin/` (deterministic data series on stdout) or a criterion bench
//! in `benches/` (wall-clock measurements):
//!
//! | Paper artifact | Regenerate with |
//! |---|---|
//! | Figure 2 (similarity heatmaps) | `cargo run --release -p hdhash-bench --bin fig2` |
//! | Figure 4 (efficiency sweep)    | `cargo run --release -p hdhash-bench --bin fig4` and `cargo bench -p hdhash-bench --bench fig4_efficiency` |
//! | Figure 5 (mismatches vs bit errors) | `cargo run --release -p hdhash-bench --bin fig5` |
//! | Figure 6 (χ² uniformity)       | `cargo run --release -p hdhash-bench --bin fig6` |
//! | Ablations (DESIGN.md §4)       | `cargo run --release -p hdhash-bench --bin ablation` and `cargo bench -p hdhash-bench --bench ablations` |
//!
//! Binaries accept `KEY=VALUE` overrides on the command line (see
//! [`params::Params`]), e.g. `fig4 lookups=2000 max_servers=512`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout_sweep;
pub mod params;
pub mod telemetry_embed;

pub use params::Params;
