//! Tiny `KEY=VALUE` command-line parameter parsing for figure binaries.

use std::collections::HashMap;

/// Parsed `KEY=VALUE` arguments with typed accessors.
///
/// # Examples
///
/// ```
/// use hdhash_bench::Params;
///
/// let params = Params::from_args(["lookups=500", "seed=9"].iter().map(|s| s.to_string()));
/// assert_eq!(params.get_usize("lookups", 10_000), 500);
/// assert_eq!(params.get_u64("seed", 1), 9);
/// assert_eq!(params.get_usize("missing", 7), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: HashMap<String, String>,
}

impl Params {
    /// Parses an argument iterator; items without `=` are ignored.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        for arg in args {
            if let Some((key, value)) = arg.split_once('=') {
                values.insert(key.to_string(), value.to_string());
            }
        }
        Self { values }
    }

    /// Parses the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// A `usize` parameter with default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value fails to parse.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("invalid {key}={v}")))
            .unwrap_or(default)
    }

    /// A `u64` parameter with default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value fails to parse.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("invalid {key}={v}")))
            .unwrap_or(default)
    }

    /// An `f64` parameter with default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value fails to parse.
    #[must_use]
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("invalid {key}={v}")))
            .unwrap_or(default)
    }

    /// A comma-separated `usize` list parameter with default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if any element fails to parse.
    #[must_use]
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            Some(v) => v
                .split(',')
                .map(|x| x.trim().parse().unwrap_or_else(|_| panic!("invalid {key}={v}")))
                .collect(),
            None => default.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(args: &[&str]) -> Params {
        Params::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_and_defaults() {
        let p = params(&["a=1", "b=2,4,8", "junk"]);
        assert_eq!(p.get_usize("a", 9), 1);
        assert_eq!(p.get_usize("z", 9), 9);
        assert_eq!(p.get_u64("a", 0), 1);
        assert_eq!(p.get_usize_list("b", &[1]), vec![2, 4, 8]);
        assert_eq!(p.get_usize_list("c", &[1, 2]), vec![1, 2]);
        assert_eq!(p.get_f64("a", 0.5), 1.0);
        assert_eq!(p.get_f64("z", 0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid a=x")]
    fn invalid_value_panics() {
        let _ = params(&["a=x"]).get_usize("a", 0);
    }
}
