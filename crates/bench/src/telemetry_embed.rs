//! Embedding unified telemetry in the `BENCH_*.json` emitters.
//!
//! Bench runs already hold live metrics structs at teardown; the bins
//! export them into one [`TelemetrySnapshot`] and call [`embed`] to
//! fold the snapshot into the report — after round-tripping the
//! Prometheus exposition through the strict vendored parser, so every
//! benchmark run doubles as an exporter conformance check.

use std::fmt::Write as _;

use hdhash_obs::{promparse, TelemetrySnapshot};

/// Renders `snapshot` as a one-line JSON object for a `"telemetry":`
/// field: the validated series count plus the summed total for each of
/// the requested metric names.
///
/// # Panics
///
/// Panics if the snapshot's own Prometheus exposition fails the strict
/// vendored parser — a bench run must never publish an exposition the
/// scrape path would reject.
pub fn embed(snapshot: &TelemetrySnapshot, keys: &[&str]) -> String {
    let text = snapshot.to_prometheus();
    let parsed = promparse::parse(&text).expect("bench telemetry exposition parses");
    promparse::validate(&parsed).expect("bench telemetry exposition validates");
    let mut out = format!("{{\"exposition_series\": {}", parsed.series.len());
    for key in keys {
        let _ = write!(out, ", \"{key}\": {:.0}", snapshot.total(key));
    }
    out.push('}');
    out
}
