//! Microbenchmarks of the HDC substrate: the primitive costs behind every
//! HD hashing operation (bind, Hamming distance, codebook generation,
//! associative-memory inference).
//!
//! Run with `cargo bench -p hdhash-bench --bench ops_micro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdhash_hdc::basis::CircularBasis;
use hdhash_hdc::ops::bind;
use hdhash_hdc::similarity::hamming;
use hdhash_hdc::{AssociativeMemory, Hypervector, Rng, SearchStrategy};

fn hv_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_primitives");
    for &d in &[1_000usize, 10_000, 100_000] {
        let mut rng = Rng::new(1);
        let a = Hypervector::random(d, &mut rng);
        let b = Hypervector::random(d, &mut rng);
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("bind", d), &d, |bench, _| {
            bench.iter(|| bind(&a, &b).expect("same dimension"));
        });
        group.bench_with_input(BenchmarkId::new("hamming", d), &d, |bench, _| {
            bench.iter(|| hamming(&a, &b));
        });
    }
    group.finish();
}

fn codebook_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_generation");
    group.sample_size(10);
    for &n in &[64usize, 512, 4096] {
        group.bench_with_input(BenchmarkId::new("circular", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut rng = Rng::new(7);
                CircularBasis::generate(n, 10_240, &mut rng).expect("valid parameters")
            });
        });
    }
    group.finish();
}

fn inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("associative_memory_inference");
    for &entries in &[64usize, 512, 2048] {
        let mut rng = Rng::new(3);
        let probe = Hypervector::random(10_240, &mut rng);
        let mut serial = AssociativeMemory::new(10_240);
        for i in 0..entries {
            serial.insert(i, Hypervector::random(10_240, &mut rng)).expect("same dimension");
        }
        let parallel = serial.clone().with_strategy(SearchStrategy::Parallel { threads: 8 });
        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(BenchmarkId::new("serial", entries), &entries, |b, _| {
            b.iter(|| serial.nearest(&probe));
        });
        group.bench_with_input(BenchmarkId::new("parallel8", entries), &entries, |b, _| {
            b.iter(|| parallel.nearest(&probe));
        });
    }
    group.finish();
}

criterion_group!(benches, hv_primitives, codebook_generation, inference);
criterion_main!(benches);
