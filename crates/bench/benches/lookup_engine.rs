//! Microbenchmarks of the word-parallel HDC kernels and the batched
//! lookup engine against their bit-at-a-time / pointer-chasing seed
//! formulations.
//!
//! Run with `cargo bench -p hdhash-bench --bench lookup_engine`.
//!
//! The acceptance bar for the kernel rewrite: ≥10× on `bundle`
//! (n = 16, d = 10 000) and a measurable win on single-probe `nearest`
//! at 1 000 members. `cargo run --release -p hdhash-bench --bin
//! bench_lookup` emits the same comparisons as `BENCH_lookup.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdhash_hdc::ops::{bundle, permute, reference};
use hdhash_hdc::{AssociativeMemory, BatchLookup, Hypervector, Rng, SearchStrategy};

fn bundle_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle_16x10k");
    let mut rng = Rng::new(1);
    let inputs: Vec<Hypervector> =
        (0..16).map(|_| Hypervector::random(10_000, &mut rng)).collect();
    let refs: Vec<&Hypervector> = inputs.iter().collect();
    group.throughput(Throughput::Elements(16 * 10_000));
    group.bench_function("word_parallel", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| bundle(&refs, &mut rng).expect("same dimension"));
    });
    group.bench_function("reference_bitwise", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| reference::bundle(&refs, &mut rng).expect("same dimension"));
    });
    group.finish();
}

fn permute_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("permute_10k");
    let mut rng = Rng::new(3);
    let hv = Hypervector::random(10_000, &mut rng);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("word_rotation", |b| {
        b.iter(|| permute(&hv, 4097));
    });
    group.bench_function("reference_bitwise", |b| {
        b.iter(|| reference::permute(&hv, 4097));
    });
    group.finish();
}

fn nearest_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_1k_members_10k_d");
    let mut rng = Rng::new(4);
    let members: Vec<Hypervector> =
        (0..1_000).map(|_| Hypervector::random(10_240, &mut rng)).collect();
    let probe = Hypervector::random(10_240, &mut rng);

    let mut engine = BatchLookup::new(10_240);
    for hv in &members {
        engine.push(hv).expect("same dimension");
    }
    let mut memory = AssociativeMemory::new(10_240);
    for (i, hv) in members.iter().enumerate() {
        memory.insert(i, hv.clone()).expect("same dimension");
    }
    let parallel = memory.clone().with_strategy(SearchStrategy::Parallel { threads: 8 });

    group.throughput(Throughput::Elements(1_000));
    group.bench_function("engine_early_exit", |b| {
        b.iter(|| engine.nearest_one(&probe));
    });
    group.bench_function("memory_serial", |b| {
        b.iter(|| memory.nearest(&probe));
    });
    group.bench_function("memory_parallel8", |b| {
        b.iter(|| parallel.nearest(&probe));
    });
    group.bench_function("seed_scan_full_metric", |b| {
        // The seed's formulation: pointer-chase the entries, evaluate the
        // full float metric per candidate, no early exit.
        b.iter(|| {
            members
                .iter()
                .enumerate()
                .map(|(i, hv)| {
                    (i, 1.0 - probe.hamming_distance(hv) as f64 / 10_240.0)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
        });
    });
    group.finish();
}

fn batch_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_256_probes_512_members");
    let mut rng = Rng::new(5);
    let d = 10_240;
    let members: Vec<Hypervector> =
        (0..512).map(|_| Hypervector::random(d, &mut rng)).collect();
    let probes: Vec<Hypervector> =
        (0..256).map(|_| Hypervector::random(d, &mut rng)).collect();
    let probe_refs: Vec<&Hypervector> = probes.iter().collect();
    let mut engine = BatchLookup::new(d);
    for hv in &members {
        engine.push(hv).expect("same dimension");
    }
    group.throughput(Throughput::Elements(256));
    group.bench_function("blocked_batch", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            engine.nearest_batch_into(&probe_refs, &mut out);
            out.len()
        });
    });
    group.bench_function("per_probe_scans", |b| {
        b.iter(|| {
            probe_refs
                .iter()
                .map(|p| engine.nearest_one(p))
                .filter(Option::is_some)
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bundle_kernels, permute_kernels, nearest_kernels, batch_kernels);
criterion_main!(benches);
