//! Microbenchmarks of the HDC accelerator model: what the *simulation*
//! of the hardware costs on this CPU (the modelled hardware's own costs
//! are analytic — see `accel_projection`).
//!
//! Covers the three Schmuck et al. techniques: CA90 rematerialization
//! (sequential step and O(log k) random access), the functional
//! combinational-AM inference, and binarized vs exact bundling.
//!
//! Run with `cargo bench -p hdhash-bench --bench accel_model`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdhash_accel::ca90::{ca90_step, evolve};
use hdhash_accel::datapath::CombinationalAm;
use hdhash_accel::majority::{binarized_bundle, exact_majority};
use hdhash_hdc::{Hypervector, Rng};

fn ca90_rematerialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ca90");
    for &d in &[1_000usize, 10_000] {
        let seed = Hypervector::random(d, &mut Rng::new(3));
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("step", d), &d, |bench, _| {
            bench.iter(|| ca90_step(&seed));
        });
        // Random access to a deep state: O(popcount(k)) stride XORs.
        group.bench_with_input(BenchmarkId::new("evolve_1023", d), &d, |bench, _| {
            bench.iter(|| evolve(&seed, 1023));
        });
    }
    group.finish();
}

fn combinational_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("combinational_am");
    group.sample_size(10);
    let d = 4096;
    for &k in &[16usize, 64] {
        let mut rng = Rng::new(4);
        let stored: Vec<Hypervector> =
            (0..k).map(|_| Hypervector::random(d, &mut rng)).collect();
        let am = CombinationalAm::new(d, stored).expect("uniform dimensions");
        let probe = Hypervector::random(d, &mut rng);
        group.bench_with_input(BenchmarkId::new("infer", k), &k, |bench, _| {
            bench.iter(|| am.infer(&probe).expect("non-empty"));
        });
    }
    group.finish();
}

fn bundling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundling");
    let d = 10_000;
    for &k in &[9usize, 27] {
        let mut rng = Rng::new(5);
        let inputs: Vec<Hypervector> =
            (0..k).map(|_| Hypervector::random(d, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let tie = Hypervector::random(d, &mut rng);
        group.throughput(Throughput::Elements((k * d) as u64));
        group.bench_with_input(BenchmarkId::new("exact_majority", k), &k, |bench, _| {
            bench.iter(|| exact_majority(&refs).expect("same dimension"));
        });
        group.bench_with_input(BenchmarkId::new("binarized", k), &k, |bench, _| {
            bench.iter(|| binarized_bundle(&refs, &tie).expect("same dimension"));
        });
    }
    group.finish();
}

criterion_group!(benches, ca90_rematerialization, combinational_inference, bundling);
criterion_main!(benches);
