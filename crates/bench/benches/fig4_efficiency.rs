//! Criterion counterpart of Figure 4: lookup latency per algorithm and
//! pool size (powers of two, 16..=1024).
//!
//! Run with `cargo bench -p hdhash-bench --bench fig4_efficiency`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdhash_emulator::AlgorithmKind;
use hdhash_table::{RequestKey, ServerId};

fn lookup_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_lookup_latency");
    for &servers in &[16usize, 64, 256, 1024] {
        for kind in [
            AlgorithmKind::Modular,
            AlgorithmKind::Consistent,
            AlgorithmKind::Rendezvous,
            AlgorithmKind::Hd,
            AlgorithmKind::HdParallel,
        ] {
            let mut table = kind.build(servers);
            for i in 0..servers as u64 {
                table.join(ServerId::new(i)).expect("fresh server");
            }
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(
                BenchmarkId::new(kind.name(), servers),
                &servers,
                |b, _| {
                    let mut key = 0u64;
                    b.iter(|| {
                        key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        table.lookup(RequestKey::new(key)).expect("non-empty pool")
                    });
                },
            );
        }
    }
    group.finish();
}

fn join_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_join_latency");
    group.sample_size(20);
    for kind in AlgorithmKind::PAPER {
        group.bench_function(BenchmarkId::new(kind.name(), 256), |b| {
            b.iter_with_large_drop(|| {
                let mut table = kind.build(256);
                for i in 0..256u64 {
                    table.join(ServerId::new(i)).expect("fresh server");
                }
                table
            });
        });
    }
    group.finish();
}

criterion_group!(benches, lookup_latency, join_latency);
criterion_main!(benches);
