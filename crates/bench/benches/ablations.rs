//! Timing ablations for DESIGN.md's design choices: the lookup cost of
//! dimension, codebook size, similarity metric and search strategy.
//!
//! Run with `cargo bench -p hdhash-bench --bench ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdhash_core::HdHashTable;
use hdhash_hdc::{SearchStrategy, SimilarityMetric};
use hdhash_table::{DynamicHashTable, RequestKey, ServerId};

fn build(dimension: usize, codebook: usize, metric: SimilarityMetric, search: SearchStrategy, servers: u64) -> HdHashTable {
    let mut table = HdHashTable::builder()
        .dimension(dimension)
        .codebook_size(codebook)
        .metric(metric)
        .search(search)
        .seed(5)
        .build()
        .expect("valid config");
    for i in 0..servers {
        table.join(ServerId::new(i)).expect("fresh server");
    }
    table
}

fn dimension_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dimension");
    for &d in &[1_000usize, 4_000, 10_000, 16_000] {
        let table = build(d, 256, SimilarityMetric::InverseHamming, SearchStrategy::Serial, 64);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                table.lookup(RequestKey::new(key)).expect("non-empty pool")
            });
        });
    }
    group.finish();
}

fn codebook_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_codebook");
    for &n in &[128usize, 512, 2048] {
        let table =
            build(10_000, n, SimilarityMetric::InverseHamming, SearchStrategy::Serial, 64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                table.lookup(RequestKey::new(key)).expect("non-empty pool")
            });
        });
    }
    group.finish();
}

fn metric_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_metric");
    for (name, metric) in [
        ("inverse_hamming", SimilarityMetric::InverseHamming),
        ("cosine", SimilarityMetric::Cosine),
    ] {
        let table = build(10_000, 256, metric, SearchStrategy::Serial, 64);
        group.bench_function(name, |b| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                table.lookup(RequestKey::new(key)).expect("non-empty pool")
            });
        });
    }
    group.finish();
}

fn parallel_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    for (name, search) in [
        ("serial", SearchStrategy::Serial),
        ("threads4", SearchStrategy::Parallel { threads: 4 }),
        ("threads8", SearchStrategy::Parallel { threads: 8 }),
    ] {
        // Use the literal Algorithm 1 construction so lookups exercise the
        // configurable search strategy (the quantized path is serial).
        let mut table = HdHashTable::builder()
            .dimension(10_000)
            .codebook_size(2048)
            .flip_strategy(hdhash_hdc::basis::FlipStrategy::Independent { flips_per_step: 5 })
            .search(search)
            .seed(5)
            .build()
            .expect("valid config");
        for i in 0..1024 {
            table.join(ServerId::new(i)).expect("fresh server");
        }
        group.bench_function(name, |b| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                table.lookup(RequestKey::new(key)).expect("non-empty pool")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, dimension_cost, codebook_cost, metric_cost, parallel_cost);
criterion_main!(benches);
