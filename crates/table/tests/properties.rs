//! Property-based tests for the table abstraction and remap metrics.

use hdhash_table::{
    mismatch_count, remap_fraction, Assignment, DynamicHashTable, ModularTable, NoisyTable,
    RequestKey, ServerId,
};
use proptest::prelude::*;

proptest! {
    /// remap_fraction is a pseudo-metric on assignments: reflexive zero,
    /// symmetric, bounded to [0, 1].
    #[test]
    fn remap_fraction_properties(
        pairs in proptest::collection::vec((any::<u64>(), 0u64..8), 1..64),
        flip_mask in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let a: Assignment = pairs
            .iter()
            .map(|&(r, s)| (RequestKey::new(r), ServerId::new(s)))
            .collect();
        let b: Assignment = pairs
            .iter()
            .zip(flip_mask.iter().cycle())
            .map(|(&(r, s), &flip)| {
                (RequestKey::new(r), ServerId::new(if flip { s + 100 } else { s }))
            })
            .collect();
        prop_assert_eq!(remap_fraction(&a, &a), 0.0);
        let ab = remap_fraction(&a, &b);
        let ba = remap_fraction(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry violated");
        prop_assert!((0.0..=1.0).contains(&ab));
        // Mismatch count consistency.
        prop_assert_eq!(mismatch_count(&a, &b), (ab * a.len() as f64).round() as usize);
    }

    /// Load accounting: per-server loads always sum to the workload size.
    #[test]
    fn load_by_server_conserves_mass(
        ids in proptest::collection::hash_set(0u64..64, 1..16),
        lookups in 1u64..500,
    ) {
        let mut table = ModularTable::new();
        for &id in &ids {
            table.join(ServerId::new(id)).expect("distinct");
        }
        let keys = (0..lookups).map(RequestKey::new);
        let snapshot = Assignment::capture(&table, keys).expect("non-empty");
        let loads = snapshot.load_by_server();
        prop_assert_eq!(loads.values().sum::<usize>(), lookups as usize);
        for server in loads.keys() {
            prop_assert!(table.contains(*server));
        }
    }

    /// Modular hashing's noise surface: injections report exact counts
    /// and clear_noise always restores, for arbitrary patterns.
    #[test]
    fn modular_noise_roundtrip(
        servers in 1u64..32,
        flips in 0usize..100,
        seed in any::<u64>(),
    ) {
        let mut table = ModularTable::new();
        for i in 0..servers {
            table.join(ServerId::new(i)).expect("fresh");
        }
        let keys: Vec<RequestKey> = (0..100).map(RequestKey::new).collect();
        let before = Assignment::capture(&table, keys.iter().copied()).expect("non-empty");
        let injected = table.inject_bit_flips(flips, seed);
        prop_assert_eq!(injected, flips);
        table.clear_noise();
        let after = Assignment::capture(&table, keys.iter().copied()).expect("non-empty");
        prop_assert_eq!(remap_fraction(&before, &after), 0.0);
    }

    /// Joining servers in any order yields the same modular assignment
    /// only when the slot order matches — order matters, and the table
    /// must be *deterministic* given the order.
    #[test]
    fn modular_determinism(order in proptest::collection::vec(0u64..16, 1..16)) {
        let distinct: Vec<u64> = {
            let mut seen = std::collections::HashSet::new();
            order.into_iter().filter(|&x| seen.insert(x)).collect()
        };
        prop_assume!(!distinct.is_empty());
        let build = || {
            let mut t = ModularTable::new();
            for &id in &distinct {
                t.join(ServerId::new(id)).expect("distinct");
            }
            t
        };
        let a = build();
        let b = build();
        for k in 0..50u64 {
            prop_assert_eq!(
                a.lookup(RequestKey::new(k)).expect("non-empty"),
                b.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }
}
