//! Modular hashing: the `h(r) mod n` baseline.
//!
//! "The simplest hash table solves the mapping problem using modular
//! hashing. Despite having a great lookup time complexity of O(1), a change
//! in table size (number of available resources) requires virtually all
//! requests to be redistributed due to the modulo operation." (paper, §1)
//!
//! This implementation exists to quantify that statement (the remap
//! experiments) and to serve as the simplest [`DynamicHashTable`] for
//! emulator plumbing tests.

use hdhash_hashfn::{Hasher64, XxHash64};

use crate::error::TableError;
use crate::ids::{RequestKey, ServerId};
use crate::traits::{DynamicHashTable, NoisyTable};

/// The `h(r) mod n` hash table.
///
/// Servers occupy a dense slot array in join order; a request hashes to a
/// slot index. The *vulnerable state surface* for noise experiments is the
/// stored slot array itself (the 64-bit server identifiers).
///
/// # Examples
///
/// ```
/// use hdhash_table::{DynamicHashTable, ModularTable, RequestKey, ServerId};
///
/// let mut table = ModularTable::new();
/// table.join(ServerId::new(0))?;
/// table.join(ServerId::new(1))?;
/// let owner = table.lookup(RequestKey::new(7))?;
/// assert!(table.contains(owner));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
pub struct ModularTable {
    hasher: Box<dyn Hasher64>,
    /// Clean membership list, in join order.
    servers: Vec<ServerId>,
    /// The stored slot array lookups actually read; noise corrupts this.
    slots: Vec<u64>,
}

impl ModularTable {
    /// Creates an empty table with the default hash function (XXH64).
    #[must_use]
    pub fn new() -> Self {
        Self::with_hasher(Box::new(XxHash64::with_seed(0)))
    }

    /// Creates an empty table with an explicit hash function.
    #[must_use]
    pub fn with_hasher(hasher: Box<dyn Hasher64>) -> Self {
        Self { hasher, servers: Vec::new(), slots: Vec::new() }
    }

    /// Re-derives the whole slot array from the clean membership list —
    /// the noise-scrub path ([`NoisyTable::clear_noise`]). Membership
    /// changes never call this: [`join`](DynamicHashTable::join) appends
    /// one slot and [`leave`](DynamicHashTable::leave) removes one, so
    /// churn is incremental and, deliberately, does not scrub noise
    /// injected into *other* slots (a join on real hardware does not
    /// repair unrelated corrupted memory).
    fn rebuild_slots(&mut self) {
        self.slots = self.servers.iter().map(|s| s.get()).collect();
    }
}

impl Default for ModularTable {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for ModularTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ModularTable")
            .field("servers", &self.servers.len())
            .field("hash", &self.hasher.kind())
            .finish()
    }
}

impl DynamicHashTable for ModularTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        if self.servers.contains(&server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        self.servers.push(server);
        self.slots.push(server.get());
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .servers
            .iter()
            .position(|&s| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        self.servers.remove(idx);
        // Remove the matching stored slot by index (it may be corrupted
        // by injected noise; index, not value, is the correspondence).
        self.slots.remove(idx);
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        if self.slots.is_empty() {
            return Err(TableError::EmptyPool);
        }
        let idx = (self.hasher.hash_bytes(&request.to_bytes()) % self.slots.len() as u64) as usize;
        Ok(ServerId::new(self.slots[idx]))
    }

    fn server_count(&self) -> usize {
        self.servers.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.servers.clone()
    }

    fn algorithm_name(&self) -> &'static str {
        "modular"
    }
}

impl NoisyTable for ModularTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        if self.slots.is_empty() {
            return 0;
        }
        let mut rng = hdhash_hashfn::SplitMix64::new(seed);
        let surface = self.noise_surface_bits() as u64;
        for _ in 0..count {
            let bit = rng.next_below(surface) as usize;
            self.slots[bit / 64] ^= 1u64 << (bit % 64);
        }
        count
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        if self.slots.is_empty() || length == 0 {
            return 0;
        }
        let mut rng = hdhash_hashfn::SplitMix64::new(seed);
        let surface = self.noise_surface_bits();
        let start = rng.next_below(surface as u64) as usize;
        let end = (start + length).min(surface);
        for bit in start..end {
            self.slots[bit / 64] ^= 1u64 << (bit % 64);
        }
        end - start
    }

    fn clear_noise(&mut self) {
        self.rebuild_slots();
    }

    fn noise_surface_bits(&self) -> usize {
        self.slots.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> ModularTable {
        let mut t = ModularTable::new();
        for i in 0..n {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    #[test]
    fn join_leave_lookup_lifecycle() {
        let mut t = ModularTable::new();
        assert_eq!(t.lookup(RequestKey::new(1)), Err(TableError::EmptyPool));
        t.join(ServerId::new(10)).expect("fresh");
        assert_eq!(t.lookup(RequestKey::new(1)).expect("pool non-empty"), ServerId::new(10));
        assert_eq!(
            t.join(ServerId::new(10)),
            Err(TableError::ServerAlreadyPresent(ServerId::new(10)))
        );
        t.leave(ServerId::new(10)).expect("present");
        assert_eq!(
            t.leave(ServerId::new(10)),
            Err(TableError::ServerNotFound(ServerId::new(10)))
        );
        assert_eq!(t.server_count(), 0);
    }

    #[test]
    fn lookup_is_deterministic_and_in_pool() {
        let t = filled(16);
        for k in 0..1000u64 {
            let a = t.lookup(RequestKey::new(k)).expect("non-empty");
            let b = t.lookup(RequestKey::new(k)).expect("non-empty");
            assert_eq!(a, b);
            assert!(t.contains(a));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let t = filled(8);
        let mut counts = std::collections::HashMap::new();
        for k in 0..8000u64 {
            *counts.entry(t.lookup(RequestKey::new(k)).expect("non-empty")).or_insert(0u32) += 1;
        }
        for (&server, &c) in &counts {
            assert!((800..1200).contains(&c), "{server} got {c}");
        }
    }

    #[test]
    fn resize_remaps_most_requests() {
        // The paper's motivation: adding one server to a modular table
        // remaps virtually all requests (expected fraction 1 - 1/(n+1)).
        let t1 = filled(16);
        let mut t2 = filled(16);
        t2.join(ServerId::new(999)).expect("fresh");
        let moved = (0..4000u64)
            .filter(|&k| {
                t1.lookup(RequestKey::new(k)).expect("non-empty")
                    != t2.lookup(RequestKey::new(k)).expect("non-empty")
            })
            .count();
        let fraction = moved as f64 / 4000.0;
        assert!(fraction > 0.85, "modular should remap nearly everything: {fraction}");
    }

    #[test]
    fn noise_changes_lookups_and_clear_restores() {
        let mut t = filled(64);
        let clean: Vec<ServerId> =
            (0..500).map(|k| t.lookup(RequestKey::new(k)).expect("non-empty")).collect();
        t.inject_bit_flips(10, 42);
        let noisy: Vec<ServerId> =
            (0..500).map(|k| t.lookup(RequestKey::new(k)).expect("non-empty")).collect();
        assert_ne!(clean, noisy, "10 flips in 64 slots should corrupt something");
        t.clear_noise();
        let restored: Vec<ServerId> =
            (0..500).map(|k| t.lookup(RequestKey::new(k)).expect("non-empty")).collect();
        assert_eq!(clean, restored);
    }

    #[test]
    fn burst_injection_bounded() {
        let mut t = filled(4);
        assert_eq!(t.noise_surface_bits(), 256);
        let flipped = t.inject_burst(300, 7);
        assert!(flipped <= 256);
        assert_eq!(t.inject_burst(0, 7), 0);
        let mut empty = ModularTable::new();
        assert_eq!(empty.inject_bit_flips(5, 1), 0);
        assert_eq!(empty.inject_burst(5, 1), 0);
    }

    #[test]
    fn debug_shows_summary() {
        let t = filled(3);
        let s = format!("{t:?}");
        assert!(s.contains("servers: 3"));
    }
}
