//! Strongly typed identifiers for servers and requests.
//!
//! In practice these stand for IP addresses or unique identifiers (as the
//! paper notes for its `h(·)` inputs); the emulator generates them as
//! opaque 64-bit values. Newtypes keep the two spaces from being mixed up.

/// Identifier of a server (a hash table slot owner).
///
/// # Examples
///
/// ```
/// use hdhash_table::ServerId;
///
/// let s = ServerId::new(3);
/// assert_eq!(s.get(), 3);
/// assert_eq!(s.to_string(), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerId(u64);

impl ServerId {
    /// Wraps a raw identifier.
    #[must_use]
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw identifier.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Canonical byte encoding fed to hash functions.
    #[must_use]
    pub const fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }
}

impl From<u64> for ServerId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

impl core::fmt::Display for ServerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier (key) of a request.
///
/// # Examples
///
/// ```
/// use hdhash_table::RequestKey;
///
/// let r = RequestKey::new(42);
/// assert_eq!(r.get(), 42);
/// assert_eq!(r.to_string(), "r42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestKey(u64);

impl RequestKey {
    /// Wraps a raw key.
    #[must_use]
    pub const fn new(key: u64) -> Self {
        Self(key)
    }

    /// The raw key.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Canonical byte encoding fed to hash functions.
    #[must_use]
    pub const fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }
}

impl From<u64> for RequestKey {
    fn from(key: u64) -> Self {
        Self(key)
    }
}

impl core::fmt::Display for RequestKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let s = ServerId::new(17);
        assert_eq!(s.get(), 17);
        assert_eq!(ServerId::from(17u64), s);
        assert_eq!(s.to_string(), "s17");
        assert_eq!(s.to_bytes(), 17u64.to_le_bytes());

        let r = RequestKey::new(99);
        assert_eq!(r.get(), 99);
        assert_eq!(RequestKey::from(99u64), r);
        assert_eq!(r.to_string(), "r99");
        assert_eq!(r.to_bytes(), 99u64.to_le_bytes());
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ServerId::new(1) < ServerId::new(2));
        assert!(RequestKey::new(5) > RequestKey::new(4));
    }

    #[test]
    fn usable_as_map_keys() {
        let mut map = std::collections::HashMap::new();
        map.insert(ServerId::new(1), "a");
        map.insert(ServerId::new(2), "b");
        assert_eq!(map[&ServerId::new(1)], "a");
    }
}
