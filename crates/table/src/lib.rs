//! # hdhash-table — the dynamic hash table abstraction
//!
//! The problem every algorithm in this workspace solves is *request
//! mapping*: given a changing population of servers, map each request to a
//! server such that (1) requests spread evenly, and (2) few requests move
//! when a server joins or leaves. This crate defines that contract:
//!
//! * [`ServerId`] / [`RequestKey`] — strongly typed identifiers;
//! * [`DynamicHashTable`] — the join/leave/lookup trait implemented by
//!   modular hashing (here), consistent hashing (`hdhash-ring`), rendezvous
//!   hashing (`hdhash-rendezvous`) and HD hashing (`hdhash-core`);
//! * [`NoisyTable`] — the fault-injection extension used by the paper's
//!   robustness experiments (Figures 5 and 6);
//! * [`ModularTable`] — the `h(r) mod n` baseline of the paper's
//!   introduction, which remaps nearly everything on resize;
//! * [`remap`] — utilities measuring remapped fractions between
//!   assignment snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod modular;
pub mod remap;
pub mod traits;

pub use error::TableError;
pub use ids::{RequestKey, ServerId};
pub use modular::ModularTable;
pub use remap::{mismatch_count, remap_fraction, Assignment};
pub use traits::{DynamicHashTable, NoisyTable};
