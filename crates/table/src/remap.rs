//! Measuring request remapping between table states.
//!
//! Consistent, rendezvous and HD hashing exist to *minimize* the number of
//! requests that move when the pool resizes; modular hashing moves nearly
//! all of them. [`Assignment`] snapshots a workload's mapping and
//! [`remap_fraction`] compares two snapshots — the quantity behind the
//! paper's "minimal rehashing" claims and this repo's remap ablations.

use std::collections::HashMap;

use crate::error::TableError;
use crate::ids::{RequestKey, ServerId};
use crate::traits::DynamicHashTable;

/// A snapshot of `request → server` assignments for a fixed workload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    map: HashMap<RequestKey, ServerId>,
}

impl Assignment {
    /// Captures the assignment of every key in `requests` under `table`.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError::EmptyPool`] from lookups.
    pub fn capture<T: DynamicHashTable + ?Sized, I: IntoIterator<Item = RequestKey>>(
        table: &T,
        requests: I,
    ) -> Result<Self, TableError> {
        let mut map = HashMap::new();
        for r in requests {
            map.insert(r, table.lookup(r)?);
        }
        Ok(Self { map })
    }

    /// Number of captured requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The server a captured request mapped to.
    #[must_use]
    pub fn server_of(&self, request: RequestKey) -> Option<ServerId> {
        self.map.get(&request).copied()
    }

    /// Per-server request counts (the load vector for uniformity tests).
    #[must_use]
    pub fn load_by_server(&self) -> HashMap<ServerId, usize> {
        let mut loads = HashMap::new();
        for &server in self.map.values() {
            *loads.entry(server).or_insert(0) += 1;
        }
        loads
    }

    /// Iterates over `(request, server)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (RequestKey, ServerId)> + '_ {
        self.map.iter().map(|(&r, &s)| (r, s))
    }
}

impl FromIterator<(RequestKey, ServerId)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (RequestKey, ServerId)>>(iter: I) -> Self {
        Self { map: iter.into_iter().collect() }
    }
}

/// Fraction of requests (present in both snapshots) whose server changed.
///
/// Returns `0.0` when no keys are shared.
///
/// # Examples
///
/// ```
/// use hdhash_table::{remap_fraction, Assignment, RequestKey, ServerId};
///
/// let before: Assignment =
///     [(RequestKey::new(1), ServerId::new(1)), (RequestKey::new(2), ServerId::new(2))]
///         .into_iter()
///         .collect();
/// let after: Assignment =
///     [(RequestKey::new(1), ServerId::new(1)), (RequestKey::new(2), ServerId::new(9))]
///         .into_iter()
///         .collect();
/// assert_eq!(remap_fraction(&before, &after), 0.5);
/// ```
#[must_use]
pub fn remap_fraction(before: &Assignment, after: &Assignment) -> f64 {
    let mut shared = 0usize;
    let mut moved = 0usize;
    for (r, s) in before.iter() {
        if let Some(s2) = after.server_of(r) {
            shared += 1;
            if s != s2 {
                moved += 1;
            }
        }
    }
    if shared == 0 {
        0.0
    } else {
        moved as f64 / shared as f64
    }
}

/// Count of requests whose assignment differs between snapshots — the
/// "mismatch" count of the paper's Figure 5 when `after` is a noisy rerun
/// of the same table.
#[must_use]
pub fn mismatch_count(reference: &Assignment, observed: &Assignment) -> usize {
    reference
        .iter()
        .filter(|&(r, s)| observed.server_of(r).is_some_and(|s2| s2 != s))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::ModularTable;

    fn keys(n: u64) -> Vec<RequestKey> {
        (0..n).map(RequestKey::new).collect()
    }

    #[test]
    fn capture_and_loads() {
        let mut t = ModularTable::new();
        for i in 0..4 {
            t.join(ServerId::new(i)).expect("fresh");
        }
        let snap = Assignment::capture(&t, keys(100)).expect("non-empty pool");
        assert_eq!(snap.len(), 100);
        assert!(!snap.is_empty());
        let loads = snap.load_by_server();
        assert_eq!(loads.values().sum::<usize>(), 100);
        assert!(loads.len() <= 4);
    }

    #[test]
    fn capture_empty_pool_errors() {
        let t = ModularTable::new();
        assert_eq!(Assignment::capture(&t, keys(3)), Err(TableError::EmptyPool));
    }

    #[test]
    fn identical_snapshots_zero_remap() {
        let mut t = ModularTable::new();
        t.join(ServerId::new(1)).expect("fresh");
        let a = Assignment::capture(&t, keys(50)).expect("non-empty");
        let b = Assignment::capture(&t, keys(50)).expect("non-empty");
        assert_eq!(remap_fraction(&a, &b), 0.0);
        assert_eq!(mismatch_count(&a, &b), 0);
    }

    #[test]
    fn disjoint_snapshots_zero_by_convention() {
        let a: Assignment = [(RequestKey::new(1), ServerId::new(1))].into_iter().collect();
        let b: Assignment = [(RequestKey::new(2), ServerId::new(1))].into_iter().collect();
        assert_eq!(remap_fraction(&a, &b), 0.0);
    }

    #[test]
    fn partial_moves_counted() {
        let a: Assignment = (0..10)
            .map(|i| (RequestKey::new(i), ServerId::new(0)))
            .collect();
        let b: Assignment = (0..10)
            .map(|i| (RequestKey::new(i), ServerId::new(u64::from(i < 3))))
            .collect();
        assert!((remap_fraction(&a, &b) - 0.3).abs() < 1e-12);
        assert_eq!(mismatch_count(&a, &b), 3);
    }

    #[test]
    fn server_of_missing_is_none() {
        let a = Assignment::default();
        assert_eq!(a.server_of(RequestKey::new(5)), None);
        assert!(a.is_empty());
    }
}
