//! Error type shared by dynamic hash table implementations.

use crate::ids::ServerId;

/// Errors returned by [`DynamicHashTable`](crate::DynamicHashTable)
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TableError {
    /// A join was attempted for a server already in the pool.
    ServerAlreadyPresent(ServerId),
    /// A leave was attempted for a server not in the pool.
    ServerNotFound(ServerId),
    /// A lookup was attempted against an empty pool.
    EmptyPool,
    /// The implementation ran out of slots (e.g. an HD codebook with
    /// `n ≤ k` live servers, violating the paper's `n > k` requirement).
    CapacityExhausted {
        /// Live servers currently in the pool.
        servers: usize,
        /// Maximum the structure can hold.
        capacity: usize,
    },
    /// A weighted join was attempted with weight zero (weighted tables
    /// require every server to hold at least one replica).
    ZeroWeight(ServerId),
    /// The worker serving this lookup panicked; the serving layer
    /// contained the panic and backfilled the ticket with this verdict
    /// instead of leaving the caller hanging. The request itself was
    /// never evaluated — retrying is safe.
    WorkerPanicked,
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::ServerAlreadyPresent(id) => {
                write!(f, "server {id} already joined the pool")
            }
            TableError::ServerNotFound(id) => write!(f, "server {id} is not in the pool"),
            TableError::EmptyPool => f.write_str("lookup against an empty server pool"),
            TableError::CapacityExhausted { servers, capacity } => {
                write!(f, "pool of {servers} servers exhausted capacity {capacity}")
            }
            TableError::ZeroWeight(id) => {
                write!(f, "server {id} joined with weight zero")
            }
            TableError::WorkerPanicked => {
                f.write_str("serving worker panicked; lookup not evaluated")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TableError::ServerAlreadyPresent(ServerId::new(1))
            .to_string()
            .contains("already joined"));
        assert!(TableError::ServerNotFound(ServerId::new(2)).to_string().contains("not in"));
        assert!(TableError::EmptyPool.to_string().contains("empty"));
        assert!(TableError::CapacityExhausted { servers: 9, capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(TableError::ZeroWeight(ServerId::new(3)).to_string().contains("weight zero"));
        assert!(TableError::WorkerPanicked.to_string().contains("panicked"));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(TableError::EmptyPool);
        assert!(!err.to_string().is_empty());
    }
}
