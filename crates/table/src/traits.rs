//! The dynamic hash table contract.

use crate::error::TableError;
use crate::ids::{RequestKey, ServerId};

/// A dynamic hash table mapping requests to a changing pool of servers.
///
/// This is the interface the paper's emulator exercises: servers are added
/// and removed through special *join* and *leave* requests, and ordinary
/// requests are resolved to a live server by `lookup`.
///
/// Implementations in this workspace:
///
/// * [`ModularTable`](crate::ModularTable) — `h(r) mod n` (baseline);
/// * `ConsistentTable` (`hdhash-ring`) — the unit circle with binary search;
/// * `RendezvousTable` (`hdhash-rendezvous`) — highest random weight;
/// * `HdHashTable` (`hdhash-core`) — the paper's contribution.
pub trait DynamicHashTable {
    /// Adds a server to the pool.
    ///
    /// # Errors
    ///
    /// * [`TableError::ServerAlreadyPresent`] if `server` already joined;
    /// * [`TableError::CapacityExhausted`] if the structure cannot hold
    ///   another server.
    fn join(&mut self, server: ServerId) -> Result<(), TableError>;

    /// Removes a server from the pool.
    ///
    /// # Errors
    ///
    /// [`TableError::ServerNotFound`] if `server` is not in the pool.
    fn leave(&mut self, server: ServerId) -> Result<(), TableError>;

    /// Maps a request to a live server.
    ///
    /// # Errors
    ///
    /// [`TableError::EmptyPool`] if no servers have joined.
    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError>;

    /// Maps a batch of requests at once.
    ///
    /// The paper's emulator dispatches requests to its GPU in batches of
    /// 256; implementations with internal parallelism (HD hashing's
    /// multi-threaded inference) override this to amortize their dispatch
    /// overhead. The default resolves requests one by one.
    fn lookup_batch(&self, requests: &[RequestKey]) -> Vec<Result<ServerId, TableError>> {
        requests.iter().map(|&r| self.lookup(r)).collect()
    }

    /// Number of live servers.
    fn server_count(&self) -> usize;

    /// The live servers, in implementation-defined order.
    fn servers(&self) -> Vec<ServerId>;

    /// Whether `server` is currently in the pool.
    fn contains(&self, server: ServerId) -> bool {
        self.servers().contains(&server)
    }

    /// A short human-readable algorithm name (used in reports and figures).
    fn algorithm_name(&self) -> &'static str;
}

/// Fault injection for robustness experiments (paper Section 5.3).
///
/// Each implementation declares a *vulnerable state surface* — the bits it
/// keeps in memory that a soft error could corrupt — and exposes uniform
/// bit-flip injection over that surface:
///
/// * consistent hashing — the stored 64-bit ring positions;
/// * rendezvous hashing — the per-(server, request) hash words as used;
/// * HD hashing — the stored server hypervectors;
/// * modular hashing — the stored server slot array.
pub trait NoisyTable: DynamicHashTable {
    /// Flips `count` uniformly random bits of the vulnerable state,
    /// drawing positions from `seed` deterministically. Returns the number
    /// of bits flipped (may be less than `count` if state is empty).
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize;

    /// Flips a contiguous burst of `length` bits at a random offset of the
    /// vulnerable state (the multi-cell upset model). Returns the number of
    /// bits flipped.
    fn inject_burst(&mut self, length: usize, seed: u64) -> usize;

    /// Restores the table to its noise-free state (rebuilds stored values
    /// from the server list), so one table instance can be reused across
    /// noise trials.
    fn clear_noise(&mut self);

    /// Total number of bits in the vulnerable state surface.
    fn noise_surface_bits(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::ModularTable;

    #[test]
    fn trait_is_object_safe() {
        let table = ModularTable::new();
        let obj: &dyn DynamicHashTable = &table;
        assert_eq!(obj.server_count(), 0);
        assert_eq!(obj.algorithm_name(), "modular");
    }

    #[test]
    fn noisy_trait_is_object_safe() {
        let mut table = ModularTable::new();
        table.join(ServerId::new(1)).expect("fresh server");
        let obj: &mut dyn NoisyTable = &mut table;
        assert!(obj.noise_surface_bits() > 0);
    }

    #[test]
    fn contains_default_impl() {
        let mut table = ModularTable::new();
        table.join(ServerId::new(5)).expect("fresh server");
        assert!(table.contains(ServerId::new(5)));
        assert!(!table.contains(ServerId::new(6)));
    }
}
