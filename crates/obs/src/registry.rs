//! A named-metric registry handing out lock-free handles.
//!
//! Registration takes a brief lock on the name table; the returned
//! [`Counter`] / [`Gauge`] / [`LogHistogram`] handles update through
//! shared atomics with no lock at all, so hot paths hold a handle and
//! never touch the registry again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::LogHistogram;
use crate::snapshot::TelemetrySnapshot;

/// A monotonically-increasing counter handle. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A standalone counter not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle (signed). Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A standalone gauge not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, (String, Counter)>,
    gauges: BTreeMap<String, (String, Gauge)>,
    histograms: BTreeMap<String, (String, Arc<LogHistogram>)>,
}

/// A registry of named metrics.
///
/// ```
/// use hdhash_obs::Registry;
/// let reg = Registry::new();
/// let served = reg.counter("served_total", "Requests served.");
/// served.add(3);
/// // A second registration by the same name shares the cell.
/// reg.counter("served_total", "Requests served.").inc();
/// assert_eq!(served.get(), 4);
/// let snap = reg.export();
/// assert_eq!(snap.get("served_total"), Some(4.0));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`. The first registration's
    /// help text wins.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Counter::new()))
            .1
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Gauge::new()))
            .1
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<LogHistogram> {
        let mut inner = self.inner.lock();
        Arc::clone(
            &inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| (help.to_string(), Arc::new(LogHistogram::new())))
                .1,
        )
    }

    /// Append every registered metric to `snapshot` (unlabeled series).
    pub fn export_into(&self, snapshot: &mut TelemetrySnapshot) {
        let inner = self.inner.lock();
        for (name, (help, counter)) in &inner.counters {
            snapshot.push_counter(name, help, &[], counter.get());
        }
        for (name, (help, gauge)) in &inner.gauges {
            snapshot.push_gauge(name, help, &[], gauge.get() as f64);
        }
        for (name, (help, hist)) in &inner.histograms {
            snapshot.push_histogram(name, help, &[], hist.snapshot());
        }
    }

    /// A fresh snapshot holding every registered metric.
    pub fn export(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        self.export_into(&mut snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_survive_registry_drop_scope() {
        let reg = Registry::new();
        let a = reg.counter("hits", "Hits.");
        let b = reg.counter("hits", "ignored duplicate help");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = reg.gauge("depth", "Queue depth.");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("depth", "").get(), 5);
        let h = reg.histogram("lat", "Latency.");
        h.record(10);
        assert_eq!(reg.histogram("lat", "").count(), 1);
    }

    #[test]
    fn concurrent_handle_updates_are_lock_free_and_exact() {
        let reg = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = reg.counter("n", "");
                std::thread::spawn(move || {
                    for _ in 0..50_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("n", "").get(), 200_000);
    }

    #[test]
    fn export_covers_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("c_total", "A counter.").add(4);
        reg.gauge("g", "A gauge.").set(-2);
        reg.histogram("h", "A histogram.").record(100);
        let snap = reg.export();
        assert_eq!(snap.get("c_total"), Some(4.0));
        assert_eq!(snap.get("g"), Some(-2.0));
        let text = snap.to_prometheus();
        let parsed = crate::promparse::parse(&text).unwrap();
        crate::promparse::validate(&parsed).unwrap();
        assert_eq!(parsed.value("h_count"), Some(1.0));
    }
}
