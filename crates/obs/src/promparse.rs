//! A vendored parser for the Prometheus text exposition format, so CI can
//! validate [`TelemetrySnapshot::to_prometheus`](crate::TelemetrySnapshot::to_prometheus)
//! output offline — the observability analogue of the `crates/compat`
//! shims.
//!
//! It understands `# HELP` / `# TYPE` comments and sample lines with
//! optional labels, and enforces the structural rules a real scraper
//! would: metric-name syntax, quoted/escaped label values, finite sample
//! syntax (`NaN`/`+Inf`/`-Inf` accepted as values), and — via
//! [`validate`] — that histogram bucket series are cumulative and
//! consistent with their `_count`.

use std::collections::BTreeMap;

/// One sample line: `name{label="v",...} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSeries {
    /// Metric name (for histogram series this includes the `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ParsedSeries {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: the TYPE/HELP metadata plus every sample line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedExposition {
    /// `# TYPE <name> <type>` declarations.
    pub types: BTreeMap<String, String>,
    /// `# HELP <name> <text>` declarations.
    pub helps: BTreeMap<String, String>,
    /// Every sample line, in order.
    pub series: Vec<ParsedSeries>,
}

impl ParsedExposition {
    /// All samples whose (base) name matches.
    pub fn series_named(&self, name: &str) -> Vec<&ParsedSeries> {
        self.series.iter().filter(|s| s.name == name).collect()
    }

    /// The single value of an unlabeled (or uniquely-named) series.
    pub fn value(&self, name: &str) -> Option<f64> {
        let hits = self.series_named(name);
        match hits.as_slice() {
            [one] => Some(one.value),
            _ => None,
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse::<f64>().map_err(|_| format!("bad sample value `{other}`")),
    }
}

/// Parse one exposition document.
pub fn parse(text: &str) -> Result<ParsedExposition, String> {
    let mut out = ParsedExposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, ty) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("malformed TYPE line".into()))?;
                if !valid_metric_name(name) {
                    return Err(err(format!("bad metric name `{name}` in TYPE")));
                }
                if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(err(format!("unknown metric type `{ty}`")));
                }
                if out.types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(err(format!("duplicate TYPE for `{name}`")));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                if !valid_metric_name(name) {
                    return Err(err(format!("bad metric name `{name}` in HELP")));
                }
                out.helps.insert(name.to_string(), help.to_string());
            }
            // Other comments are ignored, per the format spec.
            continue;
        }
        out.series.push(parse_sample(line).map_err(err)?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<ParsedSeries, String> {
    let (name_and_labels, value_text) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label set in `{line}`"))?;
            if close < brace {
                return Err(format!("mismatched braces in `{line}`"));
            }
            ((&line[..brace], Some(&line[brace + 1..close])), line[close + 1..].trim())
        }
        None => {
            let (name, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("missing value in `{line}`"))?;
            ((name, None), value.trim())
        }
    };
    let (name, labels_text) = name_and_labels;
    if !valid_metric_name(name) {
        return Err(format!("bad metric name `{name}`"));
    }
    let mut labels = Vec::new();
    if let Some(body) = labels_text {
        let mut rest = body.trim();
        while !rest.is_empty() {
            let eq = rest.find('=').ok_or_else(|| format!("missing `=` in labels `{body}`"))?;
            let key = rest[..eq].trim();
            if !valid_label_name(key) {
                return Err(format!("bad label name `{key}`"));
            }
            let after = rest[eq + 1..].trim_start();
            if !after.starts_with('"') {
                return Err(format!("label value for `{key}` is not quoted"));
            }
            // Scan the quoted value honoring backslash escapes.
            let mut value = String::new();
            let mut chars = after[1..].char_indices();
            let mut consumed = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => {
                        consumed = Some(i + 2); // opening quote + body + closing quote
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, '\\')) => value.push('\\'),
                        other => {
                            return Err(format!(
                                "bad escape `\\{}` in label `{key}`",
                                other.map(|(_, c)| c).unwrap_or(' ')
                            ))
                        }
                    },
                    c => value.push(c),
                }
            }
            let consumed =
                consumed.ok_or_else(|| format!("unterminated label value for `{key}`"))?;
            labels.push((key.to_string(), value));
            rest = after[consumed..].trim_start();
            if let Some(stripped) = rest.strip_prefix(',') {
                rest = stripped.trim_start();
            } else if !rest.is_empty() {
                return Err(format!("expected `,` between labels in `{body}`"));
            }
        }
    }
    Ok(ParsedSeries { name: name.to_string(), labels, value: parse_value(value_text)? })
}

/// Structural validation beyond syntax: every sample's base name must have
/// a TYPE declaration, histogram buckets must be cumulative
/// (non-decreasing in `le` order, ending at `+Inf`), and the `+Inf` bucket
/// must equal the histogram's `_count`.
pub fn validate(exposition: &ParsedExposition) -> Result<(), String> {
    for s in &exposition.series {
        let base = base_name(&s.name, &exposition.types);
        if !exposition.types.contains_key(base) {
            return Err(format!("series `{}` has no TYPE declaration", s.name));
        }
    }
    // Group histogram buckets by base name + non-`le` labels.
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for s in &exposition.series {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            if exposition.types.get(base).map(String::as_str) == Some("histogram") {
                let le = s.label("le").ok_or_else(|| format!("`{}` missing le", s.name))?;
                let bound = parse_value(le).map_err(|e| format!("bad le bound: {e}"))?;
                groups.entry(group_key(base, s)).or_default().push((bound, s.value));
            }
        } else if let Some(base) = s.name.strip_suffix("_count") {
            if exposition.types.get(base).map(String::as_str) == Some("histogram") {
                counts.insert(group_key(base, s), s.value);
            }
        }
    }
    for (key, mut buckets) in groups {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are ordered"));
        let mut prev = -1.0;
        for &(_, cum) in &buckets {
            if cum < prev {
                return Err(format!("histogram `{key}` buckets are not cumulative"));
            }
            prev = cum;
        }
        let last = buckets.last().expect("non-empty group");
        if !last.0.is_infinite() {
            return Err(format!("histogram `{key}` lacks a +Inf bucket"));
        }
        if let Some(&count) = counts.get(&key) {
            if (last.1 - count).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram `{key}`: +Inf bucket {} != _count {count}",
                    last.1
                ));
            }
        } else {
            return Err(format!("histogram `{key}` lacks a _count series"));
        }
    }
    Ok(())
}

/// Strip a histogram suffix when the remainder is a declared histogram.
fn base_name<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

fn group_key(base: &str, series: &ParsedSeries) -> String {
    let mut key = base.to_string();
    for (k, v) in &series.labels {
        if k != "le" {
            key.push_str(&format!("|{k}={v}"));
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_labels() {
        let text = "\
# HELP hdhash_served_total Requests served.\n\
# TYPE hdhash_served_total counter\n\
hdhash_served_total{shard=\"0\"} 10\n\
hdhash_served_total{shard=\"1\"} 32\n\
# TYPE up gauge\n\
up 1\n";
        let exp = parse(text).unwrap();
        assert_eq!(exp.types["hdhash_served_total"], "counter");
        assert_eq!(exp.helps["hdhash_served_total"], "Requests served.");
        let series = exp.series_named("hdhash_served_total");
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].label("shard"), Some("1"));
        assert_eq!(series[1].value, 32.0);
        assert_eq!(exp.value("up"), Some(1.0));
        validate(&exp).unwrap();
    }

    #[test]
    fn histogram_bucket_rules_are_enforced() {
        let good = "\
# TYPE lat histogram\n\
lat_bucket{le=\"1\"} 3\n\
lat_bucket{le=\"2\"} 5\n\
lat_bucket{le=\"+Inf\"} 7\n\
lat_sum 40\n\
lat_count 7\n";
        let exp = parse(good).unwrap();
        validate(&exp).unwrap();

        let non_cumulative = good.replace("lat_bucket{le=\"2\"} 5", "lat_bucket{le=\"2\"} 2");
        assert!(validate(&parse(&non_cumulative).unwrap()).is_err());

        let wrong_count = good.replace("lat_count 7", "lat_count 9");
        assert!(validate(&parse(&wrong_count).unwrap()).is_err());

        let no_inf = "\
# TYPE lat histogram\n\
lat_bucket{le=\"1\"} 3\n\
lat_count 3\n";
        assert!(validate(&parse(no_inf).unwrap()).is_err());
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("bad name 1\nx").is_err());
        assert!(parse("metric{label=unquoted} 1\n").is_err());
        assert!(parse("metric{l=\"v\" 1\n").is_err());
        assert!(parse("metric notanumber\n").is_err());
        assert!(parse("# TYPE m bogus_type\nm 1\n").is_err());
        assert!(parse("9leading_digit 1\n").is_err());
    }

    #[test]
    fn untyped_series_fail_validation() {
        let exp = parse("mystery 4\n").unwrap();
        assert!(validate(&exp).is_err());
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let exp = parse("# TYPE m counter\nm{p=\"a\\\"b\\\\c\\nd\"} 1\n").unwrap();
        assert_eq!(exp.series[0].label("p"), Some("a\"b\\c\nd"));
    }
}
