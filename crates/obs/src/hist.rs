//! Atomic log2-bucketed histogram.
//!
//! The bucket for a value `n` is its bit length: bucket 0 holds exactly the
//! value 0, bucket `b ≥ 1` holds the half-open range `[2^(b-1), 2^b)`, and
//! bucket 64 holds everything from `2^63` up to and including `u64::MAX`.
//! Recording is a handful of relaxed atomic RMWs — no lock, no allocation —
//! so the type is safe on a per-batch serving hot path. Quantiles are
//! computed from the bucket counts at snapshot time; the estimate for a
//! quantile always lands in the same bucket as the true (sorted-reference)
//! value, so the error is bounded by one bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero, one per bit length 1..=64.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise the value's bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Largest value a bucket can hold (inclusive). This is the `le` bound the
/// Prometheus exposition uses for the bucket.
#[inline]
pub fn bucket_upper_inclusive(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        1..=63 => (1u64 << bucket) - 1,
        _ => u64::MAX,
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples.
///
/// ```
/// use hdhash_obs::LogHistogram;
/// let h = LogHistogram::new();
/// for v in [3, 5, 90, 7] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.max, 90);
/// assert_eq!(snap.quantile(1.0), Some(90));
/// ```
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free; safe from any number of threads.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow would need ~584 years of nanoseconds,
        // but a stuck clock shouldn't wrap the mean into nonsense either.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match self.sum.compare_exchange_weak(
                sum,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and extrema.
    ///
    /// Concurrent `record` calls may straddle the snapshot (a racing sample
    /// can appear in `count` but not yet in a bucket, or vice versa); each
    /// field is individually consistent, which is all quantile estimation
    /// needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Reset every bucket and the extrema to the empty state.
    ///
    /// Not atomic with respect to concurrent `record`s — intended for
    /// between-phase resets in benchmarks and tests.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of a [`LogHistogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample seen (0 when empty).
    pub min: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, min: 0, max: 0 }
    }

    /// Nearest-rank quantile estimate, or `None` when the histogram is
    /// empty. `q` is clamped to `[0, 1]`.
    ///
    /// The estimate is the containing bucket's inclusive upper bound,
    /// clamped into `[min, max]` — it therefore lies in the same bucket as
    /// the true nearest-rank value, bounding the error to one bucket width,
    /// and is *exact* for a single sample, for all-equal samples, and for
    /// `q = 1` (which always returns `max`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank: the k-th smallest sample, k = ceil(q·count), at
        // least 1 so q=0 means the minimum.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(bucket_upper_inclusive(b).clamp(self.min, self.max));
            }
        }
        // Unreachable when the bucket counts agree with `count`; under a
        // racing snapshot fall back to the observed maximum.
        Some(self.max)
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The samples recorded between an `earlier` snapshot of the *same*
    /// histogram and this one — the per-phase delta the scenario engine
    /// reports.
    ///
    /// Bucket counts, `count` and `sum` subtract exactly (saturating, so a
    /// racing snapshot cannot underflow). Extrema are not recoverable from
    /// cumulative state: the delta's `min`/`max` are this snapshot's,
    /// which bound (but may widen) the true phase extrema. Quantiles stay
    /// bucket-accurate because they derive from the subtracted counts.
    ///
    /// ```
    /// use hdhash_obs::LogHistogram;
    /// let h = LogHistogram::new();
    /// h.record(5);
    /// let phase1 = h.snapshot();
    /// h.record(5000);
    /// let delta = h.snapshot().delta_since(&phase1);
    /// assert_eq!(delta.count, 1);
    /// assert_eq!(delta.quantile(0.5), Some(5000));
    /// ```
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        let buckets =
            std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i]));
        let count = self.count.saturating_sub(earlier.count);
        Self {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: if count == 0 { 0 } else { self.min },
            max: if count == 0 { 0 } else { self.max },
        }
    }

    /// Pointwise sum of two snapshots (e.g. aggregating per-shard
    /// histograms into an engine-wide one). Extrema combine exactly; the
    /// sum saturates like recording does.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let buckets = std::array::from_fn(|i| self.buckets[i] + other.buckets[i]);
        let count = self.count + other.count;
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        Self {
            buckets,
            count,
            sum: self.sum.saturating_add(other.sum),
            min,
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_inclusive(b)), b, "upper of bucket {b}");
        }
        for b in 1..BUCKETS {
            assert_eq!(bucket_index(1u64 << (b - 1)), b, "lower of bucket {b}");
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        for v in [0u64, 1, 7, 4096, u64::MAX] {
            let h = LogHistogram::new();
            h.record(v);
            let snap = h.snapshot();
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(snap.quantile(q), Some(v), "v={v} q={q}");
            }
            assert_eq!(snap.min, v);
            assert_eq!(snap.max, v);
        }
    }

    #[test]
    fn all_equal_samples_are_exact() {
        let h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(12_345);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), Some(12_345));
        assert_eq!(snap.quantile(0.99), Some(12_345));
        assert_eq!(snap.mean(), 12_345.0);
    }

    #[test]
    fn max_quantile_is_always_the_maximum() {
        let h = LogHistogram::new();
        for v in [1u64, 100, 17, 9_999_999] {
            h.record(v);
        }
        assert_eq!(h.snapshot().quantile(1.0), Some(9_999_999));
    }

    /// The nearest-rank reference value from a sorted copy of the samples.
    fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Quantile accuracy against a sorted reference: the estimate lands
        /// in the same log2 bucket as the true value, so the absolute error
        /// is below that bucket's width.
        #[test]
        fn quantile_error_is_within_one_bucket(
            samples in prop::collection::vec(any::<u64>(), 1..200),
            q_mille in 0u64..=1000,
        ) {
            let q = q_mille as f64 / 1000.0;
            let h = LogHistogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let truth = reference_quantile(&sorted, q);
            let est = h.snapshot().quantile(q).expect("non-empty");
            prop_assert_eq!(
                bucket_index(est), bucket_index(truth),
                "estimate {} vs truth {}", est, truth
            );
            let b = bucket_index(truth);
            // Bucket width: bucket 0 is the single value 0; bucket b ≥ 1
            // spans 2^(b-1) values (bucket 64 spans 2^63).
            let width = if b == 0 { 1 } else { 1u64 << (b - 1).min(63) };
            prop_assert!(
                est.abs_diff(truth) < width,
                "error {} ≥ bucket width {}", est.abs_diff(truth), width
            );
        }

        /// Latency-shaped samples (microseconds): p50/p90/p99 all bounded.
        #[test]
        fn latency_quantiles_bounded(
            samples in prop::collection::vec(1u64..5_000_000, 1..400),
        ) {
            let h = LogHistogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let snap = h.snapshot();
            for q in [0.5, 0.9, 0.99] {
                let truth = reference_quantile(&sorted, q);
                let est = snap.quantile(q).expect("non-empty");
                prop_assert_eq!(bucket_index(est), bucket_index(truth));
            }
            prop_assert_eq!(snap.quantile(1.0), Some(*sorted.last().unwrap()));
            prop_assert_eq!(snap.min, sorted[0]);
            prop_assert_eq!(snap.count, samples.len() as u64);
        }
    }

    #[test]
    fn concurrent_records_reconcile() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 40_000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 39_999);
        // Sum of 0..40_000 regardless of interleaving.
        assert_eq!(snap.sum, 39_999 * 40_000 / 2);
    }

    #[test]
    fn reset_returns_to_empty() {
        let h = LogHistogram::new();
        h.record(99);
        h.reset();
        let snap = h.snapshot();
        assert_eq!(snap, HistogramSnapshot::empty());
    }

    #[test]
    fn delta_isolates_a_phase() {
        let h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let phase1 = h.snapshot();
        for v in [1_000u64, 2_000, 4_000, 8_000] {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&phase1);
        assert_eq!(delta.count, 4);
        assert_eq!(delta.sum, 15_000);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 4);
        // Every delta sample is ≥ 1000, so the median estimate must be too.
        assert!(delta.quantile(0.5).expect("non-empty") >= 1_000);
        // Empty delta collapses to the empty snapshot.
        let same = h.snapshot();
        assert_eq!(same.delta_since(&same), HistogramSnapshot::empty());
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        a.record(500);
        b.record(50_000);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 50_505);
        assert_eq!(merged.min, 5);
        assert_eq!(merged.max, 50_000);
        assert_eq!(merged.quantile(1.0), Some(50_000));
        // Merging with empty is the identity.
        assert_eq!(merged.merge(&HistogramSnapshot::empty()), merged);
        assert_eq!(HistogramSnapshot::empty().merge(&merged), merged);
    }

    proptest! {
        /// delta_since(earlier) then merge(earlier) round-trips the
        /// cumulative counts.
        #[test]
        fn delta_and_merge_round_trip(
            first in prop::collection::vec(any::<u64>(), 1..100),
            second in prop::collection::vec(any::<u64>(), 1..100),
        ) {
            let h = LogHistogram::new();
            for &v in &first {
                h.record(v);
            }
            let early = h.snapshot();
            for &v in &second {
                h.record(v);
            }
            let late = h.snapshot();
            let delta = late.delta_since(&early);
            prop_assert_eq!(delta.count, second.len() as u64);
            let rebuilt = early.merge(&delta);
            prop_assert_eq!(rebuilt.buckets, late.buckets);
            prop_assert_eq!(rebuilt.count, late.count);
            prop_assert_eq!(rebuilt.sum, late.sum);
        }
    }
}
