//! A minimal recursive-descent JSON parser, vendored so CI can validate
//! the crate's own JSON exports offline (no serde_json in the build
//! environment). Accepts standard JSON; numbers parse to `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps key order deterministic for tests.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, however many bytes it spans.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}, "f": []}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()), Some(3));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("f").unwrap().as_arr().map(|a| a.len()), Some(0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#""open"#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }
}
