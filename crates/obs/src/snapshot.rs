//! The unified telemetry snapshot and its exporters.
//!
//! A [`TelemetrySnapshot`] is an ordered list of named samples — counters,
//! gauges, and histogram states, optionally labeled — that any subsystem
//! can append to. One snapshot describes the whole process (engine +
//! gossip + TCP + chaos), and both exporters render from the same list:
//! [`TelemetrySnapshot::to_prometheus`] emits text exposition format and
//! [`TelemetrySnapshot::to_json`] a machine-readable JSON document.

use std::fmt::Write;

use crate::hist::{bucket_upper_inclusive, HistogramSnapshot};

/// The exposition type of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log2-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A sample's value: scalar for counters/gauges, full bucket state for
/// histograms.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter or gauge reading.
    Number(f64),
    /// Histogram state; quantiles derive from it at export time.
    /// Boxed: the bucket array dwarfs the scalar variant.
    Histogram(Box<HistogramSnapshot>),
}

/// One named, optionally labeled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Series name, e.g. `hdhash_engine_served_total`.
    pub name: String,
    /// Human description for `# HELP`.
    pub help: String,
    /// Exposition type.
    pub kind: MetricKind,
    /// Label pairs, e.g. `[("shard", "0")]`.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: MetricValue,
}

/// An ordered collection of samples covering the whole process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    samples: Vec<MetricSample>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append a counter sample.
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, MetricKind::Counter, labels, MetricValue::Number(value as f64));
    }

    /// Append a gauge sample.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, MetricKind::Gauge, labels, MetricValue::Number(value));
    }

    /// Append a histogram sample.
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        state: HistogramSnapshot,
    ) {
        self.push(
            name,
            help,
            MetricKind::Histogram,
            labels,
            MetricValue::Histogram(Box::new(state)),
        );
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            value,
        });
    }

    /// The scalar value of the first sample named `name` (any labels).
    pub fn get(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| match &s.value {
            MetricValue::Number(n) => Some(*n),
            MetricValue::Histogram(_) => None,
        })
    }

    /// The scalar value of the sample matching `name` and every label pair.
    pub fn get_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels.iter().all(|(k, v)| {
                        s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                    })
            })
            .and_then(|s| match &s.value {
                MetricValue::Number(n) => Some(*n),
                MetricValue::Histogram(_) => None,
            })
    }

    /// Sum of every scalar sample named `name` across label sets.
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                MetricValue::Number(n) => Some(*n),
                MetricValue::Histogram(_) => None,
            })
            .sum()
    }

    /// The histogram state of the first sample named `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| match &s.value {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            MetricValue::Number(_) => None,
        })
    }

    /// Render as Prometheus text exposition format.
    ///
    /// `# HELP` / `# TYPE` are emitted once per name (first occurrence
    /// wins); histograms expand to cumulative `_bucket{le=…}` series plus
    /// `_sum` and `_count`. The output parses and validates with this
    /// crate's own [`promparse`](crate::promparse) module — CI depends on
    /// that round trip.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 64);
        let mut declared: Vec<&str> = Vec::new();
        for first in &self.samples {
            if declared.contains(&first.name.as_str()) {
                continue;
            }
            declared.push(&first.name);
            if !first.help.is_empty() {
                writeln!(out, "# HELP {} {}", first.name, first.help).expect("write to String");
            }
            writeln!(out, "# TYPE {} {}", first.name, first.kind.name()).expect("write to String");
            for s in self.samples.iter().filter(|s| s.name == first.name) {
                match &s.value {
                    MetricValue::Number(n) => {
                        writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), fmt_num(*n))
                            .expect("write to String");
                    }
                    MetricValue::Histogram(h) => render_histogram(&mut out, s, h),
                }
            }
        }
        out
    }

    /// Render as a single JSON document (`{"samples": [...]}`), parseable
    /// by [`jsonlite`](crate::jsonlite). Histogram samples carry count /
    /// sum / min / max and derived p50 / p90 / p99.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 96 + 16);
        out.push_str("{\"samples\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{{",
                escape_json(&s.name),
                s.kind.name()
            )
            .expect("write to String");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v))
                    .expect("write to String");
            }
            out.push_str("},");
            match &s.value {
                MetricValue::Number(n) => {
                    write!(out, "\"value\":{}", fmt_num(*n)).expect("write to String");
                }
                MetricValue::Histogram(h) => {
                    write!(
                        out,
                        "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.quantile(0.50).unwrap_or(0),
                        h.quantile(0.90).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                    )
                    .expect("write to String");
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Render a label set, optionally with an extra `le` pair appended.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{k}=\"{}\"", escape_label(v)).expect("write to String");
    }
    if let Some(bound) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        write!(out, "le=\"{bound}\"").expect("write to String");
    }
    out.push('}');
    out
}

fn render_histogram(out: &mut String, s: &MetricSample, h: &HistogramSnapshot) {
    let mut cum = 0u64;
    for (b, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cum += n;
        let bound = bucket_upper_inclusive(b).to_string();
        writeln!(out, "{}_bucket{} {}", s.name, render_labels(&s.labels, Some(&bound)), cum)
            .expect("write to String");
    }
    writeln!(out, "{}_bucket{} {}", s.name, render_labels(&s.labels, Some("+Inf")), h.count)
        .expect("write to String");
    writeln!(out, "{}_sum{} {}", s.name, render_labels(&s.labels, None), h.sum)
        .expect("write to String");
    writeln!(out, "{}_count{} {}", s.name, render_labels(&s.labels, None), h.count)
        .expect("write to String");
}

/// Print scalars the way the exposition format expects: integers without a
/// fractional part, everything else via `f64` Display.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;
    use crate::{jsonlite, promparse};

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        snap.push_counter("hdhash_served_total", "Requests served.", &[("shard", "0")], 10);
        snap.push_counter("hdhash_served_total", "Requests served.", &[("shard", "1")], 32);
        snap.push_gauge("hdhash_queue_depth", "Jobs queued.", &[], 5.0);
        let h = LogHistogram::new();
        for v in [100u64, 200, 300, 5000] {
            h.record(v);
        }
        snap.push_histogram("hdhash_latency_us", "Request latency (µs).", &[], h.snapshot());
        snap
    }

    #[test]
    fn accessors_find_samples() {
        let snap = sample_snapshot();
        assert_eq!(snap.get("hdhash_served_total"), Some(10.0));
        assert_eq!(snap.get_labeled("hdhash_served_total", &[("shard", "1")]), Some(32.0));
        assert_eq!(snap.total("hdhash_served_total"), 42.0);
        assert_eq!(snap.get("hdhash_queue_depth"), Some(5.0));
        assert_eq!(snap.histogram("hdhash_latency_us").map(|h| h.count), Some(4));
        assert_eq!(snap.get("missing"), None);
        assert_eq!(snap.len(), 4);
    }

    #[test]
    fn prometheus_roundtrips_through_vendored_parser() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        let parsed = promparse::parse(&text).expect("own output parses");
        promparse::validate(&parsed).expect("own output validates");
        assert_eq!(parsed.types["hdhash_served_total"], "counter");
        assert_eq!(parsed.types["hdhash_latency_us"], "histogram");
        let served = parsed.series_named("hdhash_served_total");
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].label("shard"), Some("0"));
        assert_eq!(parsed.value("hdhash_latency_us_count"), Some(4.0));
        assert_eq!(parsed.value("hdhash_latency_us_sum"), Some(5600.0));
        // HELP/TYPE emitted once despite two shard series.
        assert_eq!(text.matches("# TYPE hdhash_served_total").count(), 1);
    }

    #[test]
    fn json_roundtrips_through_vendored_parser() {
        let snap = sample_snapshot();
        let v = jsonlite::parse(&snap.to_json()).expect("own output parses");
        let samples = v.get("samples").and_then(|s| s.as_arr()).expect("samples array");
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].get("name").and_then(|n| n.as_str()), Some("hdhash_served_total"));
        assert_eq!(
            samples[0].get("labels").and_then(|l| l.get("shard")).and_then(|s| s.as_str()),
            Some("0")
        );
        let hist = &samples[3];
        assert_eq!(hist.get("count").and_then(|c| c.as_f64()), Some(4.0));
        assert!(hist.get("p99").and_then(|p| p.as_f64()).is_some());
    }

    #[test]
    fn empty_histogram_exports_cleanly() {
        let mut snap = TelemetrySnapshot::new();
        snap.push_histogram("empty_h", "Nothing yet.", &[], LogHistogram::new().snapshot());
        let parsed = promparse::parse(&snap.to_prometheus()).unwrap();
        promparse::validate(&parsed).unwrap();
        assert_eq!(parsed.value("empty_h_count"), Some(0.0));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = TelemetrySnapshot::new();
        snap.push_counter("m_total", "Weird labels.", &[("path", "a\"b\\c")], 1);
        let parsed = promparse::parse(&snap.to_prometheus()).unwrap();
        assert_eq!(parsed.series[0].label("path"), Some("a\"b\\c"));
    }
}
