//! Unified telemetry for the hdhash workspace.
//!
//! Every layer of the serving system — the batch engine, the gossip
//! protocol, the TCP transport, and the chaos harness — reports through the
//! types in this crate, so one [`TelemetrySnapshot`] describes the whole
//! process and one exporter grammar covers every series.
//!
//! The crate has three parts:
//!
//! * **Metrics** — [`Registry`] hands out named lock-free [`Counter`] /
//!   [`Gauge`] handles and shared [`LogHistogram`]s. The histogram is an
//!   atomic log2-bucketed design: `record` is a couple of `fetch_add`s and
//!   quantiles come from the bucket counts, so there is no lock and no
//!   sample-buffer clone anywhere near a hot path.
//! * **Tracing** — [`Tracer`] samples request-path [`TraceEvent`]s into a
//!   bounded lock-free ring. Overflow is explicit (an `events_dropped`
//!   counter), never blocking. Drained events export as JSON Lines or as
//!   Chrome trace-event JSON for flamegraph viewing.
//! * **Exporters** — [`TelemetrySnapshot`] renders to Prometheus text
//!   exposition ([`TelemetrySnapshot::to_prometheus`]) and JSON
//!   ([`TelemetrySnapshot::to_json`]). The [`promparse`] and [`jsonlite`]
//!   modules vendor offline parsers for both formats so CI can validate
//!   exports without network access, in the same spirit as the
//!   `crates/compat` shims.
//!
//! See `docs/OBSERVABILITY.md` for the metric catalog and trace schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
pub mod jsonlite;
pub mod promparse;
mod registry;
mod snapshot;
mod trace;

pub use hist::{bucket_index, bucket_upper_inclusive, HistogramSnapshot, LogHistogram, BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{MetricKind, MetricSample, MetricValue, TelemetrySnapshot};
pub use trace::{
    chrome_trace, jsonl, SpanKind, TraceConfig, TraceEvent, Tracer, TracerStats,
};
