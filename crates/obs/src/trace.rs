//! Request-path tracing: a bounded lock-free ring of structured span
//! events, sampled at a configurable rate.
//!
//! The ring never blocks a hot path: when it is full, new events are
//! counted in `events_dropped` and discarded whole — an event is either
//! entirely present or entirely absent, never torn. Drained events export
//! as JSON Lines ([`jsonl`]) or Chrome trace-event JSON ([`chrome_trace`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crossbeam::queue::ArrayQueue;

/// Sampling and capacity knobs for a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Disabled tracing costs one branch per submit.
    pub enabled: bool,
    /// Sample one request in every `sample_every` submissions (1 = every
    /// request). Lifecycle events (connections, gossip rounds) are not
    /// request-scoped and are recorded whenever tracing is enabled.
    pub sample_every: u32,
    /// Ring capacity in events; overflow increments `events_dropped`.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { enabled: false, sample_every: 64, ring_capacity: 4096 }
    }
}

impl TraceConfig {
    /// Tracing off (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Tracing on at the given sampling rate, default ring capacity.
    pub fn sampled(sample_every: u32) -> Self {
        Self { enabled: true, sample_every: sample_every.max(1), ..Self::default() }
    }
}

/// What a [`TraceEvent`] describes. Each variant documents how the event's
/// `lane` / `subject` / `amount` fields are used (unused fields are 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A request entered the engine. `subject` = shard index.
    Submit,
    /// A worker popped a batch. `lane` = worker, `subject` = batch length,
    /// `amount` = queue-wait µs of the first sampled job in the batch.
    Pickup,
    /// A work-stealing worker stole jobs. `lane` = thief worker,
    /// `subject` = victim worker, `amount` = jobs moved.
    Steal,
    /// A per-shard group executed against the table. Span: `dur_micros`
    /// covers the lookup. `lane` = worker, `subject` = shard,
    /// `amount` = group size.
    BatchExec,
    /// A sampled request's ticket was filled. `subject` = shard,
    /// `amount` = total submit→fill latency in µs.
    ResponseFill,
    /// One gossip tick ran. Span: `dur_micros` covers the round.
    /// `lane` = replica, `subject` = round number, `amount` = peers
    /// targeted.
    GossipRound,
    /// A sync request was issued. `lane` = replica, `subject` = peer.
    SyncStart,
    /// An expired sync was retransmitted. `lane` = replica,
    /// `subject` = peer, `amount` = attempt number.
    SyncRetry,
    /// A sync response was applied. `lane` = replica, `subject` = peer.
    SyncComplete,
    /// A sync exhausted its retry budget. `lane` = replica,
    /// `subject` = peer, `amount` = attempts spent.
    SyncAbandon,
    /// A fresh outbound connection was established. `lane` = local
    /// replica, `subject` = peer.
    TcpConnect,
    /// An outbound connection was re-established after failure.
    /// `lane` = local replica, `subject` = peer, `amount` = attempt.
    TcpReconnect,
    /// A connection was condemned on a bad frame. `lane` = local replica,
    /// `subject` = peer, `amount` = 0 for a partial frame, 1 for a corrupt
    /// (CRC/garbage) frame.
    TcpCondemn,
    /// An inbound connection was accepted. `lane` = local replica.
    TcpAccept,
}

impl SpanKind {
    /// Every kind, for exhaustive iteration in tests and validators.
    pub const ALL: [SpanKind; 14] = [
        SpanKind::Submit,
        SpanKind::Pickup,
        SpanKind::Steal,
        SpanKind::BatchExec,
        SpanKind::ResponseFill,
        SpanKind::GossipRound,
        SpanKind::SyncStart,
        SpanKind::SyncRetry,
        SpanKind::SyncComplete,
        SpanKind::SyncAbandon,
        SpanKind::TcpConnect,
        SpanKind::TcpReconnect,
        SpanKind::TcpCondemn,
        SpanKind::TcpAccept,
    ];

    /// Stable wire name, used in both JSONL and Chrome exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Submit => "submit",
            SpanKind::Pickup => "pickup",
            SpanKind::Steal => "steal",
            SpanKind::BatchExec => "batch_exec",
            SpanKind::ResponseFill => "response_fill",
            SpanKind::GossipRound => "gossip_round",
            SpanKind::SyncStart => "sync_start",
            SpanKind::SyncRetry => "sync_retry",
            SpanKind::SyncComplete => "sync_complete",
            SpanKind::SyncAbandon => "sync_abandon",
            SpanKind::TcpConnect => "tcp_connect",
            SpanKind::TcpReconnect => "tcp_reconnect",
            SpanKind::TcpCondemn => "tcp_condemn",
            SpanKind::TcpAccept => "tcp_accept",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// One structured trace event. Plain data, `Copy`, moved into and out of
/// the ring whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the tracer's epoch (its construction instant).
    pub ts_micros: u64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_micros: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Nonzero id linking events of one sampled request; 0 for lifecycle
    /// events not tied to a request.
    pub trace_id: u64,
    /// Worker / replica lane (see the [`SpanKind`] variant docs).
    pub lane: u32,
    /// Kind-specific subject (shard, peer, victim, round — see variants).
    pub subject: u64,
    /// Kind-specific magnitude (latency µs, jobs moved, attempt number).
    pub amount: u64,
}

/// Monotone counters describing a tracer's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Events successfully pushed into the ring (drained or still queued).
    pub events_recorded: u64,
    /// Events discarded because the ring was full.
    pub events_dropped: u64,
    /// Requests given a trace id by [`Tracer::sample`].
    pub requests_sampled: u64,
    /// Total requests offered to the sampler.
    pub requests_seen: u64,
}

/// A sampling trace collector over a bounded lock-free ring.
///
/// ```
/// use hdhash_obs::{SpanKind, TraceConfig, Tracer};
/// let t = Tracer::new(TraceConfig::sampled(1));
/// let id = t.sample().expect("1-in-1 sampling");
/// t.record(SpanKind::Submit, id, 0, 2, 0);
/// let events = t.drain();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].kind, SpanKind::Submit);
/// assert_eq!(events[0].trace_id, id);
/// ```
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    epoch: Instant,
    ring: ArrayQueue<TraceEvent>,
    recorded: AtomicU64,
    dropped: AtomicU64,
    sampled: AtomicU64,
    seen: AtomicU64,
    next_id: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            epoch: Instant::now(),
            // A zero-capacity ring is meaningless (ArrayQueue rejects it);
            // a disabled tracer still allocates one slot it never uses.
            ring: ArrayQueue::new(config.ring_capacity.max(1)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            seen: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
        }
    }

    /// A permanently-off tracer; every call is a cheap no-op.
    pub fn disabled() -> Self {
        Self::new(TraceConfig::disabled())
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Whether any event can ever be recorded.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The instant `ts_micros` values are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Sampling decision for a new request: `None` to leave it untraced,
    /// or a fresh nonzero trace id. One fetch_add when disabled-checking
    /// passes; zero work when tracing is off.
    pub fn sample(&self) -> Option<u64> {
        if !self.config.enabled {
            return None;
        }
        let seq = self.seen.fetch_add(1, Ordering::Relaxed);
        if self.config.sample_every > 1 && !seq.is_multiple_of(u64::from(self.config.sample_every)) {
            return None;
        }
        self.sampled.fetch_add(1, Ordering::Relaxed);
        Some(self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Record an instant event (duration 0) stamped now.
    pub fn record(&self, kind: SpanKind, trace_id: u64, lane: u32, subject: u64, amount: u64) {
        if !self.config.enabled {
            return;
        }
        let ts = self.epoch.elapsed().as_micros() as u64;
        self.push(TraceEvent { ts_micros: ts, dur_micros: 0, kind, trace_id, lane, subject, amount });
    }

    /// Record a span that started at `started` and ends now.
    pub fn record_span(
        &self,
        kind: SpanKind,
        trace_id: u64,
        lane: u32,
        subject: u64,
        amount: u64,
        started: Instant,
    ) {
        if !self.config.enabled {
            return;
        }
        let ts = started.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur = started.elapsed().as_micros() as u64;
        self.push(TraceEvent { ts_micros: ts, dur_micros: dur, kind, trace_id, lane, subject, amount });
    }

    fn push(&self, event: TraceEvent) {
        if self.ring.push(event).is_ok() {
            self.recorded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pop every currently-queued event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        while let Some(ev) = self.ring.pop() {
            out.push(ev);
        }
        out
    }

    /// Events currently waiting in the ring.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }

    /// Activity counters (recorded, dropped, sampled, seen).
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            events_recorded: self.recorded.load(Ordering::Relaxed),
            events_dropped: self.dropped.load(Ordering::Relaxed),
            requests_sampled: self.sampled.load(Ordering::Relaxed),
            requests_seen: self.seen.load(Ordering::Relaxed),
        }
    }
}

/// Render events as JSON Lines: one self-contained JSON object per line.
pub fn jsonl(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        writeln!(
            out,
            "{{\"ts_us\":{},\"dur_us\":{},\"kind\":\"{}\",\"trace_id\":{},\"lane\":{},\"subject\":{},\"amount\":{}}}",
            ev.ts_micros, ev.dur_micros, ev.kind.name(), ev.trace_id, ev.lane, ev.subject, ev.amount,
        )
        .expect("write to String");
    }
    out
}

/// Render events as a Chrome trace-event JSON array (load it in
/// `chrome://tracing` or Perfetto). Spans become `ph: "X"` complete events;
/// the lane maps to the thread id so each worker/replica gets a row.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 128 + 2);
    out.push('[');
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"trace_id\":{},\"subject\":{},\"amount\":{}}}}}",
            ev.kind.name(), ev.lane, ev.ts_micros, ev.dur_micros,
            ev.trace_id, ev.subject, ev.amount,
        )
        .expect("write to String");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert_eq!(t.sample(), None);
        t.record(SpanKind::Submit, 1, 0, 0, 0);
        t.record_span(SpanKind::BatchExec, 1, 0, 0, 0, Instant::now());
        assert_eq!(t.drain().len(), 0);
        assert_eq!(t.stats(), TracerStats::default());
    }

    #[test]
    fn sampling_rate_is_honored() {
        let t = Tracer::new(TraceConfig::sampled(4));
        let ids: Vec<_> = (0..100).map(|_| t.sample()).collect();
        let hits: Vec<u64> = ids.iter().flatten().copied().collect();
        assert_eq!(hits.len(), 25, "1 in 4 of 100");
        // Ids are distinct and nonzero.
        assert!(hits.iter().all(|&id| id != 0));
        let unique: std::collections::BTreeSet<_> = hits.iter().collect();
        assert_eq!(unique.len(), hits.len());
        let stats = t.stats();
        assert_eq!(stats.requests_seen, 100);
        assert_eq!(stats.requests_sampled, 25);
    }

    #[test]
    fn overflow_accounting_is_exact() {
        let config = TraceConfig { enabled: true, sample_every: 1, ring_capacity: 8 };
        let t = Tracer::new(config);
        for i in 0..30u64 {
            t.record(SpanKind::Submit, i + 1, 0, i, 0);
        }
        let stats = t.stats();
        assert_eq!(stats.events_recorded, 8);
        assert_eq!(stats.events_dropped, 22);
        let drained = t.drain();
        assert_eq!(drained.len(), 8);
        // Oldest events survive (drop-newest ring): ids 1..=8 in order.
        for (i, ev) in drained.iter().enumerate() {
            assert_eq!(ev.trace_id, i as u64 + 1);
        }
        // Drained + dropped == offered.
        assert_eq!(stats.events_recorded + stats.events_dropped, 30);
    }

    /// Multithreaded overfill: every drained event is internally consistent
    /// (all fields derived from the same id), and recorded + dropped
    /// exactly equals the number of pushes attempted.
    #[test]
    fn overflow_under_contention_never_tears_events() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        let config = TraceConfig { enabled: true, sample_every: 1, ring_capacity: 64 };
        let t = Arc::new(Tracer::new(config));
        let workers: Vec<_> = (0..THREADS)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let id = w * PER_THREAD + i + 1;
                        // Every field is a fixed function of the id; a torn
                        // event would break the invariant.
                        t.record(SpanKind::Submit, id, (id % 7) as u32, id * 3, id ^ 0xABCD);
                    }
                })
            })
            .collect();
        // Concurrent drainer, racing the producers.
        let drainer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..200 {
                    seen.extend(t.drain());
                    std::thread::yield_now();
                }
                seen
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        let mut events = drainer.join().unwrap();
        events.extend(t.drain());
        for ev in &events {
            let id = ev.trace_id;
            assert_eq!(ev.lane, (id % 7) as u32, "torn lane for id {id}");
            assert_eq!(ev.subject, id * 3, "torn subject for id {id}");
            assert_eq!(ev.amount, id ^ 0xABCD, "torn amount for id {id}");
        }
        let stats = t.stats();
        assert_eq!(stats.events_recorded + stats.events_dropped, THREADS * PER_THREAD);
        assert_eq!(events.len() as u64, stats.events_recorded);
        assert!(stats.events_dropped > 0, "test must actually overflow");
    }

    #[test]
    fn span_kinds_roundtrip_names() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::parse("bogus"), None);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let t = Tracer::new(TraceConfig::sampled(1));
        let id = t.sample().unwrap();
        t.record(SpanKind::Submit, id, 0, 3, 0);
        t.record_span(SpanKind::BatchExec, id, 2, 3, 5, Instant::now());
        let text = jsonl(&t.drain());
        let mut kinds = Vec::new();
        for line in text.lines() {
            let v = crate::jsonlite::parse(line).expect("line parses");
            let kind = v.get("kind").and_then(|k| k.as_str()).expect("kind field");
            assert!(SpanKind::parse(kind).is_some(), "unknown kind {kind}");
            kinds.push(kind.to_string());
            assert!(v.get("ts_us").and_then(|x| x.as_f64()).is_some());
            assert!(v.get("trace_id").and_then(|x| x.as_f64()).is_some());
        }
        assert_eq!(kinds, ["submit", "batch_exec"]);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let t = Tracer::new(TraceConfig::sampled(1));
        let id = t.sample().unwrap();
        t.record_span(SpanKind::GossipRound, id, 1, 9, 2, Instant::now());
        let text = chrome_trace(&t.drain());
        let v = crate::jsonlite::parse(&text).expect("chrome trace parses");
        let arr = v.as_arr().expect("top-level array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("ph").and_then(|x| x.as_str()), Some("X"));
        assert_eq!(arr[0].get("name").and_then(|x| x.as_str()), Some("gossip_round"));
        assert_eq!(chrome_trace(&[]), "[]");
    }
}
