//! The classic highest-random-weight table.

use hdhash_hashfn::{mix64, Hasher64, SplitMix64, XxHash64};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId, TableError};

/// Rendezvous (HRW) hashing: `argmax_s h(s, r)`.
///
/// The table stores, for each live server, a 64-bit *pre-hash* of its
/// identifier. A lookup mixes the request's own hash with every stored
/// pre-hash through a strong finalizer and returns the server with the
/// maximum combined weight — `O(n)` per lookup, as the paper measures in
/// Figure 4.
///
/// ## Noise model
///
/// The stored pre-hash words are the vulnerable state surface. One
/// corrupted word re-randomizes that server's weight for *every* request:
/// the server loses the ~`1/n` of requests it used to win and wins a fresh
/// ~`1/n` elsewhere, so each corrupted word mismatches ≈ `2/n` of traffic.
///
/// # Examples
///
/// ```
/// use hdhash_rendezvous::RendezvousTable;
/// use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
///
/// let mut table = RendezvousTable::new();
/// table.join(ServerId::new(1))?;
/// table.join(ServerId::new(2))?;
/// let owner = table.lookup(RequestKey::new(5))?;
/// assert!(table.contains(owner));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
pub struct RendezvousTable {
    hasher: Box<dyn Hasher64>,
    /// `(server, stored pre-hash)` — the pre-hash is the noise surface.
    entries: Vec<(ServerId, u64)>,
}

impl RendezvousTable {
    /// Creates an empty table with the default hash function (XXH64).
    #[must_use]
    pub fn new() -> Self {
        Self::with_hasher(Box::new(XxHash64::with_seed(0)))
    }

    /// Creates an empty table with an explicit hash function.
    #[must_use]
    pub fn with_hasher(hasher: Box<dyn Hasher64>) -> Self {
        Self { hasher, entries: Vec::new() }
    }

    fn prehash(&self, server: ServerId) -> u64 {
        self.hasher.hash_bytes(&server.to_bytes())
    }

    /// The combined weight `h(s, r)` from a stored pre-hash and a request
    /// hash — the standard mix-finalizer pair construction.
    #[inline]
    fn weight(server_prehash: u64, request_hash: u64) -> u64 {
        mix64(server_prehash ^ request_hash.rotate_left(32))
    }
}

impl Default for RendezvousTable {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for RendezvousTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RendezvousTable").field("servers", &self.entries.len()).finish()
    }
}

impl DynamicHashTable for RendezvousTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        if self.entries.iter().any(|&(s, _)| s == server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        let pre = self.prehash(server);
        self.entries.push((server, pre));
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .entries
            .iter()
            .position(|&(s, _)| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        self.entries.remove(idx);
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        let request_hash = self.hasher.hash_bytes(&request.to_bytes());
        self.entries
            .iter()
            .max_by_key(|&&(s, pre)| (Self::weight(pre, request_hash), s.get()))
            .map(|&(s, _)| s)
            .ok_or(TableError::EmptyPool)
    }

    fn server_count(&self) -> usize {
        self.entries.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.entries.iter().map(|&(s, _)| s).collect()
    }

    fn algorithm_name(&self) -> &'static str {
        "rendezvous"
    }
}

impl NoisyTable for RendezvousTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.noise_surface_bits() as u64;
        for _ in 0..count {
            let bit = rng.next_below(surface) as usize;
            self.entries[bit / 64].1 ^= 1u64 << (bit % 64);
        }
        count
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        if self.entries.is_empty() || length == 0 {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.noise_surface_bits();
        let start = rng.next_below(surface as u64) as usize;
        let end = (start + length).min(surface);
        for bit in start..end {
            self.entries[bit / 64].1 ^= 1u64 << (bit % 64);
        }
        end - start
    }

    fn clear_noise(&mut self) {
        for i in 0..self.entries.len() {
            let server = self.entries[i].0;
            self.entries[i].1 = self.prehash(server);
        }
    }

    fn noise_surface_bits(&self) -> usize {
        self.entries.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::{remap_fraction, Assignment};

    fn filled(n: u64) -> RendezvousTable {
        let mut t = RendezvousTable::new();
        for i in 0..n {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    fn keys(n: u64) -> Vec<RequestKey> {
        (0..n).map(RequestKey::new).collect()
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut t = RendezvousTable::new();
        assert_eq!(t.lookup(RequestKey::new(0)), Err(TableError::EmptyPool));
        t.join(ServerId::new(4)).expect("fresh");
        assert_eq!(
            t.join(ServerId::new(4)),
            Err(TableError::ServerAlreadyPresent(ServerId::new(4)))
        );
        assert_eq!(t.lookup(RequestKey::new(0)).expect("non-empty"), ServerId::new(4));
        t.leave(ServerId::new(4)).expect("present");
        assert_eq!(t.leave(ServerId::new(4)), Err(TableError::ServerNotFound(ServerId::new(4))));
    }

    #[test]
    fn distribution_is_very_uniform() {
        // HRW's hallmark: per-server counts are pseudo-random uniform.
        let t = filled(16);
        let loads =
            Assignment::capture(&t, keys(32_000)).expect("non-empty").load_by_server();
        let expected = 32_000 / 16;
        for (&s, &load) in &loads {
            let dev = (load as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.15, "{s} load {load} deviates {dev}");
        }
    }

    #[test]
    fn minimal_disruption_on_leave() {
        let mut t = filled(32);
        let before = Assignment::capture(&t, keys(4000)).expect("non-empty");
        let victim = ServerId::new(7);
        t.leave(victim).expect("present");
        let after = Assignment::capture(&t, keys(4000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            if s_before != victim {
                assert_eq!(after.server_of(r), Some(s_before));
            }
        }
    }

    #[test]
    fn minimal_disruption_on_join() {
        let mut t = filled(32);
        let before = Assignment::capture(&t, keys(4000)).expect("non-empty");
        let newcomer = ServerId::new(1000);
        t.join(newcomer).expect("fresh");
        let after = Assignment::capture(&t, keys(4000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            let s_after = after.server_of(r).expect("captured");
            assert!(s_after == s_before || s_after == newcomer);
        }
        let moved = remap_fraction(&before, &after);
        assert!((0.005..0.10).contains(&moved), "expected ~1/33 moved, got {moved}");
    }

    #[test]
    fn noise_mismatch_is_mild_and_restorable() {
        let n = 128;
        let mut t = filled(n);
        let reference = Assignment::capture(&t, keys(5000)).expect("non-empty");
        t.inject_bit_flips(10, 77);
        let noisy = Assignment::capture(&t, keys(5000)).expect("non-empty");
        let frac = remap_fraction(&reference, &noisy);
        // ~≤ 2 · flips / n with slack; an order-of-magnitude envelope.
        assert!(frac > 0.0, "ten corrupted pre-hash words must move something");
        assert!(frac < 4.0 * 10.0 / n as f64, "mismatch too large: {frac}");
        t.clear_noise();
        let restored = Assignment::capture(&t, keys(5000)).expect("non-empty");
        assert_eq!(remap_fraction(&reference, &restored), 0.0);
    }

    #[test]
    fn noise_surface_and_edge_cases() {
        let t = filled(4);
        assert_eq!(t.noise_surface_bits(), 256);
        let mut empty = RendezvousTable::new();
        assert_eq!(empty.inject_bit_flips(3, 0), 0);
        assert_eq!(empty.inject_burst(3, 0), 0);
        let mut t = filled(2);
        assert_eq!(t.inject_burst(0, 1), 0);
        assert!(t.inject_burst(100, 1) <= 100);
    }

    #[test]
    fn lookup_deterministic() {
        let t = filled(64);
        for k in 0..500u64 {
            assert_eq!(
                t.lookup(RequestKey::new(k)).expect("non-empty"),
                t.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    #[test]
    fn debug_output() {
        assert!(format!("{:?}", filled(2)).contains("servers: 2"));
    }
}
