//! # hdhash-rendezvous — rendezvous (highest random weight) hashing
//!
//! Rendezvous hashing (Thaler & Ravishankar, 1998) assigns request `r` to
//! `argmax_{s ∈ S} h(s, r)`: each lookup scores every server against the
//! request and takes the maximum, giving `O(n)` lookups but perfectly
//! uniform (pseudo-random) distribution and minimal disruption on
//! membership change — when a server leaves, only the requests it was
//! winning move (to their runner-up).
//!
//! This crate provides:
//!
//! * [`RendezvousTable`] — the classic HRW table;
//! * [`WeightedRendezvousTable`] — the logarithmic-method weighted variant
//!   for heterogeneous server capacities;
//! * a [`NoisyTable`](hdhash_table::NoisyTable) implementation whose
//!   vulnerable state surface is the *stored per-server pre-hash words*:
//!   corrupting one changes all of that server's weights, so it loses its
//!   won set (~1/n of requests) and steals roughly as much elsewhere —
//!   ≈ 2/n mismatch per corrupted word, the mild degradation the paper
//!   reports in Figure 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hrw;
pub mod weighted;

pub use hrw::RendezvousTable;
pub use weighted::WeightedRendezvousTable;
