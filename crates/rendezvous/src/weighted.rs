//! Weighted rendezvous hashing via the logarithmic method.
//!
//! For heterogeneous capacities, the logarithmic method scores each server
//! as `-w_s / ln(u)` where `u ∈ (0, 1)` is the uniform variate derived from
//! `h(s, r)` and `w_s` is the server's weight. The winning probability of
//! each server is then exactly proportional to its weight — a standard
//! extension of HRW used by real deployments (e.g. weighted cache pools).

use std::collections::HashMap;

use hdhash_hashfn::{mix64, Hasher64, XxHash64};
use hdhash_table::{RequestKey, ServerId, TableError};

/// Rendezvous hashing with per-server weights.
///
/// # Examples
///
/// ```
/// use hdhash_rendezvous::WeightedRendezvousTable;
/// use hdhash_table::{RequestKey, ServerId};
///
/// let mut table = WeightedRendezvousTable::new();
/// table.join(ServerId::new(1), 1.0)?;
/// table.join(ServerId::new(2), 3.0)?; // 3× the capacity
/// let owner = table.lookup(RequestKey::new(9))?;
/// assert!(owner == ServerId::new(1) || owner == ServerId::new(2));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
pub struct WeightedRendezvousTable {
    hasher: Box<dyn Hasher64>,
    entries: Vec<(ServerId, u64, f64)>,
}

impl WeightedRendezvousTable {
    /// Creates an empty weighted table with the default hash function.
    #[must_use]
    pub fn new() -> Self {
        Self { hasher: Box::new(XxHash64::with_seed(0)), entries: Vec::new() }
    }

    /// Adds a server with a positive capacity weight.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ServerAlreadyPresent`] on duplicate joins.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn join(&mut self, server: ServerId, weight: f64) -> Result<(), TableError> {
        assert!(weight.is_finite() && weight > 0.0, "weight must be positive");
        if self.entries.iter().any(|&(s, _, _)| s == server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        let pre = self.hasher.hash_bytes(&server.to_bytes());
        self.entries.push((server, pre, weight));
        Ok(())
    }

    /// Removes a server.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ServerNotFound`] if absent.
    pub fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .entries
            .iter()
            .position(|&(s, _, _)| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        self.entries.remove(idx);
        Ok(())
    }

    /// Maps a request to a server with probability proportional to weight.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyPool`] when no servers have joined.
    pub fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        let request_hash = self.hasher.hash_bytes(&request.to_bytes());
        self.entries
            .iter()
            .map(|&(s, pre, w)| {
                let mixed = mix64(pre ^ request_hash.rotate_left(32));
                // Map to u ∈ (0, 1); never exactly 0 (add half an ulp step).
                let u = (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let u = u.max(f64::MIN_POSITIVE);
                let score = -w / u.ln();
                (s, score)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores").then(a.0.cmp(&b.0)))
            .map(|(s, _)| s)
            .ok_or(TableError::EmptyPool)
    }

    /// Number of live servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.entries.len()
    }

    /// Observed share of `samples` sequential keys per server — a helper
    /// for validating weight proportionality.
    #[must_use]
    pub fn empirical_shares(&self, samples: u64) -> HashMap<ServerId, f64> {
        let mut counts: HashMap<ServerId, usize> = HashMap::new();
        for k in 0..samples {
            if let Ok(s) = self.lookup(RequestKey::new(k)) {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        counts.into_iter().map(|(s, c)| (s, c as f64 / samples as f64)).collect()
    }
}

impl Default for WeightedRendezvousTable {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for WeightedRendezvousTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WeightedRendezvousTable")
            .field("servers", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_reduce_to_uniform() {
        let mut t = WeightedRendezvousTable::new();
        for i in 0..8 {
            t.join(ServerId::new(i), 1.0).expect("fresh");
        }
        let shares = t.empirical_shares(16_000);
        for (&s, &share) in &shares {
            assert!((share - 0.125).abs() < 0.03, "{s} share {share}");
        }
    }

    #[test]
    fn shares_track_weights() {
        let mut t = WeightedRendezvousTable::new();
        t.join(ServerId::new(1), 1.0).expect("fresh");
        t.join(ServerId::new(2), 3.0).expect("fresh");
        let shares = t.empirical_shares(20_000);
        let s1 = shares.get(&ServerId::new(1)).copied().unwrap_or(0.0);
        let s2 = shares.get(&ServerId::new(2)).copied().unwrap_or(0.0);
        assert!((s1 - 0.25).abs() < 0.03, "share1 {s1}");
        assert!((s2 - 0.75).abs() < 0.03, "share2 {s2}");
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut t = WeightedRendezvousTable::new();
        assert_eq!(t.lookup(RequestKey::new(0)), Err(TableError::EmptyPool));
        t.join(ServerId::new(1), 2.0).expect("fresh");
        assert_eq!(
            t.join(ServerId::new(1), 2.0),
            Err(TableError::ServerAlreadyPresent(ServerId::new(1)))
        );
        t.leave(ServerId::new(1)).expect("present");
        assert_eq!(t.leave(ServerId::new(1)), Err(TableError::ServerNotFound(ServerId::new(1))));
        assert_eq!(t.server_count(), 0);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_panics() {
        let mut t = WeightedRendezvousTable::new();
        let _ = t.join(ServerId::new(1), 0.0);
    }

    #[test]
    fn minimal_disruption_on_leave() {
        let mut t = WeightedRendezvousTable::new();
        for i in 0..10 {
            t.join(ServerId::new(i), 1.0 + i as f64 * 0.2).expect("fresh");
        }
        let before: Vec<(u64, ServerId)> =
            (0..2000).map(|k| (k, t.lookup(RequestKey::new(k)).expect("non-empty"))).collect();
        t.leave(ServerId::new(3)).expect("present");
        for (k, s_before) in before {
            if s_before != ServerId::new(3) {
                assert_eq!(t.lookup(RequestKey::new(k)).expect("non-empty"), s_before);
            }
        }
    }
}
