//! Property-based tests for rendezvous hashing.

use hdhash_rendezvous::{RendezvousTable, WeightedRendezvousTable};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId};
use proptest::prelude::*;

proptest! {
    /// Lookups are total over non-empty pools and always land on members.
    #[test]
    fn lookup_total(
        ids in proptest::collection::hash_set(any::<u64>(), 1..32),
        keys in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut table = RendezvousTable::new();
        for &id in &ids {
            table.join(ServerId::new(id)).expect("distinct ids");
        }
        for &k in &keys {
            let owner = table.lookup(RequestKey::new(k)).expect("non-empty");
            prop_assert!(table.contains(owner));
        }
    }

    /// The defining HRW property: removing any server moves *only* the
    /// requests that server was winning, to their runner-up — for
    /// arbitrary pools.
    #[test]
    fn minimal_disruption_for_any_victim(
        ids in proptest::collection::hash_set(any::<u64>(), 2..24),
        victim_index in any::<prop::sample::Index>(),
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let victim = ids[victim_index.index(ids.len())];
        let mut table = RendezvousTable::new();
        for &id in &ids {
            table.join(ServerId::new(id)).expect("distinct ids");
        }
        let keys: Vec<RequestKey> = (0..300).map(RequestKey::new).collect();
        let before: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        table.leave(ServerId::new(victim)).expect("present");
        for (&k, &owner) in keys.iter().zip(&before) {
            if owner != ServerId::new(victim) {
                prop_assert_eq!(table.lookup(k).expect("non-empty"), owner);
            }
        }
    }

    /// Membership order does not matter: HRW assignment is a pure function
    /// of the member *set*.
    #[test]
    fn order_independence(ids in proptest::collection::hash_set(any::<u64>(), 1..16)) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let mut forward = RendezvousTable::new();
        for &id in &ids {
            forward.join(ServerId::new(id)).expect("distinct");
        }
        let mut backward = RendezvousTable::new();
        for &id in ids.iter().rev() {
            backward.join(ServerId::new(id)).expect("distinct");
        }
        for k in 0..100u64 {
            prop_assert_eq!(
                forward.lookup(RequestKey::new(k)).expect("non-empty"),
                backward.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    /// Noise + clear round-trips for any flip pattern.
    #[test]
    fn noise_roundtrip(flips in 0usize..64, seed in any::<u64>()) {
        let mut table = RendezvousTable::new();
        for i in 0..24u64 {
            table.join(ServerId::new(i)).expect("fresh");
        }
        let keys: Vec<RequestKey> = (0..150).map(RequestKey::new).collect();
        let before: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        table.inject_bit_flips(flips, seed);
        table.clear_noise();
        let after: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        prop_assert_eq!(before, after);
    }

    /// Weighted rendezvous with equal weights ranks identically to the
    /// share each server would get — each server wins something for
    /// modest pools, and every lookup is a member.
    #[test]
    fn weighted_lookup_total(
        ids in proptest::collection::hash_set(0u64..1000, 1..12),
        weights_seed in any::<u64>(),
    ) {
        let mut table = WeightedRendezvousTable::new();
        let mut rng = hdhash_hashfn::SplitMix64::new(weights_seed);
        let ids: Vec<u64> = ids.into_iter().collect();
        for &id in &ids {
            let weight = 0.5 + rng.next_f64() * 4.0;
            table.join(ServerId::new(id), weight).expect("distinct");
        }
        for k in 0..64u64 {
            let owner = table.lookup(RequestKey::new(k)).expect("non-empty");
            prop_assert!(ids.contains(&owner.get()));
        }
    }
}
