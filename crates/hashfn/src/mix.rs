//! Standalone 64-bit integer finalizers ("mixers").
//!
//! A finalizer is a bijective scrambling of a 64-bit word with full
//! avalanche: flipping any input bit flips each output bit with probability
//! ≈ 1/2. Consistent hashing uses a mixer to derive virtual-node positions,
//! rendezvous hashing uses one to combine pre-hashed pairs, and HD hashing
//! uses one to spread codebook indices.

/// The default 64-bit mixer: `moremur` (Pelle Evensen's strengthened
/// MurmurHash3 finalizer).
///
/// ```
/// use hdhash_hashfn::mix64;
/// assert_ne!(mix64(0x1), mix64(0x2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
#[must_use]
pub const fn mix64(x: u64) -> u64 {
    moremur(x)
}

/// Pelle Evensen's `moremur` mixer: two multiply rounds with xor-shifts,
/// measurably stronger avalanche than `fmix64` on low-entropy inputs.
#[inline]
#[must_use]
pub const fn moremur(mut x: u64) -> u64 {
    x ^= x >> 27;
    x = x.wrapping_mul(0x3C79_AC49_2BA7_B653);
    x ^= x >> 33;
    x = x.wrapping_mul(0x1C69_B3F7_4AC4_AE35);
    x ^ (x >> 27)
}

/// The `rrmxmx` mixer (also by Evensen): rotate-rotate-multiply structure,
/// useful as a second independent mixing family.
#[inline]
#[must_use]
pub const fn rrmxmx(mut x: u64) -> u64 {
    x ^= x.rotate_right(49) ^ x.rotate_right(24);
    x = x.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    x ^= x >> 28;
    x = x.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    x ^ (x >> 28)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avalanche_score(f: fn(u64) -> u64, samples: u64) -> f64 {
        // Mean fraction of flipped output bits over single-bit input flips.
        let mut total = 0u64;
        let mut count = 0u64;
        for i in 0..samples {
            let x = crate::splitmix::splitmix64(i);
            let fx = f(x);
            for bit in 0..64 {
                total += u64::from((fx ^ f(x ^ (1 << bit))).count_ones());
                count += 64;
            }
        }
        total as f64 / count as f64
    }

    #[test]
    fn moremur_avalanche_is_near_half() {
        let score = avalanche_score(moremur, 64);
        assert!((score - 0.5).abs() < 0.02, "avalanche {score}");
    }

    #[test]
    fn rrmxmx_avalanche_is_near_half() {
        let score = avalanche_score(rrmxmx, 64);
        assert!((score - 0.5).abs() < 0.02, "avalanche {score}");
    }

    #[test]
    fn mixers_are_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(moremur(i)));
        }
    }

    #[test]
    fn families_are_distinct() {
        for i in [1u64, 2, 3, 1000, u64::MAX] {
            assert_ne!(moremur(i), rrmxmx(i));
        }
    }

    #[test]
    fn mix64_is_moremur() {
        assert_eq!(mix64(12345), moremur(12345));
    }
}
