//! Statistical quality checks for hash functions.
//!
//! The robustness and uniformity experiments (paper Figures 5 and 6) are
//! only meaningful if the underlying `h(·)` behaves like a random oracle.
//! This module provides small, fast estimators — bucket uniformity via a χ²
//! statistic and bitwise avalanche — used both in this crate's test suite
//! and by the `ablation_*` benches to compare hash families.

use crate::traits::Hasher64;

/// Summary of a bucket-uniformity trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityReport {
    /// Number of buckets the outputs were reduced into.
    pub buckets: usize,
    /// Number of hashed samples.
    pub samples: usize,
    /// The Pearson χ² statistic against the uniform expectation.
    pub chi_squared: f64,
    /// Degrees of freedom (`buckets - 1`).
    pub degrees_of_freedom: usize,
}

impl UniformityReport {
    /// A loose acceptance test: χ² within `slack` standard deviations of its
    /// expectation (`k-1` mean, `sqrt(2(k-1))` std for large samples).
    #[must_use]
    pub fn is_plausibly_uniform(&self, slack: f64) -> bool {
        let dof = self.degrees_of_freedom as f64;
        (self.chi_squared - dof).abs() <= slack * (2.0 * dof).sqrt()
    }
}

/// Hashes `samples` sequential keys and measures bucket-count uniformity.
///
/// Sequential keys are the adversarially *regular* input pattern that weak
/// hashes (e.g. truncated multiplicative schemes) fail on, which makes this
/// a discriminating test despite its simplicity.
///
/// # Panics
///
/// Panics if `buckets == 0` or `samples == 0`.
#[must_use]
pub fn sequential_key_uniformity<H: Hasher64 + ?Sized>(
    hasher: &H,
    buckets: usize,
    samples: usize,
) -> UniformityReport {
    assert!(buckets > 0 && samples > 0, "buckets and samples must be positive");
    let mut counts = vec![0u64; buckets];
    for key in 0..samples as u64 {
        let h = hasher.hash_u64(key);
        counts[(h % buckets as u64) as usize] += 1;
    }
    let expected = samples as f64 / buckets as f64;
    let chi_squared = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    UniformityReport {
        buckets,
        samples,
        chi_squared,
        degrees_of_freedom: buckets - 1,
    }
}

/// Estimates the avalanche quality of a hasher on `u64` keys.
///
/// Returns the mean fraction of output bits flipped when a single input bit
/// flips; 0.5 is ideal.
#[must_use]
pub fn avalanche_fraction<H: Hasher64 + ?Sized>(hasher: &H, samples: usize) -> f64 {
    let mut flipped = 0u64;
    let mut total = 0u64;
    for i in 0..samples as u64 {
        let x = crate::splitmix::splitmix64(i);
        let hx = hasher.hash_u64(x);
        for bit in 0..64 {
            flipped += u64::from((hx ^ hasher.hash_u64(x ^ (1 << bit))).count_ones());
            total += 64;
        }
    }
    flipped as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fnv1a64, Murmur3_128, SipHash13, SipHash24, SplitMix64, XxHash64};

    #[test]
    fn strong_hashes_pass_uniformity() {
        let hashers: [&dyn Hasher64; 4] = [
            &XxHash64::new(),
            &Murmur3_128::new(),
            &SipHash24::new(),
            &SipHash13::new(),
        ];
        for h in hashers {
            let report = sequential_key_uniformity(h, 64, 64 * 200);
            assert!(
                report.is_plausibly_uniform(6.0),
                "{} chi2={}",
                h.kind(),
                report.chi_squared
            );
        }
    }

    #[test]
    fn strong_hashes_have_good_avalanche() {
        let hashers: [&dyn Hasher64; 3] =
            [&XxHash64::new(), &Murmur3_128::new(), &SipHash24::new()];
        for h in hashers {
            let a = avalanche_fraction(h, 32);
            assert!((a - 0.5).abs() < 0.03, "{} avalanche {a}", h.kind());
        }
    }

    #[test]
    fn splitmix_stream_hash_is_uniform() {
        let report = sequential_key_uniformity(&SplitMix64::new(1), 32, 32 * 300);
        assert!(report.is_plausibly_uniform(6.0), "chi2={}", report.chi_squared);
    }

    #[test]
    fn fnv_works_but_is_weaker_on_avalanche() {
        // FNV's final byte multiply leaves the low bits under-mixed; we only
        // require it to stay within a generous envelope, documenting that it
        // is the low-quality member of the family.
        let a = avalanche_fraction(&Fnv1a64::new(), 16);
        assert!(a > 0.2, "FNV avalanche collapsed: {a}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_buckets_panics() {
        let _ = sequential_key_uniformity(&XxHash64::new(), 0, 10);
    }

    #[test]
    fn report_acceptance_band() {
        let r = UniformityReport {
            buckets: 65,
            samples: 1000,
            chi_squared: 64.0,
            degrees_of_freedom: 64,
        };
        assert!(r.is_plausibly_uniform(1.0));
        let bad = UniformityReport { chi_squared: 640.0, ..r };
        assert!(!bad.is_plausibly_uniform(6.0));
    }
}
