//! Core hashing traits shared by every algorithm in the workspace.

/// A deterministic function from byte strings to 64-bit words.
///
/// This is the `h(·)` of the paper: all four hashing algorithms (modular,
/// consistent, rendezvous and HD hashing) are parameterized by one. The
/// trait is object-safe so emulator configurations can carry
/// `Box<dyn Hasher64>`.
///
/// # Examples
///
/// ```
/// use hdhash_hashfn::{Hasher64, Fnv1a64};
///
/// let h = Fnv1a64::new();
/// assert_eq!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc"));
/// assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abd"));
/// ```
pub trait Hasher64: Send + Sync {
    /// Hashes a byte string to a 64-bit word.
    fn hash_bytes(&self, bytes: &[u8]) -> u64;

    /// Hashes a `u64` key.
    ///
    /// The default implementation hashes the little-endian encoding of the
    /// key, so `hash_u64(x) == hash_bytes(&x.to_le_bytes())`. Implementations
    /// may override this with a faster fixed-width path as long as that
    /// equation continues to hold.
    fn hash_u64(&self, key: u64) -> u64 {
        self.hash_bytes(&key.to_le_bytes())
    }

    /// Returns a new hasher of the same family re-keyed with `seed`.
    ///
    /// Re-seeding is how consistent hashing derives independent hash
    /// functions for virtual nodes and how rendezvous hashing derives the
    /// pair hash.
    fn reseed(&self, seed: u64) -> Box<dyn Hasher64>;

    /// The family this hasher belongs to, for diagnostics and reports.
    fn kind(&self) -> HashKind;
}

/// Identifies a hash function family.
///
/// ```
/// use hdhash_hashfn::HashKind;
/// assert_eq!(HashKind::XxHash64.to_string(), "xxhash64");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HashKind {
    /// Fowler–Noll–Vo 1a (64-bit).
    Fnv1a64,
    /// XXH64.
    XxHash64,
    /// MurmurHash3 x64/128, low word.
    Murmur3,
    /// SipHash-1-3.
    SipHash13,
    /// SipHash-2-4.
    SipHash24,
    /// SplitMix64 integer mixer.
    SplitMix64,
}

impl core::fmt::Display for HashKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            HashKind::Fnv1a64 => "fnv1a64",
            HashKind::XxHash64 => "xxhash64",
            HashKind::Murmur3 => "murmur3-x64-128",
            HashKind::SipHash13 => "siphash-1-3",
            HashKind::SipHash24 => "siphash-2-4",
            HashKind::SplitMix64 => "splitmix64",
        };
        f.write_str(name)
    }
}

/// Hashes *(server, request)* pairs, as rendezvous hashing requires.
///
/// Rendezvous hashing assigns request `r` to `argmax_s h(s, r)`; the pair
/// hash must behave like an independent random oracle per pair. The blanket
/// implementation for any [`Hasher64`] mixes the two pre-hashed identifiers
/// through a strong 64-bit finalizer, which is the standard construction.
///
/// # Examples
///
/// ```
/// use hdhash_hashfn::{PairHasher, XxHash64};
///
/// let h = XxHash64::with_seed(7);
/// let w1 = h.hash_pair(1, 99);
/// let w2 = h.hash_pair(2, 99);
/// assert_ne!(w1, w2);
/// ```
pub trait PairHasher: Hasher64 {
    /// Hashes the pair `(a, b)` of pre-hashed 64-bit identifiers.
    fn hash_pair(&self, a: u64, b: u64) -> u64 {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&a.to_le_bytes());
        buf[8..].copy_from_slice(&b.to_le_bytes());
        self.hash_bytes(&buf)
    }
}

impl<T: Hasher64 + ?Sized> PairHasher for T {}

impl Hasher64 for Box<dyn Hasher64> {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        (**self).hash_bytes(bytes)
    }

    fn hash_u64(&self, key: u64) -> u64 {
        (**self).hash_u64(key)
    }

    fn reseed(&self, seed: u64) -> Box<dyn Hasher64> {
        (**self).reseed(seed)
    }

    fn kind(&self) -> HashKind {
        (**self).kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fnv1a64, XxHash64};

    #[test]
    fn hash_u64_matches_le_bytes() {
        let h = XxHash64::with_seed(3);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(h.hash_u64(k), h.hash_bytes(&k.to_le_bytes()));
        }
    }

    #[test]
    fn pair_hash_is_order_sensitive() {
        let h = Fnv1a64::new();
        assert_ne!(h.hash_pair(1, 2), h.hash_pair(2, 1));
    }

    #[test]
    fn boxed_hasher_delegates() {
        let h: Box<dyn Hasher64> = Box::new(XxHash64::with_seed(5));
        assert_eq!(h.hash_bytes(b"x"), XxHash64::with_seed(5).hash_bytes(b"x"));
        assert_eq!(h.kind(), HashKind::XxHash64);
        let r = h.reseed(9);
        assert_eq!(r.hash_bytes(b"x"), XxHash64::with_seed(9).hash_bytes(b"x"));
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(HashKind::Fnv1a64.to_string(), "fnv1a64");
        assert_eq!(HashKind::SipHash24.to_string(), "siphash-2-4");
        assert_eq!(HashKind::Murmur3.to_string(), "murmur3-x64-128");
    }

    #[test]
    fn traits_are_object_safe() {
        fn takes(_: &dyn Hasher64) {}
        takes(&Fnv1a64::new());
    }
}
