//! SipHash (Aumasson & Bernstein) with configurable compression/finalization
//! rounds, implemented from the reference specification.
//!
//! SipHash is a keyed pseudo-random function; the 2-4 variant is the
//! original security-oriented parameterization and 1-3 is the faster
//! variant adopted by many hash-table implementations. In this workspace it
//! serves as the "keyed, adversarial-input-safe" option for `h(·)` and as a
//! quality reference in hash ablations.

use crate::traits::{HashKind, Hasher64};

/// Generic SipHash engine over `C` compression and `D` finalization rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Sip<const C: usize, const D: usize> {
    k0: u64,
    k1: u64,
}

impl<const C: usize, const D: usize> Sip<C, D> {
    const fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    #[inline]
    fn sipround(v: &mut [u64; 4]) {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(13);
        v[1] ^= v[0];
        v[0] = v[0].rotate_left(32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(17);
        v[1] ^= v[2];
        v[2] = v[2].rotate_left(32);
    }

    fn hash(&self, data: &[u8]) -> u64 {
        let mut v = [
            self.k0 ^ 0x736F_6D65_7073_6575,
            self.k1 ^ 0x646F_7261_6E64_6F6D,
            self.k0 ^ 0x6C79_6765_6E65_7261,
            self.k1 ^ 0x7465_6462_7974_6573,
        ];

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v[3] ^= m;
            for _ in 0..C {
                Self::sipround(&mut v);
            }
            v[0] ^= m;
        }

        let rest = chunks.remainder();
        let mut b = (data.len() as u64) << 56;
        for (i, &byte) in rest.iter().enumerate() {
            b |= u64::from(byte) << (8 * i);
        }
        v[3] ^= b;
        for _ in 0..C {
            Self::sipround(&mut v);
        }
        v[0] ^= b;

        v[2] ^= 0xFF;
        for _ in 0..D {
            Self::sipround(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }
}

macro_rules! sip_variant {
    ($(#[$doc:meta])* $name:ident, $c:literal, $d:literal, $kind:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name {
            k0: u64,
            k1: u64,
        }

        impl $name {
            /// Creates the hasher with the all-zero key.
            #[must_use]
            pub const fn new() -> Self {
                Self { k0: 0, k1: 0 }
            }

            /// Creates the hasher with an explicit 128-bit key.
            #[must_use]
            pub const fn with_keys(k0: u64, k1: u64) -> Self {
                Self { k0, k1 }
            }
        }

        impl Hasher64 for $name {
            fn hash_bytes(&self, bytes: &[u8]) -> u64 {
                Sip::<$c, $d>::new(self.k0, self.k1).hash(bytes)
            }

            fn reseed(&self, seed: u64) -> Box<dyn Hasher64> {
                let s = crate::splitmix::splitmix64(seed);
                Box::new(Self::with_keys(
                    self.k0 ^ s,
                    self.k1 ^ crate::splitmix::splitmix64(s),
                ))
            }

            fn kind(&self) -> HashKind {
                $kind
            }
        }
    };
}

sip_variant!(
    /// SipHash-1-3: one compression round, three finalization rounds.
    ///
    /// ```
    /// use hdhash_hashfn::{Hasher64, SipHash13};
    /// let h = SipHash13::with_keys(1, 2);
    /// assert_eq!(h.hash_bytes(b"req"), h.hash_bytes(b"req"));
    /// ```
    SipHash13,
    1,
    3,
    HashKind::SipHash13
);

sip_variant!(
    /// SipHash-2-4: the original, security-oriented parameterization.
    ///
    /// ```
    /// use hdhash_hashfn::{Hasher64, SipHash24};
    /// let h = SipHash24::new();
    /// assert_ne!(h.hash_bytes(b"a"), h.hash_bytes(b"b"));
    /// ```
    SipHash24,
    2,
    4,
    HashKind::SipHash24
);

#[cfg(test)]
mod tests {
    use super::*;

    /// The official SipHash-2-4 test vector from the reference paper:
    /// key = 000102…0f, input = 00 01 02 … 3e, checking the first entries
    /// of `vectors_sip64`.
    #[test]
    fn siphash24_reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let h = SipHash24::with_keys(k0, k1);

        let expected: [u64; 8] = [
            u64::from_le_bytes([0x31, 0x0E, 0x0E, 0xDD, 0x47, 0xDB, 0x6F, 0x72]),
            u64::from_le_bytes([0xFD, 0x67, 0xDC, 0x93, 0xC5, 0x39, 0xF8, 0x74]),
            u64::from_le_bytes([0x5A, 0x4F, 0xA9, 0xD9, 0x09, 0x80, 0x6C, 0x0D]),
            u64::from_le_bytes([0x2D, 0x7E, 0xFB, 0xD7, 0x96, 0x66, 0x67, 0x85]),
            u64::from_le_bytes([0xB7, 0x87, 0x71, 0x27, 0xE0, 0x94, 0x27, 0xCF]),
            u64::from_le_bytes([0x8D, 0xA6, 0x99, 0xCD, 0x64, 0x55, 0x76, 0x18]),
            u64::from_le_bytes([0xCE, 0xE3, 0xFE, 0x58, 0x6E, 0x46, 0xC9, 0xCB]),
            u64::from_le_bytes([0x37, 0xD1, 0x01, 0x8B, 0xF5, 0x00, 0x02, 0xAB]),
        ];
        let input: Vec<u8> = (0..8u8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(h.hash_bytes(&input[..len]), *want, "length {len}");
        }
    }

    #[test]
    fn siphash13_differs_from_24() {
        let a = SipHash13::with_keys(1, 2).hash_bytes(b"payload");
        let b = SipHash24::with_keys(1, 2).hash_bytes(b"payload");
        assert_ne!(a, b);
    }

    #[test]
    fn key_sensitivity() {
        let base = SipHash24::with_keys(0, 0).hash_bytes(b"msg");
        assert_ne!(base, SipHash24::with_keys(1, 0).hash_bytes(b"msg"));
        assert_ne!(base, SipHash24::with_keys(0, 1).hash_bytes(b"msg"));
    }

    #[test]
    fn reseed_changes_and_is_stable() {
        let h = SipHash13::new();
        let r1 = h.reseed(42);
        let r2 = h.reseed(42);
        assert_eq!(r1.hash_bytes(b"k"), r2.hash_bytes(b"k"));
        assert_ne!(r1.hash_bytes(b"k"), h.hash_bytes(b"k"));
    }

    #[test]
    fn tail_lengths_unique() {
        let h = SipHash24::with_keys(3, 4);
        let data = [0u8; 32];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=32 {
            assert!(seen.insert(h.hash_bytes(&data[..len])));
        }
    }
}
