//! Bridge to `std::hash`: use the workspace hashers with `HashMap`.
//!
//! [`StdHasher`] adapts any [`Hasher64`] to `std::hash::Hasher` (buffering
//! writes and digesting on `finish`), and [`BuildStdHasher`] is the
//! corresponding `BuildHasher`, so a downstream user can key standard
//! collections with, say, SipHash-1-3 from this crate:
//!
//! ```
//! use std::collections::HashMap;
//! use hdhash_hashfn::{BuildStdHasher, SipHash13};
//!
//! let mut map: HashMap<u64, &str, _> =
//!     HashMap::with_hasher(BuildStdHasher::new(SipHash13::with_keys(1, 2)));
//! map.insert(7, "seven");
//! assert_eq!(map[&7], "seven");
//! ```

use crate::traits::Hasher64;

/// A `std::hash::Hasher` over any [`Hasher64`].
///
/// Writes are buffered and hashed as one message on
/// [`finish`](std::hash::Hasher::finish) — the right semantics for
/// one-shot message hashes like XXH64 (matching their reference streaming
/// implementations' output).
#[derive(Debug, Clone)]
pub struct StdHasher<H> {
    inner: H,
    buffer: Vec<u8>,
}

impl<H: Hasher64> StdHasher<H> {
    /// Wraps a hasher.
    #[must_use]
    pub fn new(inner: H) -> Self {
        Self { inner, buffer: Vec::new() }
    }
}

impl<H: Hasher64> std::hash::Hasher for StdHasher<H> {
    fn finish(&self) -> u64 {
        self.inner.hash_bytes(&self.buffer)
    }

    fn write(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }
}

/// A `BuildHasher` producing [`StdHasher`]s from a cloneable [`Hasher64`].
#[derive(Debug, Clone, Default)]
pub struct BuildStdHasher<H> {
    template: H,
}

impl<H: Hasher64 + Clone> BuildStdHasher<H> {
    /// Creates a builder cloning `template` per hasher.
    #[must_use]
    pub fn new(template: H) -> Self {
        Self { template }
    }
}

impl<H: Hasher64 + Clone> std::hash::BuildHasher for BuildStdHasher<H> {
    type Hasher = StdHasher<H>;

    fn build_hasher(&self) -> StdHasher<H> {
        StdHasher::new(self.template.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fnv1a64, SipHash24, XxHash64};
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn finish_matches_one_shot() {
        let mut std_hasher = StdHasher::new(XxHash64::with_seed(3));
        std_hasher.write(b"hello ");
        std_hasher.write(b"world");
        assert_eq!(std_hasher.finish(), XxHash64::with_seed(3).hash_bytes(b"hello world"));
    }

    #[test]
    fn hashmap_integration() {
        let mut map = std::collections::HashMap::with_hasher(BuildStdHasher::new(
            SipHash24::with_keys(9, 9),
        ));
        for i in 0..100u64 {
            map.insert(i, i * 2);
        }
        for i in 0..100u64 {
            assert_eq!(map[&i], i * 2);
        }
        assert!(!map.contains_key(&200));
    }

    #[test]
    fn build_hasher_is_consistent() {
        let build = BuildStdHasher::new(Fnv1a64::new());
        assert_eq!(build.hash_one("same"), build.hash_one("same"));
    }

    #[test]
    fn hashset_deduplicates() {
        let mut set =
            std::collections::HashSet::with_hasher(BuildStdHasher::new(XxHash64::new()));
        assert!(set.insert("x"));
        assert!(!set.insert("x"));
        assert_eq!(set.len(), 1);
    }
}
