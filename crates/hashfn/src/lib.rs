//! # hdhash-hashfn — from-scratch 64-bit hash function substrate
//!
//! Every hashing algorithm reproduced in this workspace (modular hashing,
//! consistent hashing, rendezvous hashing and hyperdimensional hashing) is
//! parameterized by a hash function `h(·)` mapping byte strings — request
//! identifiers, server identifiers, or (server, request) pairs — to 64-bit
//! words. The paper ("Hyperdimensional Hashing", DAC 2022) simply assumes a
//! hash function exists; since this repository builds every substrate from
//! scratch, this crate provides a family of well-known non-cryptographic
//! hash functions implemented from their published specifications:
//!
//! * [`SplitMix64`] — the tiny state-mixing generator of Steele et al.,
//!   used throughout the workspace for seeding and integer mixing.
//! * [`Fnv1a64`] — Fowler–Noll–Vo 1a, the classic byte-stream hash.
//! * [`XxHash64`] — a from-spec implementation of XXH64.
//! * [`Murmur3_128`] — MurmurHash3 x64/128 (we expose the low 64 bits).
//! * [`SipHash13`] / [`SipHash24`] — keyed SipHash with 1-3 and 2-4 rounds.
//!
//! All hashers implement the [`Hasher64`] trait; pair hashing (needed by
//! rendezvous hashing's `h(s, r)`) is provided by [`PairHasher`], and
//! [`BuildStdHasher`] bridges the family into `std::collections`.
//!
//! ```
//! use hdhash_hashfn::{Hasher64, XxHash64};
//!
//! let h = XxHash64::with_seed(42);
//! let a = h.hash_bytes(b"server-1");
//! let b = h.hash_bytes(b"server-2");
//! assert_ne!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fnv;
pub mod mix;
pub mod murmur3;
pub mod quality;
pub mod siphash;
pub mod splitmix;
pub mod std_bridge;
pub mod traits;
pub mod xxhash;

pub use fnv::Fnv1a64;
pub use mix::{mix64, moremur, rrmxmx};
pub use murmur3::Murmur3_128;
pub use siphash::{SipHash13, SipHash24};
pub use splitmix::SplitMix64;
pub use std_bridge::{BuildStdHasher, StdHasher};
pub use traits::{HashKind, Hasher64, PairHasher};
pub use xxhash::XxHash64;
