//! SplitMix64: the minimal splittable pseudo-random generator and mixer.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014; constants per Vigna's reference code) advances
//! a 64-bit state by the golden-gamma constant and scrambles it through two
//! xor-shift-multiply rounds. It is the workspace's universal seeding and
//! integer-mixing primitive: every deterministic random stream in the
//! repository bottoms out here.

use crate::traits::{HashKind, Hasher64};

/// The golden-gamma increment, `floor(2^64 / phi)`, made odd.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 output step applied to `x` as a pure function.
///
/// This is a bijective finalizer of full 64-bit avalanche quality and can
/// be used as a standalone integer hash.
///
/// ```
/// use hdhash_hashfn::splitmix::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// ```
#[inline]
#[must_use]
pub const fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A splittable pseudo-random stream with SplitMix64 state transitions.
///
/// The struct doubles as a [`Hasher64`] (hashing bytes by absorbing them
/// into the state) so that the emulator can select it as the `h(·)` of an
/// algorithm, and as an iterator-style generator through [`next_u64`].
///
/// [`next_u64`]: SplitMix64::next_u64
///
/// # Examples
///
/// ```
/// use hdhash_hashfn::SplitMix64;
///
/// let mut rng = SplitMix64::new(0xDEADBEEF);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random 64-bit word and advances the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a pseudo-random value below `bound` without modulo bias.
    ///
    /// Uses Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Splits off an independent child generator.
    ///
    /// The child is seeded from the next output of this stream, which is the
    /// construction recommended by the SplitMix authors for statistically
    /// independent substreams.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// The current internal state, exposed for checkpointing experiments.
    #[must_use]
    pub const fn state(&self) -> u64 {
        self.state
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Hasher64 for SplitMix64 {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        // Absorb 8-byte lanes through the SplitMix finalizer, then close
        // with the length so that prefixes do not collide.
        let mut acc = splitmix64(self.state ^ GOLDEN_GAMMA);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            acc = splitmix64(acc ^ lane);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut lane = [0u8; 8];
            lane[..rest.len()].copy_from_slice(rest);
            acc = splitmix64(acc ^ u64::from_le_bytes(lane));
        }
        splitmix64(acc ^ (bytes.len() as u64))
    }

    fn reseed(&self, seed: u64) -> Box<dyn Hasher64> {
        Box::new(Self::new(self.state ^ splitmix64(seed)))
    }

    fn kind(&self) -> HashKind {
        HashKind::SplitMix64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from Vigna's `splitmix64.c` seeded with 0:
    /// the first three outputs of the sequential generator.
    #[test]
    fn matches_reference_sequence_seed0() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    /// Regression vector (computed by this implementation, whose seed-0
    /// stream matches Vigna's reference exactly).
    #[test]
    fn matches_regression_sequence_seed1234567() {
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 7, 100, 2048] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SplitMix64::new(42);
        let mut a = parent.split();
        let mut b = parent.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn hash_bytes_prefix_free() {
        let h = SplitMix64::new(0);
        assert_ne!(h.hash_bytes(b""), h.hash_bytes(b"\0"));
        assert_ne!(h.hash_bytes(b"\0\0\0\0\0\0\0\0"), h.hash_bytes(b"\0" as &[u8]));
    }

    #[test]
    fn finalizer_is_deterministic_and_spreads() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_eq!(a, splitmix64(0));
        assert!((a ^ b).count_ones() > 16, "avalanche too weak");
    }
}
