//! Fowler–Noll–Vo 1a, 64-bit variant.
//!
//! FNV-1a folds each input byte into the state with XOR and multiplies by a
//! fixed prime. It is byte-serial and has weaker diffusion than XXH64 or
//! Murmur3, but is tiny and historically the default choice for hash-table
//! keying; we include it both as a usable [`Hasher64`] and as the "cheap
//! but lower quality" point in hash-quality ablations.

use crate::traits::{HashKind, Hasher64};

/// The 64-bit FNV offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
/// The 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The FNV-1a 64-bit hash function.
///
/// The optional seed is folded into the offset basis (a standard keyed-FNV
/// construction); a zero seed reproduces the canonical FNV-1a values.
///
/// # Examples
///
/// ```
/// use hdhash_hashfn::{Fnv1a64, Hasher64};
///
/// // Canonical test vector: FNV-1a("a") = 0xaf63dc4c8601ec8c.
/// assert_eq!(Fnv1a64::new().hash_bytes(b"a"), 0xAF63_DC4C_8601_EC8C);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fnv1a64 {
    seed: u64,
}

impl Fnv1a64 {
    /// Creates the canonical (unseeded) FNV-1a hasher.
    #[must_use]
    pub const fn new() -> Self {
        Self { seed: 0 }
    }

    /// Creates a keyed FNV-1a hasher.
    #[must_use]
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed }
    }
}

impl Hasher64 for Fnv1a64 {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut state = FNV_OFFSET_BASIS ^ self.seed;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        state
    }

    fn reseed(&self, seed: u64) -> Box<dyn Hasher64> {
        Box::new(Self::with_seed(self.seed ^ crate::splitmix::splitmix64(seed)))
    }

    fn kind(&self) -> HashKind {
        HashKind::Fnv1a64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the FNV reference tables (Landon Curt Noll).
    #[test]
    fn known_answer_vectors() {
        let h = Fnv1a64::new();
        assert_eq!(h.hash_bytes(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(h.hash_bytes(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(h.hash_bytes(b"b"), 0xAF63_DF4C_8601_F1A5);
        assert_eq!(h.hash_bytes(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn seeding_changes_output() {
        let plain = Fnv1a64::new();
        let keyed = Fnv1a64::with_seed(123);
        assert_ne!(plain.hash_bytes(b"xyz"), keyed.hash_bytes(b"xyz"));
    }

    #[test]
    fn reseed_is_deterministic() {
        let a = Fnv1a64::new().reseed(9).hash_bytes(b"k");
        let b = Fnv1a64::new().reseed(9).hash_bytes(b"k");
        assert_eq!(a, b);
    }

    #[test]
    fn kind_is_fnv() {
        assert_eq!(Fnv1a64::new().kind(), HashKind::Fnv1a64);
    }
}
