//! MurmurHash3 x64/128 implemented from Austin Appleby's reference code.
//!
//! The x64/128 variant digests 16-byte blocks through two interleaved
//! multiply-rotate lanes and finalizes with the `fmix64` avalanche. We keep
//! the full 128-bit state and expose the low word through [`Hasher64`]
//! (matching how most systems truncate Murmur3 to 64 bits), with
//! [`Murmur3_128::hash128`] available when both words are wanted.

use crate::traits::{HashKind, Hasher64};

const C1: u64 = 0x87C3_7B91_1142_53D5;
const C2: u64 = 0x4CF5_AD43_2745_937F;

/// The `fmix64` finalizer from MurmurHash3.
#[inline]
#[must_use]
pub const fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^ (k >> 33)
}

/// MurmurHash3 x64/128.
///
/// # Examples
///
/// ```
/// use hdhash_hashfn::{Hasher64, Murmur3_128};
///
/// let h = Murmur3_128::with_seed(0);
/// let (lo, hi) = h.hash128(b"hello");
/// assert_eq!(h.hash_bytes(b"hello"), lo);
/// assert_ne!(lo, hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[allow(non_camel_case_types)]
pub struct Murmur3_128 {
    seed: u32,
}

impl Murmur3_128 {
    /// Creates a Murmur3 hasher with seed 0.
    #[must_use]
    pub const fn new() -> Self {
        Self { seed: 0 }
    }

    /// Creates a Murmur3 hasher with the given 32-bit seed (per reference API).
    #[must_use]
    pub const fn with_seed(seed: u32) -> Self {
        Self { seed }
    }

    /// Computes the full 128-bit digest as `(low, high)` words.
    #[must_use]
    pub fn hash128(&self, bytes: &[u8]) -> (u64, u64) {
        let len = bytes.len();
        let mut h1 = u64::from(self.seed);
        let mut h2 = u64::from(self.seed);

        let mut blocks = bytes.chunks_exact(16);
        for block in &mut blocks {
            let mut k1 = u64::from_le_bytes(block[..8].try_into().expect("8 bytes"));
            let mut k2 = u64::from_le_bytes(block[8..].try_into().expect("8 bytes"));

            k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
            h1 ^= k1;
            h1 = h1.rotate_left(27).wrapping_add(h2).wrapping_mul(5).wrapping_add(0x52DC_E729);

            k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
            h2 ^= k2;
            h2 = h2.rotate_left(31).wrapping_add(h1).wrapping_mul(5).wrapping_add(0x3849_5AB5);
        }

        let tail = blocks.remainder();
        let mut k1: u64 = 0;
        let mut k2: u64 = 0;
        for i in (8..tail.len()).rev() {
            k2 ^= u64::from(tail[i]) << ((i - 8) * 8);
        }
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
            h2 ^= k2;
        }
        for i in (0..tail.len().min(8)).rev() {
            k1 ^= u64::from(tail[i]) << (i * 8);
        }
        if !tail.is_empty() {
            k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
            h1 ^= k1;
        }

        h1 ^= len as u64;
        h2 ^= len as u64;
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        h1 = fmix64(h1);
        h2 = fmix64(h2);
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);

        (h1, h2)
    }
}

impl Hasher64 for Murmur3_128 {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        self.hash128(bytes).0
    }

    fn reseed(&self, seed: u64) -> Box<dyn Hasher64> {
        Box::new(Self::with_seed(crate::splitmix::splitmix64(seed) as u32))
    }

    fn kind(&self) -> HashKind {
        HashKind::Murmur3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference digests produced by Appleby's C++ `MurmurHash3_x64_128`
    /// (widely mirrored, e.g. in the smhasher verification corpus).
    #[test]
    fn empty_input_seed_zero_is_zero() {
        // MurmurHash3_x64_128("", 0) = 0x00000000000000000000000000000000.
        assert_eq!(Murmur3_128::new().hash128(b""), (0, 0));
        // A non-zero seed must perturb even the empty input.
        assert_ne!(Murmur3_128::with_seed(0x2A).hash128(b""), (0, 0));
    }

    /// The canonical "hello" digest for x64/128 with seed 0 is
    /// `cbd8a7b341bd9b025b1e906a48ae1d19` (h1 then h2 as big-endian hex).
    #[test]
    fn hello_vector() {
        let (lo, hi) = Murmur3_128::new().hash128(b"hello");
        assert_eq!(lo, 0xCBD8_A7B3_41BD_9B02, "low word");
        assert_eq!(hi, 0x5B1E_906A_48AE_1D19, "high word");
    }

    #[test]
    fn tail_paths_collision_free() {
        let data: Vec<u8> = (0..64u8).collect();
        let h = Murmur3_128::new();
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            assert!(seen.insert(h.hash128(&data[..len])), "collision at length {len}");
        }
    }

    #[test]
    fn seed_changes_output() {
        let a = Murmur3_128::with_seed(1).hash_bytes(b"key");
        let b = Murmur3_128::with_seed(2).hash_bytes(b"key");
        assert_ne!(a, b);
    }

    #[test]
    fn fmix64_known_points() {
        assert_eq!(fmix64(0), 0);
        // fmix64 is a bijection; spot-check avalanche.
        assert!(fmix64(1).count_ones() > 16);
    }
}
