//! XXH64 implemented from the published specification.
//!
//! XXH64 (Yann Collet) processes the input in 32-byte stripes through four
//! accumulator lanes, merges them, absorbs the tail, and applies an
//! avalanche finalizer. It is the workspace's default `h(·)`: fast,
//! well-distributed and seedable.

use crate::traits::{HashKind, Hasher64};

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// The XXH64 hash function.
///
/// # Examples
///
/// ```
/// use hdhash_hashfn::{Hasher64, XxHash64};
///
/// // Official test vector: XXH64("", seed=0) = 0xEF46DB3751D8E999.
/// assert_eq!(XxHash64::new().hash_bytes(b""), 0xEF46_DB37_51D8_E999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct XxHash64 {
    seed: u64,
}

impl XxHash64 {
    /// Creates an XXH64 hasher with seed 0.
    #[must_use]
    pub const fn new() -> Self {
        Self { seed: 0 }
    }

    /// Creates an XXH64 hasher with the given seed.
    #[must_use]
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    #[inline]
    fn round(acc: u64, input: u64) -> u64 {
        acc.wrapping_add(input.wrapping_mul(PRIME64_2))
            .rotate_left(31)
            .wrapping_mul(PRIME64_1)
    }

    #[inline]
    fn merge_round(acc: u64, val: u64) -> u64 {
        (acc ^ Self::round(0, val))
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4)
    }

    #[inline]
    fn avalanche(mut h: u64) -> u64 {
        h ^= h >> 33;
        h = h.wrapping_mul(PRIME64_2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME64_3);
        h ^ (h >> 32)
    }

    fn hash_with_seed(seed: u64, input: &[u8]) -> u64 {
        let len = input.len();
        let mut h: u64;
        let mut rest = input;

        if len >= 32 {
            let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
            let mut v2 = seed.wrapping_add(PRIME64_2);
            let mut v3 = seed;
            let mut v4 = seed.wrapping_sub(PRIME64_1);

            while rest.len() >= 32 {
                v1 = Self::round(v1, read_u64(&rest[0..8]));
                v2 = Self::round(v2, read_u64(&rest[8..16]));
                v3 = Self::round(v3, read_u64(&rest[16..24]));
                v4 = Self::round(v4, read_u64(&rest[24..32]));
                rest = &rest[32..];
            }

            h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = Self::merge_round(h, v1);
            h = Self::merge_round(h, v2);
            h = Self::merge_round(h, v3);
            h = Self::merge_round(h, v4);
        } else {
            h = seed.wrapping_add(PRIME64_5);
        }

        h = h.wrapping_add(len as u64);

        while rest.len() >= 8 {
            let k1 = Self::round(0, read_u64(&rest[..8]));
            h = (h ^ k1).rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
            rest = &rest[8..];
        }
        if rest.len() >= 4 {
            let k = u64::from(read_u32(&rest[..4]));
            h = (h ^ k.wrapping_mul(PRIME64_1))
                .rotate_left(23)
                .wrapping_mul(PRIME64_2)
                .wrapping_add(PRIME64_3);
            rest = &rest[4..];
        }
        for &byte in rest {
            h = (h ^ u64::from(byte).wrapping_mul(PRIME64_5))
                .rotate_left(11)
                .wrapping_mul(PRIME64_1);
        }

        Self::avalanche(h)
    }
}

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4-byte slice"))
}

impl Hasher64 for XxHash64 {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        Self::hash_with_seed(self.seed, bytes)
    }

    fn reseed(&self, seed: u64) -> Box<dyn Hasher64> {
        Box::new(Self::with_seed(seed))
    }

    fn kind(&self) -> HashKind {
        HashKind::XxHash64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official XXH64 sanity vectors from the xxHash repository
    /// (`xxhsum --benchAll` sanity checks and widely mirrored test suites).
    #[test]
    fn known_answer_vectors() {
        let h0 = XxHash64::new();
        assert_eq!(h0.hash_bytes(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(h0.hash_bytes(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(h0.hash_bytes(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            h0.hash_bytes(b"Nobody inspects the spammish repetition"),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seeded_vectors() {
        // XXH64("", seed=1) regression vector (implementation validated by
        // the official seed-0 vectors above).
        assert_eq!(XxHash64::with_seed(1).hash_bytes(b""), 0xD5AF_BA13_36A3_BE4B);
        // Seeds must change the output for all lengths.
        for len in 0..70usize {
            let data = vec![0xABu8; len];
            assert_ne!(
                XxHash64::with_seed(0).hash_bytes(&data),
                XxHash64::with_seed(1).hash_bytes(&data),
                "seed had no effect at length {len}"
            );
        }
    }

    #[test]
    fn exercises_all_tail_paths() {
        // Lengths crossing stripe (32), lane (8) and word (4) boundaries.
        let data: Vec<u8> = (0..100u8).collect();
        let h = XxHash64::new();
        let mut outputs = std::collections::HashSet::new();
        for len in 0..data.len() {
            assert!(outputs.insert(h.hash_bytes(&data[..len])), "collision at length {len}");
        }
    }

    #[test]
    fn long_input_stable() {
        let data = vec![0x5Au8; 4096];
        let a = XxHash64::with_seed(7).hash_bytes(&data);
        let b = XxHash64::with_seed(7).hash_bytes(&data);
        assert_eq!(a, b);
    }
}
