//! Property-based tests for the hash function substrate.

use hdhash_hashfn::{
    Fnv1a64, Hasher64, Murmur3_128, SipHash13, SipHash24, SplitMix64, XxHash64,
};
use proptest::prelude::*;

fn all_hashers() -> Vec<Box<dyn Hasher64>> {
    vec![
        Box::new(Fnv1a64::new()),
        Box::new(XxHash64::new()),
        Box::new(Murmur3_128::new()),
        Box::new(SipHash13::new()),
        Box::new(SipHash24::new()),
        Box::new(SplitMix64::new(7)),
    ]
}

proptest! {
    /// Hashing is a pure function: equal inputs give equal outputs.
    #[test]
    fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        for h in all_hashers() {
            prop_assert_eq!(h.hash_bytes(&data), h.hash_bytes(&data));
        }
    }

    /// `hash_u64` is exactly the little-endian byte encoding hash.
    #[test]
    fn u64_path_consistent(key in any::<u64>()) {
        for h in all_hashers() {
            prop_assert_eq!(h.hash_u64(key), h.hash_bytes(&key.to_le_bytes()));
        }
    }

    /// Appending a byte essentially never preserves the digest
    /// (collision would require a 1-in-2^64 event; treat as failure).
    #[test]
    fn extension_changes_digest(data in proptest::collection::vec(any::<u8>(), 0..128), tail in any::<u8>()) {
        for h in all_hashers() {
            let mut extended = data.clone();
            extended.push(tail);
            prop_assert_ne!(h.hash_bytes(&data), h.hash_bytes(&extended), "{}", h.kind());
        }
    }

    /// Reseeding produces a different function but remains deterministic.
    #[test]
    fn reseed_consistency(seed in 1u64.., data in proptest::collection::vec(any::<u8>(), 1..64)) {
        for h in all_hashers() {
            let a = h.reseed(seed);
            let b = h.reseed(seed);
            prop_assert_eq!(a.hash_bytes(&data), b.hash_bytes(&data));
            prop_assert_eq!(a.kind(), h.kind());
        }
    }

    /// Distinct short keys collide essentially never across the family.
    #[test]
    fn distinct_u64_keys_do_not_collide(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        for h in all_hashers() {
            prop_assert_ne!(h.hash_u64(a), h.hash_u64(b), "{}", h.kind());
        }
    }

    /// SplitMix64's bounded sampler respects its bound for arbitrary bounds.
    #[test]
    fn next_below_in_range(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let x = rng.next_below(bound);
        prop_assert!(x < bound);
    }

    /// Murmur3's 128-bit digest: low word matches the `Hasher64` view.
    #[test]
    fn murmur_low_word_consistent(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let h = Murmur3_128::with_seed(9);
        prop_assert_eq!(h.hash128(&data).0, h.hash_bytes(&data));
    }
}
