//! Exactness of incremental membership maintenance: counter-plane
//! add/remove must be **byte-identical** to from-scratch re-bundling over
//! any interleaving of additions and retractions — the property that lets
//! the classifier and the hash tables update `O(log n)` planes per
//! membership change instead of re-bundling the full membership.

use hdhash_hdc::accumulator::BundleAccumulator;
use hdhash_hdc::maintenance::MembershipCentroid;
use hdhash_hdc::ops::MajorityBundler;
use hdhash_hdc::{CentroidClassifier, Hypervector, Rng};
use proptest::prelude::*;

/// Dimensions biased toward word-boundary edge cases.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(63), Just(64), Just(65), Just(129), 2usize..500, Just(10_000)]
}

/// An interleaving script: `(slot, remove)` pairs over a small pool of
/// candidate hypervectors. Adds push the slot's vector; removes retract
/// the earliest still-present copy (skipped when none is present).
fn scripts() -> impl Strategy<Value = Vec<(u8, bool)>> {
    prop::collection::vec((0u8..6, any::<bool>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental centroid equals the integer-counter accumulator
    /// rebuilt from scratch after every single step of any add/remove
    /// interleaving — odd counts, even counts (parity ties) and the
    /// empty membership included.
    #[test]
    fn centroid_equals_from_scratch_rebundle(
        seed in any::<u64>(),
        d in dims(),
        script in scripts(),
    ) {
        let mut rng = Rng::new(seed);
        let pool: Vec<Hypervector> =
            (0..6).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut centroid = MembershipCentroid::new(d);
        let mut present: Vec<usize> = Vec::new(); // pool indices, add order
        for &(slot, remove) in &script {
            let slot = slot as usize;
            if remove {
                let Some(pos) = present.iter().position(|&p| p == slot) else {
                    continue;
                };
                present.remove(pos);
                centroid.remove(&pool[slot]).unwrap();
            } else {
                present.push(slot);
                centroid.add(&pool[slot]).unwrap();
            }
            // From-scratch reference over the current multiset.
            let mut scratch = BundleAccumulator::new(d);
            for &p in &present {
                scratch.add(&pool[p]).unwrap();
            }
            prop_assert_eq!(centroid.members(), present.len());
            prop_assert_eq!(
                centroid.read().to_bytes(),
                scratch.to_hypervector().to_bytes(),
                "diverged at members={}",
                present.len()
            );
        }
    }

    /// `MajorityBundler::subtract` is the exact inverse of `add`: after
    /// adding a base set plus churn and retracting the churn (in any
    /// order), the majority readout equals the base-only bundler's.
    #[test]
    fn bundler_subtract_inverts_add(
        seed in any::<u64>(),
        d in dims(),
        base_n in 1usize..8,
        churn_n in 1usize..8,
    ) {
        let mut rng = Rng::new(seed);
        let base: Vec<Hypervector> =
            (0..base_n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let churn: Vec<Hypervector> =
            (0..churn_n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut churned = MajorityBundler::new(d);
        for hv in &base {
            churned.add(hv).unwrap();
        }
        for hv in &churn {
            churned.add(hv).unwrap();
        }
        // Retract in reverse order (any order works; reverse is one).
        for hv in churn.iter().rev() {
            churned.subtract(hv).unwrap();
        }
        let mut clean = MajorityBundler::new(d);
        for hv in &base {
            clean.add(hv).unwrap();
        }
        prop_assert_eq!(churned.members(), base_n);
        prop_assert_eq!(
            churned.majority(None).to_bytes(),
            clean.majority(None).to_bytes()
        );
    }

    /// Classifier prototypes under observe/forget churn equal a
    /// classifier trained from scratch on the surviving observations.
    #[test]
    fn classifier_churn_equals_from_scratch(
        seed in any::<u64>(),
        d in dims(),
        script in scripts(),
    ) {
        let mut rng = Rng::new(seed);
        // Two labels, three observation variants each.
        let pool: Vec<(u8, Hypervector)> = (0..6u8)
            .map(|i| (i % 2, Hypervector::random(d, &mut rng)))
            .collect();
        let mut churned: CentroidClassifier<u8> = CentroidClassifier::new(d);
        let mut present: Vec<usize> = Vec::new();
        for &(slot, remove) in &script {
            let slot = slot as usize;
            let (label, hv) = &pool[slot];
            if remove {
                let Some(pos) = present.iter().position(|&p| p == slot) else {
                    continue;
                };
                present.remove(pos);
                prop_assert!(churned.forget(label, hv).unwrap());
            } else {
                present.push(slot);
                churned.observe(*label, hv).unwrap();
            }
        }
        let mut scratch: CentroidClassifier<u8> = CentroidClassifier::new(d);
        for &p in &present {
            let (label, hv) = &pool[p];
            scratch.observe(*label, hv).unwrap();
        }
        prop_assert_eq!(churned.observation_count(), present.len());
        prop_assert_eq!(churned.class_count(), scratch.class_count());
        for label in [0u8, 1] {
            let a = churned.prototype(&label).map(|hv| hv.to_bytes());
            let b = scratch.prototype(&label).map(|hv| hv.to_bytes());
            prop_assert_eq!(a, b, "label {} prototype diverged", label);
        }
    }
}
