//! Equivalence properties: the optimized word-parallel kernels must be
//! **byte-identical** to the naive bit-at-a-time reference implementations
//! (`hdhash_hdc::ops::reference`) on every input — random dimensions
//! included, and especially dimensions that are not multiples of 64, which
//! exercise the masked tail word of the packed representation.

use hdhash_hdc::batch::Hit;
use hdhash_hdc::ops::{bundle, permute, reference, MajorityBundler};
use hdhash_hdc::{
    AssociativeMemory, BatchLookup, EngineOptions, Hypervector, MatrixLayout, Rng,
};
use proptest::prelude::*;

/// Dimensions biased toward word-boundary edge cases.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(63),
        Just(64),
        Just(65),
        Just(127),
        Just(128),
        Just(129),
        2usize..700,
        Just(1000),
        Just(10_000),
    ]
}

/// Engine construction options spanning both matrix layouts and row-block
/// heights that do and do not divide typical populations (1 = degenerate
/// single-lane interleave, 16 = the production default).
fn engine_options() -> impl Strategy<Value = EngineOptions> {
    (
        prop_oneof![Just(MatrixLayout::RowMajor), Just(MatrixLayout::Interleaved)],
        prop_oneof![Just(1usize), Just(3), Just(7), Just(16)],
    )
        .prop_map(|(layout, row_block)| {
            EngineOptions::default().with_layout(layout).with_row_block(row_block)
        })
}

/// Row `i` of an engine as an owned word vector (layout-independent).
fn engine_row(engine: &BatchLookup, i: usize) -> Vec<u64> {
    let mut out = Vec::new();
    engine.copy_row_into(i, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Word-parallel bundle == per-bit bundle, bit for bit, for odd and
    /// even input counts (even counts draw the same tie-break vector from
    /// identically seeded RNGs).
    #[test]
    fn bundle_equals_reference(seed in any::<u64>(), d in dims(), n in 1usize..18) {
        let mut rng = Rng::new(seed);
        let inputs: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let mut rng_fast = Rng::new(seed ^ 0x5EED);
        let mut rng_ref = Rng::new(seed ^ 0x5EED);
        let fast = bundle(&refs, &mut rng_fast).unwrap();
        let naive = reference::bundle(&refs, &mut rng_ref).unwrap();
        prop_assert_eq!(fast.to_bytes(), naive.to_bytes());
        // Identical RNG consumption keeps downstream draws reproducible.
        prop_assert_eq!(rng_fast.next_u64(), rng_ref.next_u64());
    }

    /// The streaming bundler agrees with one-shot bundle for odd counts
    /// (no tie vector involved) and survives reuse.
    #[test]
    fn streaming_bundler_equals_reference(seed in any::<u64>(), d in dims(), k in 0usize..6) {
        let n = 2 * k + 1;
        let mut rng = Rng::new(seed);
        let inputs: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let mut bundler = MajorityBundler::new(d);
        // Pollute, reset, then stream — reuse must leave no residue.
        bundler.add(&inputs[0]).unwrap();
        bundler.reset();
        for hv in &inputs {
            bundler.add(hv).unwrap();
        }
        let naive = reference::bundle(&refs, &mut Rng::new(0)).unwrap();
        prop_assert_eq!(bundler.majority(None).to_bytes(), naive.to_bytes());
    }

    /// Word-level rotation == per-bit rotation for arbitrary shifts,
    /// including shifts beyond `d`.
    #[test]
    fn permute_equals_reference(seed in any::<u64>(), d in dims(), shift in 0usize..30_000) {
        let mut rng = Rng::new(seed);
        let hv = Hypervector::random(d, &mut rng);
        prop_assert_eq!(
            permute(&hv, shift).to_bytes(),
            reference::permute(&hv, shift).to_bytes()
        );
    }

    /// The early-exit distance agrees exactly with the per-bit distance:
    /// `Some(dist)` iff `dist <= limit`, `None` otherwise.
    #[test]
    fn hamming_within_equals_reference(seed in any::<u64>(), d in dims(), frac in 0usize..9) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        // Mix related and unrelated operands to cover both distance scales.
        let b = if frac % 2 == 0 {
            Hypervector::random(d, &mut rng)
        } else {
            let mut b = a.clone();
            b.flip_bits(rng.distinct_indices((d * frac / 16).min(d), d));
            b
        };
        let exact = reference::hamming(&a, &b);
        let limit = d * frac / 8;
        let within = a.hamming_distance_within(&b, limit);
        if exact <= limit {
            prop_assert_eq!(within, Some(exact));
        } else {
            prop_assert_eq!(within, None);
        }
        prop_assert_eq!(a.hamming_distance(&b), exact);
    }

    /// The batched engine returns exactly the naive argmin — lowest
    /// distance, earliest row on ties — for random populations, random
    /// probes, and near-match probes (which take the prefix-filter path).
    #[test]
    fn batch_lookup_equals_naive_argmin(
        seed in any::<u64>(),
        d in dims(),
        n in 1usize..40,
        noisy in any::<bool>(),
    ) {
        let mut rng = Rng::new(seed);
        let rows: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut engine = BatchLookup::new(d);
        for hv in &rows {
            engine.push(hv).unwrap();
        }
        let probe = if noisy {
            let victim = rng.next_below(n as u64) as usize;
            let mut p = rows[victim].clone();
            p.flip_bits(rng.distinct_indices(d / 20, d));
            p
        } else {
            Hypervector::random(d, &mut rng)
        };
        let naive = rows
            .iter()
            .enumerate()
            .map(|(i, hv)| (reference::hamming(&probe, hv), i))
            .min()
            .map(|(dist, i)| (i, dist));
        let got = engine.nearest_one(&probe).map(|h| (h.row, h.distance));
        prop_assert_eq!(got, naive);
        // The multi-probe kernel agrees with the single-probe kernel.
        let mut out = Vec::new();
        engine.nearest_batch_into(&[&probe], &mut out);
        prop_assert_eq!(out[0].map(|h| (h.row, h.distance)), got);
    }

    /// The calibrated batch path is byte-identical across scan plans: an
    /// engine whose calibrator is engaged (fresh, inference-assuming) and
    /// one collapsed by an adversarial warm-up stream must resolve the
    /// same probe batch to identical `(row, distance)` hits, and both must
    /// equal the naive per-probe argmin — whether the batch itself is
    /// inference-shaped, adversarial, or mixed.
    #[test]
    fn calibrated_batch_equals_blocked_batch(
        seed in any::<u64>(),
        d in prop_oneof![Just(1000usize), Just(4096), Just(10_240)],
        n in 9usize..40,
        shapes in prop::collection::vec(any::<bool>(), 4..24),
    ) {
        let mut rng = Rng::new(seed);
        let rows: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut engaged = BatchLookup::new(d);
        for hv in &rows {
            engaged.push(hv).unwrap();
        }
        // A second engine, collapsed by sustained adversarial single-probe
        // traffic, takes the cache-blocked plan for the same batch.
        let collapsed = engaged.clone();
        for _ in 0..10 {
            let probe = Hypervector::random(d, &mut rng);
            let _ = collapsed.nearest_one(&probe);
        }
        let probes: Vec<Hypervector> = shapes
            .iter()
            .map(|&noisy| {
                if noisy {
                    let victim = rng.next_below(n as u64) as usize;
                    let mut p = rows[victim].clone();
                    p.flip_bits(rng.distinct_indices(d / 25, d));
                    p
                } else {
                    Hypervector::random(d, &mut rng)
                }
            })
            .collect();
        let refs: Vec<&Hypervector> = probes.iter().collect();
        let (mut via_engaged, mut via_collapsed) = (Vec::new(), Vec::new());
        engaged.nearest_batch_into(&refs, &mut via_engaged);
        collapsed.nearest_batch_into(&refs, &mut via_collapsed);
        prop_assert_eq!(&via_engaged, &via_collapsed);
        for (probe, got) in probes.iter().zip(&via_engaged) {
            let naive = rows
                .iter()
                .enumerate()
                .map(|(i, hv)| (reference::hamming(probe, hv), i))
                .min()
                .map(|(dist, i)| Hit { row: i, distance: dist });
            prop_assert_eq!(*got, naive);
        }
    }

    /// The adaptive scan stays exact across *streams* of probes on one
    /// engine: mixed adversarial and inference-shaped probes drive the
    /// calibrator through its whole state machine — filtered rounds with
    /// and without a stand-out leader, the collapsed straight scan, and
    /// the periodic exploration queries — and every single answer must
    /// still be the reference argmin with the earliest-row tie-break.
    #[test]
    fn adaptive_scan_exact_under_probe_streams(
        seed in any::<u64>(),
        d in prop_oneof![Just(512usize), Just(1000), Just(4096), Just(10_240)],
        n in 8usize..48,
        shapes in prop::collection::vec(any::<bool>(), 20..60),
    ) {
        let mut rng = Rng::new(seed);
        let rows: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut engine = BatchLookup::new(d);
        for hv in &rows {
            engine.push(hv).unwrap();
        }
        for &noisy in &shapes {
            let probe = if noisy {
                let victim = rng.next_below(n as u64) as usize;
                let mut p = rows[victim].clone();
                p.flip_bits(rng.distinct_indices(d / 25, d));
                p
            } else {
                Hypervector::random(d, &mut rng)
            };
            let naive = rows
                .iter()
                .enumerate()
                .map(|(i, hv)| (reference::hamming(&probe, hv), i))
                .min()
                .map(|(dist, i)| (i, dist));
            prop_assert_eq!(
                engine.nearest_one(&probe).map(|h| (h.row, h.distance)),
                naive
            );
        }
    }

    /// The quantized arg-max on the adaptive incremental-prefix schedule
    /// is **byte-identical to the straight bounded scan**: for every probe
    /// shape (inference-shaped and adversarial), every calibrator state
    /// (a fresh engaged engine and one collapsed by adversarial warm-up
    /// runs opposite plans), and colliding order keys (forcing the
    /// `(q, order, row)` tie-break), the `(q, order, row)` verdict equals
    /// the exhaustive reference minimum.
    #[test]
    fn quantized_adaptive_equals_straight_scan(
        seed in any::<u64>(),
        d in prop_oneof![Just(512usize), Just(1000), Just(4096), Just(10_240)],
        n in 9usize..48,
        quantum_div in 1usize..64,
        shapes in prop::collection::vec(any::<bool>(), 6..20),
    ) {
        let quantum = (d / (quantum_div * 2).max(2)).max(1);
        let mut rng = Rng::new(seed);
        let rows: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut engaged = BatchLookup::new(d);
        for hv in &rows {
            engaged.push(hv).unwrap();
        }
        // A second engine, collapsed by sustained adversarial warm-up,
        // runs the straight plan for the same probes.
        let collapsed = engaged.clone();
        for _ in 0..10 {
            let probe = Hypervector::random(d, &mut rng);
            let _ = collapsed.nearest_one(&probe);
        }
        let order = |row: usize| row % 5; // collides → order tie-break exercised
        for &noisy in &shapes {
            let probe = if noisy {
                let victim = rng.next_below(n as u64) as usize;
                let mut p = rows[victim].clone();
                p.flip_bits(rng.distinct_indices(d / 25, d));
                p
            } else {
                Hypervector::random(d, &mut rng)
            };
            let want = rows
                .iter()
                .enumerate()
                .map(|(row, hv)| {
                    ((reference::hamming(&probe, hv) + quantum / 2) / quantum, order(row), row)
                })
                .min();
            let via_engaged = engaged.nearest_quantized_by(&probe, quantum, 0, n, order);
            let via_collapsed = collapsed.nearest_quantized_by(&probe, quantum, 0, n, order);
            prop_assert_eq!(&via_engaged, &want, "engaged plan diverged (d={}, q={})", d, quantum);
            prop_assert_eq!(&via_collapsed, &want, "collapsed plan diverged (d={}, q={})", d, quantum);
        }
    }

    /// Row compaction under churn equals a fresh engine built from the
    /// surviving rows — matrix contents and scan results alike — under
    /// both layouts (in-place copy for row-major, arena re-laning for
    /// interleaved) and non-divisor row blocks.
    #[test]
    fn retained_rows_equal_fresh_engine(
        seed in any::<u64>(),
        d in dims(),
        n in 1usize..30,
        keep_mask in prop::collection::vec(any::<bool>(), 30),
        options in engine_options(),
    ) {
        let mut rng = Rng::new(seed);
        let rows: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut engine = BatchLookup::with_options(d, options);
        for hv in &rows {
            engine.push(hv).unwrap();
        }
        engine.retain_rows(|row| keep_mask[row]);
        let survivors: Vec<&Hypervector> =
            rows.iter().enumerate().filter(|(i, _)| keep_mask[*i]).map(|(_, hv)| hv).collect();
        prop_assert_eq!(engine.len(), survivors.len());
        let mut fresh = BatchLookup::with_options(d, options);
        for hv in &survivors {
            fresh.push(hv).unwrap();
        }
        for (i, hv) in survivors.iter().enumerate() {
            prop_assert_eq!(engine_row(&engine, i), engine_row(&fresh, i));
            prop_assert_eq!(engine_row(&engine, i), hv.as_words().to_vec());
        }
        let probe = Hypervector::random(d, &mut rng);
        let got = engine.nearest_one(&probe).map(|h| (h.row, h.distance));
        let want = survivors
            .iter()
            .enumerate()
            .map(|(i, hv)| (reference::hamming(&probe, hv), i))
            .min()
            .map(|(dist, i)| (i, dist));
        prop_assert_eq!(got, want);
    }

    /// Cross-layout × cross-tier pin: the same membership behind every
    /// (layout, row_block) resolves every scan shape — plain argmin,
    /// batch, bounded range, quantized arg-max, and bulk distances —
    /// byte-identically to the bit-at-a-time reference, on non-×64
    /// dimensions and after row compaction. The dispatched kernel under
    /// all of this is whatever tier the host runs (scalar/AVX2/AVX-512),
    /// so a pass pins that tier against the reference too.
    #[test]
    fn layouts_agree_with_reference_after_churn(
        seed in any::<u64>(),
        d in dims(),
        n in 1usize..30,
        keep_mask in prop::collection::vec(any::<bool>(), 30),
        noisy in any::<bool>(),
        options in engine_options(),
    ) {
        let mut rng = Rng::new(seed);
        let all_rows: Vec<Hypervector> =
            (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut engine = BatchLookup::with_options(d, options);
        for hv in &all_rows {
            engine.push(hv).unwrap();
        }
        engine.retain_rows(|row| keep_mask[row]);
        let rows: Vec<&Hypervector> = all_rows
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask[*i])
            .map(|(_, hv)| hv)
            .collect();
        let probe = if noisy && !rows.is_empty() {
            let victim = rng.next_below(rows.len() as u64) as usize;
            let mut p = rows[victim].clone();
            p.flip_bits(rng.distinct_indices(d / 20, d));
            p
        } else {
            Hypervector::random(d, &mut rng)
        };
        let naive = rows
            .iter()
            .enumerate()
            .map(|(i, hv)| (reference::hamming(&probe, hv), i))
            .min()
            .map(|(dist, i)| (i, dist));
        prop_assert_eq!(engine.nearest_one(&probe).map(|h| (h.row, h.distance)), naive);
        let mut out = Vec::new();
        engine.nearest_batch_into(&[&probe], &mut out);
        prop_assert_eq!(out[0].map(|h| (h.row, h.distance)), naive);
        let mut dists = Vec::new();
        engine.distances_into(&probe, &mut dists);
        prop_assert_eq!(dists.len(), rows.len());
        for (i, hv) in rows.iter().enumerate() {
            prop_assert_eq!(dists[i] as usize, reference::hamming(&probe, hv));
        }
        if !rows.is_empty() {
            let order = |row: usize| row % 3;
            let quantum = (d / 8).max(1);
            let want = rows
                .iter()
                .enumerate()
                .map(|(row, hv)| {
                    ((reference::hamming(&probe, hv) + quantum / 2) / quantum, order(row), row)
                })
                .min();
            prop_assert_eq!(
                engine.nearest_quantized_by(&probe, quantum, 0, rows.len(), order),
                want
            );
            let bound = d / 2;
            let want_bounded = rows
                .iter()
                .enumerate()
                .map(|(i, hv)| (reference::hamming(&probe, hv), i))
                .filter(|&(dist, _)| dist <= bound)
                .min()
                .map(|(dist, i)| Hit { row: i, distance: dist });
            prop_assert_eq!(engine.nearest_in_range(&probe, 0, rows.len(), bound), want_bounded);
        }
    }

    /// `nearest_k` with partial selection equals a full sort of the naive
    /// scores, deterministic tie-break included.
    #[test]
    fn nearest_k_equals_full_sort(
        seed in any::<u64>(),
        d in dims(),
        n in 1usize..30,
        k in 0usize..35,
    ) {
        let mut rng = Rng::new(seed);
        let mut memory = AssociativeMemory::new(d);
        let mut rows: Vec<Hypervector> = Vec::new();
        for i in 0..n {
            // Duplicate every third row to force score ties.
            let hv = if i % 3 == 2 && i > 0 {
                rows[i - 1].clone()
            } else {
                Hypervector::random(d, &mut rng)
            };
            memory.insert(i, hv.clone()).unwrap();
            rows.push(hv);
        }
        let probe = Hypervector::random(d, &mut rng);
        let got: Vec<usize> = memory.nearest_k(&probe, k).iter().map(|m| m.key).collect();
        let mut scored: Vec<(usize, usize)> = rows
            .iter()
            .enumerate()
            .map(|(i, hv)| (reference::hamming(&probe, hv), i))
            .collect();
        scored.sort_unstable();
        let want: Vec<usize> = scored.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, want);
    }

    /// The associative memory's nearest (serial and parallel) equals the
    /// reference formulation: max similarity, earliest insert on ties.
    #[test]
    fn memory_nearest_equals_reference(seed in any::<u64>(), d in dims(), n in 1usize..30) {
        let mut rng = Rng::new(seed);
        let mut memory = AssociativeMemory::new(d);
        let mut rows = Vec::new();
        for i in 0..n {
            let hv = Hypervector::random(d, &mut rng);
            memory.insert(i, hv.clone()).unwrap();
            rows.push(hv);
        }
        let probe = Hypervector::random(d, &mut rng);
        let want = rows
            .iter()
            .enumerate()
            .map(|(i, hv)| (reference::hamming(&probe, hv), i))
            .min()
            .map(|(_, i)| i)
            .unwrap();
        prop_assert_eq!(memory.nearest(&probe).unwrap().key, want);
        let parallel = memory
            .clone()
            .with_strategy(hdhash_hdc::SearchStrategy::Parallel { threads: 3 });
        prop_assert_eq!(parallel.nearest(&probe).unwrap().key, want);
    }
}
