//! Property-based tests for the compound encoders and the incremental
//! bundle accumulator.

use hdhash_hdc::accumulator::BundleAccumulator;
use hdhash_hdc::encoding::{encode_ngrams, encode_record, encode_sequence};
use hdhash_hdc::similarity::{cosine, hamming};
use hdhash_hdc::{Hypervector, Rng};
use proptest::prelude::*;

fn random_set(count: usize, d: usize, seed: u64) -> Vec<Hypervector> {
    let mut rng = Rng::new(seed);
    (0..count).map(|_| Hypervector::random(d, &mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequence encoding is deterministic and dimension-preserving.
    #[test]
    fn sequence_deterministic(seed in any::<u64>(), len in 1usize..8) {
        let symbols = random_set(len, 2048, seed);
        let refs: Vec<&Hypervector> = symbols.iter().collect();
        let a = encode_sequence(&refs).expect("dims");
        let b = encode_sequence(&refs).expect("dims");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.dimension(), 2048);
    }

    /// Swapping any two distinct positions changes the encoding
    /// substantially (order sensitivity).
    #[test]
    fn sequence_order_sensitivity(seed in any::<u64>(), len in 2usize..6) {
        let symbols = random_set(len, 4096, seed);
        let forward: Vec<&Hypervector> = symbols.iter().collect();
        let mut swapped = forward.clone();
        swapped.swap(0, len - 1);
        let a = encode_sequence(&forward).expect("dims");
        let b = encode_sequence(&swapped).expect("dims");
        // Identical symbols at swapped positions would be a no-op, but
        // independent random symbols collide with negligible probability.
        prop_assert!(hamming(&a, &b) > 1000, "swap changed too little");
    }

    /// Record encode/decode: every value decodes through its key better
    /// than through any other key.
    #[test]
    fn record_unbinding_selectivity(seed in any::<u64>(), fields in 2usize..6) {
        let keys = random_set(fields, 8192, seed ^ 1);
        let values = random_set(fields, 8192, seed ^ 2);
        let mut rng = Rng::new(seed ^ 3);
        let pairs: Vec<(&Hypervector, &Hypervector)> =
            keys.iter().zip(values.iter()).collect();
        let record = encode_record(&pairs, &mut rng).expect("dims");
        for (i, key) in keys.iter().enumerate() {
            let probe = record.xor(key).expect("dims");
            let own = cosine(&probe, &values[i]);
            for (j, other) in values.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        own > cosine(&probe, other),
                        "field {} decoded toward field {}", i, j
                    );
                }
            }
        }
    }

    /// N-gram profiles are insensitive to where a window sits in a longer
    /// repetition of the same pattern (approximate translation invariance).
    #[test]
    fn ngram_translation_tolerance(seed in any::<u64>()) {
        let symbols = random_set(4, 8192, seed);
        let mut rng = Rng::new(seed ^ 9);
        let stream: Vec<&Hypervector> =
            (0..16).map(|i| &symbols[i % 4]).collect();
        let early = encode_ngrams(&stream[..8], 2, &mut rng).expect("dims");
        let late = encode_ngrams(&stream[4..12], 2, &mut rng).expect("dims");
        // Same bigram statistics: encodings must correlate strongly.
        prop_assert!(cosine(&early, &late) > 0.3);
    }

    /// The accumulator is a commutative group action: any interleaving of
    /// adds/subtracts with a net-zero churn returns to baseline.
    #[test]
    fn accumulator_group_property(seed in any::<u64>(), churn in 1usize..6) {
        let base = random_set(3, 1024, seed);
        let extra = random_set(churn, 1024, seed ^ 7);
        let mut acc = BundleAccumulator::new(1024);
        for hv in &base {
            acc.add(hv).expect("dims");
        }
        let baseline = acc.clone();
        // Interleave: add all extras, then retract them in reverse.
        for hv in &extra {
            acc.add(hv).expect("dims");
        }
        for hv in extra.iter().rev() {
            acc.subtract(hv).expect("dims");
        }
        prop_assert_eq!(acc, baseline);
    }

    /// Accumulator thresholding agrees with one-shot majority for any odd
    /// member count.
    #[test]
    fn accumulator_majority_agreement(seed in any::<u64>(), k in 0usize..4) {
        let inputs = random_set(2 * k + 1, 2048, seed);
        let mut acc = BundleAccumulator::new(2048);
        for hv in &inputs {
            acc.add(hv).expect("dims");
        }
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let mut rng = Rng::new(seed);
        let majority = hdhash_hdc::ops::bundle(&refs, &mut rng).expect("dims");
        prop_assert_eq!(acc.to_hypervector(), majority);
    }

    /// Byte round-trip across arbitrary dimensions.
    #[test]
    fn hypervector_bytes_roundtrip(seed in any::<u64>(), d in 1usize..600) {
        let mut rng = Rng::new(seed);
        let hv = Hypervector::random(d, &mut rng);
        let back = Hypervector::from_bytes(d, &hv.to_bytes()).expect("roundtrip");
        prop_assert_eq!(back, hv);
    }
}
