//! Property-based tests for the HDC substrate invariants.

use hdhash_hdc::basis::{CircularBasis, FlipStrategy, LevelBasis, RandomBasis};
use hdhash_hdc::ops::{bind, bundle, permute, transformation};
use hdhash_hdc::similarity::{cosine, hamming, inverse_hamming};
use hdhash_hdc::{Hypervector, Rng};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![Just(64usize), Just(65), 2usize..512, Just(1000)]
}

proptest! {
    /// Bind is an involution: (a ⊕ b) ⊕ b = a.
    #[test]
    fn bind_involution(seed in any::<u64>(), d in dims()) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        let b = Hypervector::random(d, &mut rng);
        let roundtrip = bind(&bind(&a, &b).unwrap(), &b).unwrap();
        prop_assert_eq!(roundtrip, a);
    }

    /// Bind is commutative and associative.
    #[test]
    fn bind_algebra(seed in any::<u64>(), d in dims()) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        let b = Hypervector::random(d, &mut rng);
        let c = Hypervector::random(d, &mut rng);
        prop_assert_eq!(bind(&a, &b).unwrap(), bind(&b, &a).unwrap());
        let left = bind(&bind(&a, &b).unwrap(), &c).unwrap();
        let right = bind(&a, &bind(&b, &c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Binding preserves pairwise distance.
    #[test]
    fn bind_isometry(seed in any::<u64>(), d in dims()) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        let b = Hypervector::random(d, &mut rng);
        let c = Hypervector::random(d, &mut rng);
        let before = hamming(&a, &b);
        let after = hamming(&bind(&a, &c).unwrap(), &bind(&b, &c).unwrap());
        prop_assert_eq!(before, after);
    }

    /// Hamming distance is a metric: symmetry + triangle inequality.
    #[test]
    fn hamming_is_metric(seed in any::<u64>(), d in dims()) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        let b = Hypervector::random(d, &mut rng);
        let c = Hypervector::random(d, &mut rng);
        prop_assert_eq!(hamming(&a, &b), hamming(&b, &a));
        prop_assert!(hamming(&a, &c) <= hamming(&a, &b) + hamming(&b, &c));
        prop_assert_eq!(hamming(&a, &a), 0);
    }

    /// Similarity bounds: inverse Hamming in [0,1], cosine in [-1,1], and
    /// the affine relation between them holds exactly.
    #[test]
    fn similarity_bounds(seed in any::<u64>(), d in dims()) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        let b = Hypervector::random(d, &mut rng);
        let ih = inverse_hamming(&a, &b);
        let cs = cosine(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ih));
        prop_assert!((-1.0..=1.0).contains(&cs));
        prop_assert!((cs - (2.0 * ih - 1.0)).abs() < 1e-12);
    }

    /// Permutation is a weight-preserving bijection with inverse rotation.
    #[test]
    fn permute_bijection(seed in any::<u64>(), d in dims(), shift in 0usize..2000) {
        let mut rng = Rng::new(seed);
        let a = Hypervector::random(d, &mut rng);
        let p = permute(&a, shift);
        prop_assert_eq!(p.count_ones(), a.count_ones());
        prop_assert_eq!(permute(&p, d - (shift % d)), a);
    }

    /// A transformation-hypervector has exactly the requested weight and
    /// moves a vector exactly that far.
    #[test]
    fn transformation_weight(seed in any::<u64>(), d in 8usize..512, frac in 0usize..8) {
        let mut rng = Rng::new(seed);
        let flips = (d * frac / 8).min(d);
        let t = transformation(d, flips, &mut rng);
        prop_assert_eq!(t.count_ones(), flips);
        let a = Hypervector::random(d, &mut rng);
        prop_assert_eq!(hamming(&a, &bind(&a, &t).unwrap()), flips);
    }

    /// Bundling odd sets: the majority is at least as close to every input
    /// as a random vector would be (distance strictly below d/2 + slack).
    #[test]
    fn bundle_similar_to_inputs(seed in any::<u64>(), k in 1usize..4) {
        let d = 2048;
        let count = 2 * k + 1;
        let mut rng = Rng::new(seed);
        let inputs: Vec<Hypervector> = (0..count).map(|_| Hypervector::random(d, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let m = bundle(&refs, &mut rng).unwrap();
        for hv in &inputs {
            prop_assert!(hamming(&m, hv) < d / 2);
        }
    }

    /// Circular bases close the circle and are symmetric for any even n,
    /// with either strategy.
    #[test]
    fn circular_invariants(seed in any::<u64>(), half in 1usize..12, literal in any::<bool>()) {
        let n = 2 * half;
        let d = 4096;
        let mut rng = Rng::new(seed);
        let strategy = if literal {
            CircularBasis::paper_strategy(n, d)
        } else {
            FlipStrategy::Partition
        };
        let basis = CircularBasis::generate_with_strategy(n, d, strategy, &mut rng).unwrap();
        prop_assert_eq!(basis.len(), n);
        // Every member has the right dimension; wraparound edge exists.
        let wrap = hamming(&basis[n - 1], &basis[0]);
        let step = hamming(&basis[0], &basis[1]);
        // Both edges are single transformations: comparable weight.
        let tol = d / 8;
        prop_assert!(wrap <= step + tol && step <= wrap + tol,
            "wrap {} vs step {}", wrap, step);
    }

    /// Odd-cardinality circular sets obey the footnote and stay circular.
    #[test]
    fn circular_odd_footnote(seed in any::<u64>(), k in 1usize..8) {
        let n = 2 * k + 1;
        let d = 8192;
        let mut rng = Rng::new(seed);
        let basis = CircularBasis::generate(n, d, &mut rng).unwrap();
        prop_assert_eq!(basis.len(), n);
        let p: Vec<f64> = (0..n).map(|j| cosine(&basis[0], &basis[j])).collect();
        // Circular symmetry within loose tolerance.
        for j in 1..n {
            prop_assert!((p[j] - p[n - j]).abs() < 0.15, "profile {:?}", p);
        }
    }

    /// Level bases are monotone (partition strategy: exactly).
    #[test]
    fn level_monotone(seed in any::<u64>(), m in 2usize..16) {
        let d = 4096;
        let mut rng = Rng::new(seed);
        let basis = LevelBasis::generate(m, d, &mut rng).unwrap();
        let dists: Vec<usize> = (0..m).map(|j| hamming(&basis[0], &basis[j])).collect();
        for w in dists.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert_eq!(*dists.last().unwrap(), d / 2);
    }

    /// Random bases stay quasi-orthogonal.
    #[test]
    fn random_basis_orthogonality(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let basis = RandomBasis::generate(8, 8192, &mut rng).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                prop_assert!(cosine(&basis[i], &basis[j]).abs() < 0.1);
            }
        }
    }
}
