//! Deterministic randomness for the HDC substrate.
//!
//! Every randomized construction in this crate (basis generation, noise
//! injection) is driven by this splittable SplitMix64-based generator so
//! that experiments are reproducible bit-for-bit from a single 64-bit seed.

use hdhash_hashfn::SplitMix64;

/// A deterministic, splittable random generator.
///
/// Thin wrapper over [`SplitMix64`] adding the sampling helpers the HDC
/// constructions need (distinct index sampling, Bernoulli trials, shuffles).
///
/// # Examples
///
/// ```
/// use hdhash_hdc::Rng;
///
/// let mut rng = Rng::new(42);
/// let picks = rng.distinct_indices(5, 100);
/// assert_eq!(picks.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    inner: SplitMix64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { inner: SplitMix64::new(seed) }
    }

    /// Returns the next pseudo-random word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform value below `bound` (rejection sampled, no bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Splits off a statistically independent child generator.
    pub fn split(&mut self) -> Self {
        Self { inner: self.inner.split() }
    }

    /// Samples `k` *distinct* indices from `0..n` (Floyd's algorithm).
    ///
    /// The result is not sorted; order is part of the deterministic output.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn distinct_indices(&mut self, k: usize, n: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        // Floyd's sampling: O(k) expected insertions.
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_below((j + 1) as u64) as usize;
            if chosen.insert(t) {
                out.push(t);
            } else {
                chosen.insert(j);
                out.push(j);
            }
        }
        out
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }
}

impl Default for Rng {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut rng = Rng::new(3);
        for (k, n) in [(0usize, 10usize), (1, 1), (5, 5), (10, 100), (100, 128)] {
            let picks = rng.distinct_indices(k, n);
            assert_eq!(picks.len(), k);
            let set: std::collections::HashSet<_> = picks.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates for k={k} n={n}");
            assert!(picks.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn distinct_indices_full_range_is_permutation() {
        let mut rng = Rng::new(11);
        let mut picks = rng.distinct_indices(64, 64);
        picks.sort_unstable();
        assert_eq!(picks, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn distinct_indices_oversample_panics() {
        Rng::new(0).distinct_indices(11, 10);
    }

    #[test]
    fn distinct_indices_cover_space_over_draws() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 32];
        for _ in 0..200 {
            for i in rng.distinct_indices(4, 32) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(17);
        let mut data: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(data, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::new(23);
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn split_decorrelates() {
        let mut parent = Rng::new(1);
        let mut a = parent.split();
        let mut b = parent.split();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
