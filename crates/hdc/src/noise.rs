//! Bit-error injection into stored hypervectors.
//!
//! The paper's robustness experiments (Figures 5 and 6) flip bits of the
//! values an algorithm keeps in memory. For HD hashing the vulnerable
//! state is the stored hypervectors themselves; this module corrupts an
//! [`AssociativeMemory`] in the two patterns the paper cites from the
//! DRAM-failure literature:
//!
//! * **single-event upsets (SEU)** — independent single-bit flips at
//!   uniformly random positions ([`flip_random_bits`]);
//! * **multi-cell upsets (MCU / burst errors)** — a run of adjacent bits
//!   flipped by one event ([`flip_burst`]), increasingly common at small
//!   feature sizes (45% of SEUs at 22 nm per Ibe et al.).

use crate::memory::AssociativeMemory;
use crate::rng::Rng;

/// Flips `count` bits at uniformly random (entry, position) coordinates of
/// the memory — the SEU model.
///
/// Returns the number of bits actually flipped (zero for an empty memory).
pub fn flip_random_bits<K: Clone + Send + Sync>(
    memory: &mut AssociativeMemory<K>,
    count: usize,
    rng: &mut Rng,
) -> usize {
    if memory.is_empty() {
        return 0;
    }
    let entries = memory.len();
    let d = memory.dimension();
    for _ in 0..count {
        let entry = rng.next_below(entries as u64) as usize;
        let bit = rng.next_below(d as u64) as usize;
        memory.flip_entry_bit(entry, bit);
    }
    count
}

/// Flips a burst of `length` *adjacent* bits starting at a random position
/// within one random entry — the MCU model.
///
/// The burst is truncated at the end of the hypervector (physical bursts do
/// not wrap across words of unrelated data). Returns the number of bits
/// actually flipped.
pub fn flip_burst<K: Clone + Send + Sync>(
    memory: &mut AssociativeMemory<K>,
    length: usize,
    rng: &mut Rng,
) -> usize {
    if memory.is_empty() || length == 0 {
        return 0;
    }
    let d = memory.dimension();
    let entry = rng.next_below(memory.len() as u64) as usize;
    let start = rng.next_below(d as u64) as usize;
    let end = (start + length).min(d);
    for bit in start..end {
        memory.flip_entry_bit(entry, bit);
    }
    end - start
}

/// The burst-size mixture reported by Ibe et al. for 22 nm SRAM: returns a
/// burst length sampled as 1 (89%), 4 (10%) or 8 (1%) bits.
pub fn ibe_burst_length(rng: &mut Rng) -> usize {
    let x = rng.next_f64();
    if x < 0.01 {
        8
    } else if x < 0.11 {
        4
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervector::Hypervector;

    fn memory_with(n: usize, d: usize) -> AssociativeMemory<usize> {
        let mut rng = Rng::new(7);
        let mut mem = AssociativeMemory::new(d);
        for i in 0..n {
            mem.insert(i, Hypervector::random(d, &mut rng)).expect("dims");
        }
        mem
    }

    fn total_distance(a: &AssociativeMemory<usize>, b: &AssociativeMemory<usize>) -> usize {
        a.iter()
            .zip(b.iter())
            .map(|((_, x), (_, y))| x.hamming_distance(y))
            .sum()
    }

    #[test]
    fn seu_flips_expected_count() {
        let clean = memory_with(8, 1024);
        let mut noisy = clean.clone();
        let mut rng = Rng::new(100);
        let flipped = flip_random_bits(&mut noisy, 10, &mut rng);
        assert_eq!(flipped, 10);
        // Collisions (same coordinate twice) are possible but vanishingly
        // rare at this size; distance equals the injected count.
        assert_eq!(total_distance(&clean, &noisy), 10);
    }

    #[test]
    fn burst_is_contiguous_in_one_entry() {
        let clean = memory_with(4, 4096);
        let mut noisy = clean.clone();
        let mut rng = Rng::new(101);
        let flipped = flip_burst(&mut noisy, 10, &mut rng);
        assert!((1..=10).contains(&flipped));
        // Exactly one entry was touched.
        let touched: Vec<usize> = clean
            .iter()
            .zip(noisy.iter())
            .enumerate()
            .filter(|(_, ((_, x), (_, y)))| x != y)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(touched.len(), 1);
        // And the flipped bits are contiguous.
        let idx = touched[0];
        let before = clean.iter().nth(idx).expect("entry").1.clone();
        let after = noisy.iter().nth(idx).expect("entry").1.clone();
        let mut positions: Vec<usize> =
            (0..4096).filter(|&b| before.bit(b) != after.bit(b)).collect();
        positions.sort_unstable();
        assert_eq!(positions.len(), flipped);
        for w in positions.windows(2) {
            assert_eq!(w[1], w[0] + 1, "burst not contiguous: {positions:?}");
        }
    }

    #[test]
    fn burst_truncates_at_boundary() {
        let mut mem = memory_with(1, 64);
        // Try many seeds; whenever the start lands near the end, the burst
        // must truncate rather than wrap.
        for seed in 0..50 {
            let mut noisy = mem.clone();
            let mut rng = Rng::new(seed);
            let flipped = flip_burst(&mut noisy, 16, &mut rng);
            assert!((1..=16).contains(&flipped));
        }
        let _ = flip_random_bits(&mut mem, 0, &mut Rng::new(0));
    }

    #[test]
    fn empty_memory_is_noop() {
        let mut mem: AssociativeMemory<usize> = AssociativeMemory::new(128);
        let mut rng = Rng::new(3);
        assert_eq!(flip_random_bits(&mut mem, 5, &mut rng), 0);
        assert_eq!(flip_burst(&mut mem, 5, &mut rng), 0);
    }

    #[test]
    fn zero_length_burst_is_noop() {
        let clean = memory_with(2, 128);
        let mut noisy = clean.clone();
        assert_eq!(flip_burst(&mut noisy, 0, &mut Rng::new(9)), 0);
        assert_eq!(total_distance(&clean, &noisy), 0);
    }

    #[test]
    fn ibe_mixture_proportions() {
        let mut rng = Rng::new(500);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(ibe_burst_length(&mut rng)).or_insert(0usize) += 1;
        }
        let one = counts[&1] as f64 / 10_000.0;
        let four = counts[&4] as f64 / 10_000.0;
        let eight = counts[&8] as f64 / 10_000.0;
        assert!((one - 0.89).abs() < 0.02, "P(1)={one}");
        assert!((four - 0.10).abs() < 0.02, "P(4)={four}");
        assert!((eight - 0.01).abs() < 0.01, "P(8)={eight}");
    }

    #[test]
    fn noise_does_not_change_inference_at_scale() {
        // The paper's core robustness claim in miniature: ≤10 flipped bits
        // in 10k-dimensional storage never change the arg-max.
        let mut rng = Rng::new(102);
        let mut mem = AssociativeMemory::new(10_000);
        let mut probes = Vec::new();
        for i in 0..16usize {
            let hv = Hypervector::random(10_000, &mut rng);
            mem.insert(i, hv.clone()).expect("dims");
            probes.push(hv);
        }
        let mut noisy = mem.clone();
        flip_random_bits(&mut noisy, 10, &mut rng);
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(noisy.nearest(probe).expect("non-empty").key, i);
        }
    }
}
