//! Random basis-hypervectors: independent uniform samples.
//!
//! Used for categorical information with no inherent correlation (the
//! paper's example: letters). Any two members are quasi-orthogonal with
//! overwhelming probability — pairwise cosine similarity concentrates
//! around `0` with standard deviation `1/√d`.

use super::{basis_accessors, BasisError};
use crate::hypervector::Hypervector;
use crate::rng::Rng;

/// A set of independently sampled random hypervectors.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{basis::RandomBasis, similarity::cosine, Rng};
///
/// let mut rng = Rng::new(5);
/// let basis = RandomBasis::generate(12, 10_000, &mut rng)?;
/// let sim = cosine(&basis[0], &basis[1]);
/// assert!(sim.abs() < 0.05);
/// # Ok::<(), hdhash_hdc::basis::BasisError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomBasis {
    hypervectors: Vec<Hypervector>,
    dimension: usize,
}

impl RandomBasis {
    /// Generates `n` independent random hypervectors of dimension `d`.
    ///
    /// # Errors
    ///
    /// * [`BasisError::CardinalityTooSmall`] if `n == 0`;
    /// * [`BasisError::DimensionTooSmall`] if `d == 0`.
    pub fn generate(n: usize, d: usize, rng: &mut Rng) -> Result<Self, BasisError> {
        if n == 0 {
            return Err(BasisError::CardinalityTooSmall { requested: n, minimum: 1 });
        }
        if d == 0 {
            return Err(BasisError::DimensionTooSmall { dimension: d, cardinality: n });
        }
        let hypervectors = (0..n).map(|_| Hypervector::random(d, rng)).collect();
        Ok(Self { hypervectors, dimension: d })
    }
}

basis_accessors!(RandomBasis);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine;

    #[test]
    fn members_are_quasi_orthogonal() {
        let mut rng = Rng::new(50);
        let basis = RandomBasis::generate(12, 10_000, &mut rng).expect("valid");
        for i in 0..12 {
            for j in 0..12 {
                let sim = cosine(&basis[i], &basis[j]);
                if i == j {
                    assert_eq!(sim, 1.0);
                } else {
                    assert!(sim.abs() < 0.06, "|cos({i},{j})| = {}", sim.abs());
                }
            }
        }
    }

    #[test]
    fn zero_cardinality_rejected() {
        let mut rng = Rng::new(0);
        assert_eq!(
            RandomBasis::generate(0, 100, &mut rng),
            Err(BasisError::CardinalityTooSmall { requested: 0, minimum: 1 })
        );
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut rng = Rng::new(0);
        assert!(matches!(
            RandomBasis::generate(3, 0, &mut rng),
            Err(BasisError::DimensionTooSmall { .. })
        ));
    }

    #[test]
    fn accessors_work() {
        let mut rng = Rng::new(51);
        let basis = RandomBasis::generate(4, 128, &mut rng).expect("valid");
        assert_eq!(basis.len(), 4);
        assert!(!basis.is_empty());
        assert_eq!(basis.dimension(), 128);
        assert!(basis.get(3).is_some());
        assert!(basis.get(4).is_none());
        let hvs = basis.clone().into_hypervectors();
        assert_eq!(hvs.len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RandomBasis::generate(3, 256, &mut Rng::new(7)).expect("valid");
        let b = RandomBasis::generate(3, 256, &mut Rng::new(7)).expect("valid");
        assert_eq!(a, b);
    }
}
