//! Level basis-hypervectors: linear correlation for scalar data.
//!
//! "Level-hypervectors are created by quantizing an interval to `m` levels
//! and assigning a hypervector to each. […] a random `d`-dimensional
//! hypervector [is assigned] to the first interval, and after this,
//! subsequent intervals are obtained by flipping `d/m` random bits at each
//! interval. As a result, the last hypervector is completely dissimilar to
//! the first one." (paper, Section 4)
//!
//! Similarity between levels decays with the distance between them; unlike
//! [`CircularBasis`](super::CircularBasis) there *is* a discontinuity
//! between the last and first level — removing it is exactly what
//! circular-hypervectors contribute.

use super::{basis_accessors, partition_chunks, BasisError, FlipStrategy};
use crate::hypervector::Hypervector;
use crate::ops::transformation;
use crate::rng::Rng;

/// A chain of `m` level-correlated hypervectors.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{basis::LevelBasis, similarity::cosine, Rng};
///
/// let mut rng = Rng::new(9);
/// let levels = LevelBasis::generate(12, 10_000, &mut rng)?;
/// // Similarity decays with level distance…
/// assert!(cosine(&levels[0], &levels[1]) > cosine(&levels[0], &levels[6]));
/// // …and the extremes are quasi-orthogonal ("completely dissimilar").
/// assert!(cosine(&levels[0], &levels[11]).abs() < 0.05);
/// # Ok::<(), hdhash_hdc::basis::BasisError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelBasis {
    hypervectors: Vec<Hypervector>,
    dimension: usize,
    strategy: FlipStrategy,
}

impl LevelBasis {
    /// Generates `m` levels of dimension `d` with the default
    /// [`FlipStrategy::Partition`] (exactly linear similarity profile).
    ///
    /// # Errors
    ///
    /// See [`LevelBasis::generate_with_strategy`].
    pub fn generate(m: usize, d: usize, rng: &mut Rng) -> Result<Self, BasisError> {
        Self::generate_with_strategy(m, d, FlipStrategy::Partition, rng)
    }

    /// Generates `m` levels of dimension `d` with an explicit strategy.
    ///
    /// With [`FlipStrategy::Independent`] this is the paper's literal
    /// construction: each of the `m − 1` steps flips `flips_per_step`
    /// independently sampled bits. With [`FlipStrategy::Partition`] a random
    /// `d/2`-subset of positions is partitioned over the steps so the last
    /// level is *exactly* quasi-orthogonal to the first.
    ///
    /// # Errors
    ///
    /// * [`BasisError::CardinalityTooSmall`] if `m < 2`;
    /// * [`BasisError::DimensionTooSmall`] if `d < m`;
    /// * [`BasisError::FlipsExceedDimension`] if an independent strategy
    ///   requests more flips than `d`.
    pub fn generate_with_strategy(
        m: usize,
        d: usize,
        strategy: FlipStrategy,
        rng: &mut Rng,
    ) -> Result<Self, BasisError> {
        if m < 2 {
            return Err(BasisError::CardinalityTooSmall { requested: m, minimum: 2 });
        }
        if d < m {
            return Err(BasisError::DimensionTooSmall { dimension: d, cardinality: m });
        }

        let mut hypervectors = Vec::with_capacity(m);
        hypervectors.push(Hypervector::random(d, rng));

        match strategy {
            FlipStrategy::Independent { flips_per_step } => {
                if flips_per_step > d {
                    return Err(BasisError::FlipsExceedDimension {
                        flips: flips_per_step,
                        dimension: d,
                    });
                }
                for _ in 1..m {
                    let t = transformation(d, flips_per_step, rng);
                    let next = hypervectors
                        .last()
                        .expect("non-empty")
                        .xor(&t)
                        .expect("same dimension");
                    hypervectors.push(next);
                }
            }
            FlipStrategy::Partition => {
                let span = rng.distinct_indices(d / 2, d);
                let chunks = partition_chunks(&span, m - 1);
                for chunk in chunks {
                    let mut next = hypervectors.last().expect("non-empty").clone();
                    next.flip_bits(chunk);
                    hypervectors.push(next);
                }
            }
        }

        Ok(Self { hypervectors, dimension: d, strategy })
    }

    /// The paper's per-step flip count, `d/m`, as an `Independent` strategy.
    #[must_use]
    pub fn paper_strategy(m: usize, d: usize) -> FlipStrategy {
        FlipStrategy::Independent { flips_per_step: (d / m).max(1) }
    }

    /// The strategy this basis was built with.
    #[must_use]
    pub fn strategy(&self) -> FlipStrategy {
        self.strategy
    }
}

basis_accessors!(LevelBasis);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{cosine, hamming};

    #[test]
    fn partition_profile_is_exactly_linear() {
        let mut rng = Rng::new(60);
        let m = 11;
        let d = 10_000;
        let levels = LevelBasis::generate(m, d, &mut rng).expect("valid");
        // Cumulative distance from level 0 grows by |chunk| each step and
        // reaches exactly d/2 at the last level.
        assert_eq!(hamming(&levels[0], &levels[m - 1]), d / 2);
        let mut prev = 0;
        for i in 1..m {
            let dist = hamming(&levels[0], &levels[i]);
            assert!(dist > prev, "distance must strictly grow");
            prev = dist;
        }
    }

    #[test]
    fn similarity_decreases_with_level_distance() {
        let mut rng = Rng::new(61);
        let levels = LevelBasis::generate(12, 10_000, &mut rng).expect("valid");
        for i in 0..12usize {
            for j in 0..12usize {
                for k in 0..12usize {
                    if i.abs_diff(j) < i.abs_diff(k) {
                        assert!(
                            cosine(&levels[i], &levels[j]) > cosine(&levels[i], &levels[k]),
                            "sim({i},{j}) should exceed sim({i},{k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn has_endpoint_discontinuity_unlike_circular() {
        // The defining gap that circular-hypervectors remove: first and
        // last levels are quasi-orthogonal, NOT similar.
        let mut rng = Rng::new(62);
        let levels = LevelBasis::generate(12, 10_000, &mut rng).expect("valid");
        let wraparound = cosine(&levels[0], &levels[11]);
        let neighbour = cosine(&levels[0], &levels[1]);
        assert!(neighbour > 0.8);
        assert!(wraparound.abs() < 0.05, "wraparound similarity {wraparound}");
    }

    #[test]
    fn paper_strategy_monotone_in_expectation() {
        let mut rng = Rng::new(63);
        let m = 12;
        let d = 10_000;
        let strategy = LevelBasis::paper_strategy(m, d);
        assert_eq!(strategy, FlipStrategy::Independent { flips_per_step: d / m });
        let levels =
            LevelBasis::generate_with_strategy(m, d, strategy, &mut rng).expect("valid");
        // With independent flips, distance from level 0 must be
        // non-decreasing in expectation; allow small local noise.
        let d0: Vec<usize> = (0..m).map(|i| hamming(&levels[0], &levels[i])).collect();
        for w in d0.windows(2) {
            assert!(w[1] + 400 > w[0], "profile collapsed: {d0:?}");
        }
        // "Completely dissimilar": similarity of extremes well below
        // neighbours.
        assert!(cosine(&levels[0], &levels[m - 1]) < 0.35);
    }

    #[test]
    fn validation_errors() {
        let mut rng = Rng::new(64);
        assert!(matches!(
            LevelBasis::generate(1, 100, &mut rng),
            Err(BasisError::CardinalityTooSmall { .. })
        ));
        assert!(matches!(
            LevelBasis::generate(10, 5, &mut rng),
            Err(BasisError::DimensionTooSmall { .. })
        ));
        assert!(matches!(
            LevelBasis::generate_with_strategy(
                4,
                100,
                FlipStrategy::Independent { flips_per_step: 101 },
                &mut rng
            ),
            Err(BasisError::FlipsExceedDimension { .. })
        ));
    }

    #[test]
    fn strategy_accessor() {
        let mut rng = Rng::new(65);
        let basis = LevelBasis::generate(4, 256, &mut rng).expect("valid");
        assert_eq!(basis.strategy(), FlipStrategy::Partition);
    }
}
