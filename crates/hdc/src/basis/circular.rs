//! Circular basis-hypervectors — the paper's novel encoding (Algorithm 1).
//!
//! Circular-hypervectors extend level-hypervectors by eliminating the
//! similarity discontinuity between the last and the first element: the set
//! has *circular* correlation, i.e. similarity is a function of circular
//! distance only. They are the core component of HD hashing, providing the
//! mechanism that maps requests to the nearest server on the circle.
//!
//! ## Construction
//!
//! Following Algorithm 1 and Figure 3 of the paper: start from a uniformly
//! random hypervector `c₁`; perform forward transformations (`T`) — binding
//! with freshly sampled sparse transformation-hypervectors `t`, which are
//! pushed into a FIFO queue `Q` — to create the first half of the circle;
//! then perform backward transformations (`T⁻¹`) — binding with vectors
//! popped from `Q` — to create the second half. Because binding is an
//! involution, re-applying the early transformations *removes* them again,
//! which walks the similarity back up toward `c₁` and closes the circle:
//! the final queue entry is exactly the edge `cₙ → c₁`.
//!
//! For a set of **odd** cardinality the paper's footnote applies: generate
//! `2n` circular hypervectors and keep every other one.

use super::{basis_accessors, partition_chunks, BasisError, FlipStrategy};
use crate::hypervector::Hypervector;
use crate::ops::transformation;
use crate::rng::Rng;

/// A set of `n` hypervectors with circular correlation structure.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{basis::CircularBasis, similarity::cosine, Rng};
///
/// let mut rng = Rng::new(2);
/// let circle = CircularBasis::generate(12, 10_000, &mut rng)?;
/// // No discontinuity: the last element is as similar to the first as any
/// // other pair of neighbours on the circle.
/// let wrap = cosine(&circle[11], &circle[0]);
/// let step = cosine(&circle[0], &circle[1]);
/// assert!((wrap - step).abs() < 0.1);
/// # Ok::<(), hdhash_hdc::basis::BasisError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularBasis {
    hypervectors: Vec<Hypervector>,
    dimension: usize,
    strategy: FlipStrategy,
}

impl CircularBasis {
    /// Generates `n` circular hypervectors of dimension `d` with the default
    /// [`FlipStrategy::Partition`] (exactly circular similarity profile).
    ///
    /// # Errors
    ///
    /// See [`CircularBasis::generate_with_strategy`].
    pub fn generate(n: usize, d: usize, rng: &mut Rng) -> Result<Self, BasisError> {
        Self::generate_with_strategy(n, d, FlipStrategy::Partition, rng)
    }

    /// Generates `n` circular hypervectors of dimension `d`.
    ///
    /// Even `n` follows Algorithm 1 directly. Odd `n` follows the paper's
    /// footnote: generate `2n` and keep `{c₁, c₃, c₅, …}`.
    ///
    /// # Errors
    ///
    /// * [`BasisError::CardinalityTooSmall`] if `n < 2`;
    /// * [`BasisError::DimensionTooSmall`] if `d < 2·n`;
    /// * [`BasisError::FlipsExceedDimension`] if an independent strategy
    ///   requests more flips than `d`.
    pub fn generate_with_strategy(
        n: usize,
        d: usize,
        strategy: FlipStrategy,
        rng: &mut Rng,
    ) -> Result<Self, BasisError> {
        if n < 2 {
            return Err(BasisError::CardinalityTooSmall { requested: n, minimum: 2 });
        }
        if d < 2 * n {
            return Err(BasisError::DimensionTooSmall { dimension: d, cardinality: n });
        }

        if n % 2 == 1 {
            // Footnote 1: generate 2n and return every other hypervector.
            let doubled = Self::generate_even(2 * n, d, strategy, rng)?;
            let hypervectors = doubled
                .hypervectors
                .into_iter()
                .step_by(2)
                .collect::<Vec<_>>();
            debug_assert_eq!(hypervectors.len(), n);
            return Ok(Self { hypervectors, dimension: d, strategy });
        }

        Self::generate_even(n, d, strategy, rng)
    }

    /// Algorithm 1 for even `n`.
    fn generate_even(
        n: usize,
        d: usize,
        strategy: FlipStrategy,
        rng: &mut Rng,
    ) -> Result<Self, BasisError> {
        debug_assert!(n.is_multiple_of(2));
        let half = n / 2;

        // Pre-draw the `half` transformation-hypervectors. The FIFO queue
        // semantics of Algorithm 1 reduce to: forward steps apply
        // t_1 … t_{half}, backward steps re-apply t_1 … t_{half−1}; the
        // remaining t_{half} is the (implicit) closing edge c_n → c_1.
        let transforms: Vec<Hypervector> = match strategy {
            FlipStrategy::Independent { flips_per_step } => {
                if flips_per_step > d {
                    return Err(BasisError::FlipsExceedDimension {
                        flips: flips_per_step,
                        dimension: d,
                    });
                }
                (0..half).map(|_| transformation(d, flips_per_step, rng)).collect()
            }
            FlipStrategy::Partition => {
                // A random d/2-subset partitioned over the half-circle:
                // antipodal elements end up exactly d/2 apart (cosine 0).
                let span = rng.distinct_indices(d / 2, d);
                partition_chunks(&span, half)
                    .into_iter()
                    .map(|chunk| {
                        let mut t = Hypervector::zeros(d);
                        t.flip_bits(chunk);
                        t
                    })
                    .collect()
            }
        };

        let mut hypervectors = Vec::with_capacity(n);
        hypervectors.push(Hypervector::random(d, rng));

        // Forward transformations (T): c_{i+1} = c_i ⊕ t_i, enqueueing each t.
        let mut queue = std::collections::VecDeque::with_capacity(half);
        for t in &transforms {
            let next = hypervectors.last().expect("non-empty").xor(t).expect("same dim");
            hypervectors.push(next);
            queue.push_back(t);
        }

        // Backward transformations (T⁻¹): pop from Q (FIFO) and re-bind,
        // cancelling the early transformations one by one. We need n − 1
        // total edges; `half − 1` remain.
        for _ in 0..half - 1 {
            let t = queue.pop_front().expect("queue holds half transforms");
            let next = hypervectors.last().expect("non-empty").xor(t).expect("same dim");
            hypervectors.push(next);
        }
        debug_assert_eq!(hypervectors.len(), n);

        // The final queued transformation is exactly the closing edge:
        // c_n ⊕ t_half = c_1. This is what makes the set circular.
        debug_assert_eq!(
            hypervectors
                .last()
                .expect("non-empty")
                .xor(queue.pop_front().expect("one left"))
                .expect("same dim"),
            hypervectors[0],
            "circle failed to close"
        );

        Ok(Self { hypervectors, dimension: d, strategy })
    }

    /// The paper's per-step flip count `d/m` with `m = n`, as an
    /// `Independent` strategy.
    #[must_use]
    pub fn paper_strategy(n: usize, d: usize) -> FlipStrategy {
        FlipStrategy::Independent { flips_per_step: (d / n).max(1) }
    }

    /// The strategy this basis was built with.
    #[must_use]
    pub fn strategy(&self) -> FlipStrategy {
        self.strategy
    }

    /// Circular distance between indices `i` and `j` on this basis.
    #[must_use]
    pub fn circular_distance(&self, i: usize, j: usize) -> usize {
        let n = self.hypervectors.len();
        let diff = (i % n).abs_diff(j % n);
        diff.min(n - diff)
    }
}

basis_accessors!(CircularBasis);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{cosine, hamming};

    #[test]
    fn partition_profile_is_exactly_circular() {
        let mut rng = Rng::new(70);
        let n = 12;
        let d = 10_008; // divisible by n for exact chunk sizes
        let circle = CircularBasis::generate(n, d, &mut rng).expect("valid");
        // Distance depends only on circular index distance.
        for i in 0..n {
            for j in 0..n {
                let dist = hamming(&circle[i], &circle[j]);
                let k = circle.circular_distance(i, j);
                let expected = k * (d / 2) / (n / 2);
                assert_eq!(dist, expected, "pair ({i},{j}) circ-dist {k}");
            }
        }
    }

    #[test]
    fn no_wraparound_discontinuity() {
        let mut rng = Rng::new(71);
        let n = 16;
        let circle = CircularBasis::generate(n, 10_000, &mut rng).expect("valid");
        let step = cosine(&circle[0], &circle[1]);
        let wrap = cosine(&circle[n - 1], &circle[0]);
        assert!((step - wrap).abs() < 0.02, "step {step} vs wrap {wrap}");
    }

    #[test]
    fn antipodes_are_quasi_orthogonal() {
        let mut rng = Rng::new(72);
        let n = 12;
        let circle = CircularBasis::generate(n, 10_000, &mut rng).expect("valid");
        for i in 0..n {
            let sim = cosine(&circle[i], &circle[(i + n / 2) % n]);
            assert!(sim.abs() < 0.02, "antipode similarity {sim}");
        }
    }

    #[test]
    fn odd_cardinality_footnote() {
        let mut rng = Rng::new(73);
        let n = 13;
        let circle = CircularBasis::generate(n, 10_010, &mut rng).expect("valid");
        assert_eq!(circle.len(), n);
        // Still circular: similarity profile symmetric around the circle.
        let step0 = hamming(&circle[0], &circle[1]);
        let wrap = hamming(&circle[n - 1], &circle[0]);
        let d = 10_010f64;
        assert!(
            ((step0 as f64 - wrap as f64) / d).abs() < 0.05,
            "odd-n wraparound broke: {step0} vs {wrap}"
        );
    }

    #[test]
    fn paper_independent_strategy_closes_circle() {
        // XOR cancellation closes the circle exactly even when the flips of
        // different steps overlap — a structural property of Algorithm 1.
        let mut rng = Rng::new(74);
        let n = 10;
        let d = 1000;
        let strategy = CircularBasis::paper_strategy(n, d);
        let circle =
            CircularBasis::generate_with_strategy(n, d, strategy, &mut rng).expect("valid");
        // Wrap edge weight equals one transformation weight (~d/n).
        let wrap = hamming(&circle[n - 1], &circle[0]);
        assert_eq!(wrap, d / n);
    }

    #[test]
    fn independent_profile_monotone_to_antipode() {
        let mut rng = Rng::new(75);
        let n = 16;
        let d = 10_000;
        let circle = CircularBasis::generate_with_strategy(
            n,
            d,
            CircularBasis::paper_strategy(n, d),
            &mut rng,
        )
        .expect("valid");
        let dists: Vec<usize> = (0..=n / 2).map(|k| hamming(&circle[0], &circle[k])).collect();
        for w in dists.windows(2) {
            assert!(w[1] + 100 > w[0], "profile should rise to the antipode: {dists:?}");
        }
    }

    #[test]
    fn minimum_cardinality_circle() {
        let mut rng = Rng::new(76);
        let circle = CircularBasis::generate(2, 100, &mut rng).expect("valid");
        assert_eq!(circle.len(), 2);
        // One partition chunk of size d/2 = 50 separates the two members.
        assert_eq!(hamming(&circle[0], &circle[1]), 50);
    }

    #[test]
    fn validation_errors() {
        let mut rng = Rng::new(77);
        assert!(matches!(
            CircularBasis::generate(1, 100, &mut rng),
            Err(BasisError::CardinalityTooSmall { .. })
        ));
        assert!(matches!(
            CircularBasis::generate(100, 100, &mut rng),
            Err(BasisError::DimensionTooSmall { .. })
        ));
        assert!(matches!(
            CircularBasis::generate_with_strategy(
                4,
                100,
                FlipStrategy::Independent { flips_per_step: 200 },
                &mut rng
            ),
            Err(BasisError::FlipsExceedDimension { .. })
        ));
    }

    #[test]
    fn circular_distance_helper() {
        let mut rng = Rng::new(78);
        let circle = CircularBasis::generate(8, 128, &mut rng).expect("valid");
        assert_eq!(circle.circular_distance(0, 1), 1);
        assert_eq!(circle.circular_distance(0, 7), 1);
        assert_eq!(circle.circular_distance(0, 4), 4);
        assert_eq!(circle.circular_distance(2, 6), 4);
        assert_eq!(circle.circular_distance(6, 2), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CircularBasis::generate(6, 512, &mut Rng::new(99)).expect("valid");
        let b = CircularBasis::generate(6, 512, &mut Rng::new(99)).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn nearest_neighbour_on_circle_is_index_neighbour() {
        let mut rng = Rng::new(80);
        let n = 24;
        let circle = CircularBasis::generate(n, 10_000, &mut rng).expect("valid");
        for i in 0..n {
            let (best, _) = (0..n)
                .filter(|&j| j != i)
                .map(|j| (j, hamming(&circle[i], &circle[j])))
                .min_by_key(|&(_, d)| d)
                .expect("non-empty");
            assert_eq!(circle.circular_distance(i, best), 1, "index {i} best {best}");
        }
    }
}
