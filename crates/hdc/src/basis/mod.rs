//! Basis-hypervector families (paper Section 4).
//!
//! Encoding starts from a set of *basis-hypervectors* representing atomic
//! pieces of information. The paper describes three families, distinguished
//! by the correlation structure they impose (visualized in its Figure 2):
//!
//! * [`RandomBasis`] — independently sampled, mutually quasi-orthogonal;
//!   appropriate for categorical data.
//! * [`LevelBasis`] — linearly correlated; similarity decays with distance
//!   between levels; appropriate for scalar data.
//! * [`CircularBasis`] — the paper's novel contribution: correlation is
//!   circular, i.e. similarity decays with *circular* distance and there is
//!   no discontinuity between the last and first element (Algorithm 1).

mod circular;
mod level;
mod random;

pub use circular::CircularBasis;
pub use level::LevelBasis;
pub use random::RandomBasis;



/// How the sparse transformation-hypervectors of Algorithm 1 sample their
/// flipped bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum FlipStrategy {
    /// Literal Algorithm 1: every transformation-hypervector flips
    /// `flips_per_step` random bits, sampled independently per step, so
    /// later steps may re-flip earlier bits. The similarity profile decays
    /// monotonically *in expectation*.
    Independent {
        /// Bits flipped by each transformation (the paper's `d/m`).
        flips_per_step: usize,
    },
    /// Exact construction: a random set of `d/2` bit positions is
    /// partitioned across the steps of the half-circle (or level chain), so
    /// the similarity profile is exactly linear and the extreme elements
    /// are exactly quasi-orthogonal. This reproduces the clean profiles of
    /// the paper's Figure 2 and is the default.
    #[default]
    Partition,
}


/// Error building a basis set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisError {
    /// The requested cardinality is too small for the family.
    CardinalityTooSmall {
        /// Requested number of hypervectors.
        requested: usize,
        /// Minimum supported by the family.
        minimum: usize,
    },
    /// The dimension is zero or too small to allocate the requested flips.
    DimensionTooSmall {
        /// Requested dimensionality.
        dimension: usize,
        /// Basis cardinality it must accommodate.
        cardinality: usize,
    },
    /// An `Independent` strategy requested more flips per step than `d`.
    FlipsExceedDimension {
        /// Requested flips per step.
        flips: usize,
        /// Dimensionality.
        dimension: usize,
    },
}

impl core::fmt::Display for BasisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BasisError::CardinalityTooSmall { requested, minimum } => {
                write!(f, "basis cardinality {requested} below minimum {minimum}")
            }
            BasisError::DimensionTooSmall { dimension, cardinality } => {
                write!(f, "dimension {dimension} too small for {cardinality} basis hypervectors")
            }
            BasisError::FlipsExceedDimension { flips, dimension } => {
                write!(f, "flips per step {flips} exceeds dimension {dimension}")
            }
        }
    }
}

impl std::error::Error for BasisError {}

/// Splits `positions` into `parts` nearly equal contiguous chunks.
///
/// Used by the `Partition` strategy: every chunk becomes one
/// transformation-hypervector. Chunk sizes differ by at most one.
pub(crate) fn partition_chunks(positions: &[usize], parts: usize) -> Vec<Vec<usize>> {
    assert!(parts > 0, "cannot partition into zero parts");
    let base = positions.len() / parts;
    let extra = positions.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut offset = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(positions[offset..offset + len].to_vec());
        offset += len;
    }
    out
}

/// Common accessor surface shared by the three basis families.
macro_rules! basis_accessors {
    ($ty:ident) => {
        impl $ty {
            /// The generated hypervectors, in order.
            #[must_use]
            pub fn hypervectors(&self) -> &[Hypervector] {
                &self.hypervectors
            }

            /// Consumes the basis and returns the hypervectors.
            #[must_use]
            pub fn into_hypervectors(self) -> Vec<Hypervector> {
                self.hypervectors
            }

            /// Number of hypervectors in the set.
            #[must_use]
            pub fn len(&self) -> usize {
                self.hypervectors.len()
            }

            /// Whether the set is empty (never true for a built basis).
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.hypervectors.is_empty()
            }

            /// Dimensionality `d` of every member.
            #[must_use]
            pub fn dimension(&self) -> usize {
                self.dimension
            }

            /// The hypervector at `index`, if in range.
            #[must_use]
            pub fn get(&self, index: usize) -> Option<&Hypervector> {
                self.hypervectors.get(index)
            }
        }

        impl core::ops::Index<usize> for $ty {
            type Output = Hypervector;

            fn index(&self, index: usize) -> &Hypervector {
                &self.hypervectors[index]
            }
        }
    };
}

pub(crate) use basis_accessors;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_chunks_cover_everything() {
        let positions: Vec<usize> = (0..103).collect();
        let chunks = partition_chunks(&positions, 10);
        assert_eq!(chunks.len(), 10);
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 103);
        // Sizes differ by at most one.
        let min = chunks.iter().map(Vec::len).min().expect("non-empty");
        let max = chunks.iter().map(Vec::len).max().expect("non-empty");
        assert!(max - min <= 1);
        // No element lost or duplicated.
        let mut flat: Vec<usize> = chunks.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, positions);
    }

    #[test]
    fn partition_single_part() {
        let positions = vec![5, 7, 9];
        let chunks = partition_chunks(&positions, 1);
        assert_eq!(chunks, vec![vec![5, 7, 9]]);
    }

    #[test]
    fn error_display() {
        let e = BasisError::CardinalityTooSmall { requested: 1, minimum: 2 };
        assert!(e.to_string().contains("below minimum"));
        let e = BasisError::DimensionTooSmall { dimension: 4, cardinality: 100 };
        assert!(e.to_string().contains("too small"));
        let e = BasisError::FlipsExceedDimension { flips: 20, dimension: 10 };
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn default_strategy_is_partition() {
        assert_eq!(FlipStrategy::default(), FlipStrategy::Partition);
    }
}
