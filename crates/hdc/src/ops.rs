//! The HDC operation set: binding, bundling and permutation.
//!
//! For dense binary hypervectors the canonical operations are:
//!
//! * **bind** — elementwise XOR. Binding is its own inverse, preserves
//!   distances (`δ(a ⊕ c, b ⊕ c) = δ(a, b)`) and produces a vector
//!   dissimilar to both inputs. Algorithm 1 of the paper uses binding with
//!   sparse *transformation-hypervectors* to walk around the circle.
//! * **bundle** — bitwise majority vote of an odd number of vectors (ties
//!   for even counts are broken by a deterministic tie-break vector). The
//!   bundle is similar to each of its inputs.
//! * **permute** — cyclic bit rotation, a fixed distance-preserving
//!   bijection used to encode order.
//!
//! ## Word-parallel kernels
//!
//! Every kernel here works 64 dimensions per machine word — the CPU
//! analogue of the dimension-independent parallelism HDC hardware provides:
//!
//! * [`bundle`] streams its inputs through a [`MajorityBundler`], a
//!   bit-sliced **carry-save counter network**: per-dimension counts are
//!   stored transposed, one `u64` "plane" per count bit, so adding an input
//!   is `O(words · log n)` bitwise ops and the majority readout is a
//!   bit-sliced comparator — never a per-bit loop;
//! * [`permute`] rotates whole words (shift + carry between neighbours)
//!   instead of moving bits one at a time;
//! * [`Hypervector::hamming_distance_within`] abandons a distance
//!   computation as soon as it exceeds a caller-supplied bound (the pruning
//!   kernel behind [`memory`](crate::memory) scans).
//!
//! The original bit-at-a-time formulations survive in [`mod@reference`]; the
//! property suite (`tests/kernel_equivalence.rs`) proves the optimized
//! kernels byte-identical to them across dimensions, including
//! non-multiples of 64 that exercise the masked tail word.

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::rng::Rng;

/// Binds two hypervectors (elementwise XOR), returning a new vector.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if dimensions differ.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{ops::bind, Hypervector, Rng};
///
/// let mut rng = Rng::new(3);
/// let a = Hypervector::random(1000, &mut rng);
/// let b = Hypervector::random(1000, &mut rng);
/// let bound = bind(&a, &b)?;
/// // Unbinding recovers the original exactly.
/// assert_eq!(bind(&bound, &b)?, a);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
pub fn bind(a: &Hypervector, b: &Hypervector) -> Result<Hypervector, DimensionMismatchError> {
    a.xor(b)
}

/// Binds `other` into `target` in place (no allocation) — the streaming
/// form of [`bind`] for hot paths that reuse a probe buffer.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if dimensions differ.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{ops::{bind, bind_assign}, Hypervector, Rng};
///
/// let mut rng = Rng::new(5);
/// let a = Hypervector::random(256, &mut rng);
/// let b = Hypervector::random(256, &mut rng);
/// let mut inplace = a.clone();
/// bind_assign(&mut inplace, &b)?;
/// assert_eq!(inplace, bind(&a, &b)?);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
pub fn bind_assign(
    target: &mut Hypervector,
    other: &Hypervector,
) -> Result<(), DimensionMismatchError> {
    target.xor_assign(other)
}

/// Creates a sparse *transformation-hypervector*: a zero vector with
/// exactly `flips` distinct random bits set.
///
/// This is lines 4–5 of the paper's Algorithm 1 (`t ← 0^d`, then flip
/// `d/m` random bits of `t`).
///
/// # Panics
///
/// Panics if `flips > d` or `d == 0`.
#[must_use]
pub fn transformation(d: usize, flips: usize, rng: &mut Rng) -> Hypervector {
    let mut t = Hypervector::zeros(d);
    t.flip_bits(rng.distinct_indices(flips, d));
    t
}

/// A reusable bit-sliced majority-vote accumulator (carry-save counter
/// network).
///
/// Per-dimension vote counts are kept *transposed*: `planes[k]` holds bit
/// `k` of every dimension's count, packed 64 lanes per `u64` word. Adding a
/// hypervector is a ripple-carry add of a 1-bit number across the planes —
/// `O(words · log n)` bitwise ops, no per-bit work — and the majority
/// readout is a bit-sliced magnitude comparator against the threshold.
///
/// The bundler is reusable: [`reset`](MajorityBundler::reset) clears the
/// counts without releasing the plane storage, so steady-state bundling
/// allocates nothing per element (planes grow logarithmically, to
/// `ceil(log2(n + 1))`, on the first few adds only).
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{ops::MajorityBundler, Hypervector, Rng};
///
/// let mut rng = Rng::new(17);
/// let inputs: Vec<Hypervector> =
///     (0..5).map(|_| Hypervector::random(4096, &mut rng)).collect();
/// let mut bundler = MajorityBundler::new(4096);
/// for hv in &inputs {
///     bundler.add(hv)?;
/// }
/// let majority = bundler.majority(None);
/// // Odd count: the majority agrees with every input more than chance.
/// for hv in &inputs {
///     assert!(majority.hamming_distance(hv) < 2048);
/// }
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MajorityBundler {
    dimension: usize,
    words: usize,
    /// `planes[k][w]`: bit `k` of the count for each of the 64 lanes of
    /// word `w`.
    planes: Vec<Vec<u64>>,
    /// Ripple-carry scratch, reused across adds.
    carry: Vec<u64>,
    members: usize,
}

impl MajorityBundler {
    /// Creates an empty bundler for dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        let words = d.div_ceil(64);
        Self { dimension: d, words, planes: Vec::new(), carry: vec![0; words], members: 0 }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of hypervectors added since the last reset.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// Clears the counts, keeping the allocated planes for reuse.
    pub fn reset(&mut self) {
        for plane in &mut self.planes {
            plane.iter_mut().for_each(|w| *w = 0);
        }
        self.members = 0;
    }

    /// Adds one hypervector's votes.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    pub fn add(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        if hv.dimension() != self.dimension {
            return Err(DimensionMismatchError {
                left: self.dimension,
                right: hv.dimension(),
            });
        }
        self.add_words(hv.as_words());
        Ok(())
    }

    /// Adds votes from a raw word row (used by the batched lookup engine,
    /// whose storage is a contiguous word matrix).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `words` has the wrong length.
    pub(crate) fn add_words(&mut self, words: &[u64]) {
        debug_assert_eq!(words.len(), self.words);
        // Ripple-carry add of the 1-bit number `words` into the transposed
        // counters: carry₀ = input, then per plane
        //   carryₖ₊₁ = planeₖ & carryₖ;  planeₖ ^= carryₖ.
        self.carry.copy_from_slice(words);
        for k in 0.. {
            if self.carry.iter().all(|&w| w == 0) {
                break;
            }
            if k == self.planes.len() {
                self.planes.push(vec![0; self.words]);
            }
            let plane = &mut self.planes[k];
            for (p, c) in plane.iter_mut().zip(self.carry.iter_mut()) {
                let new_carry = *p & *c;
                *p ^= *c;
                *c = new_carry;
            }
        }
        self.members += 1;
    }

    /// Retracts one previously added hypervector's votes — the
    /// counter-plane inverse of [`add`](Self::add): a ripple-**borrow**
    /// subtract of the 1-bit number across the transposed planes, again
    /// `O(words · log n)` bitwise ops. This is what makes membership
    /// churn incremental: removing one member costs a plane update, not a
    /// re-bundle of the remaining membership.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the bundler is empty, or if `hv` votes in a dimension
    /// whose counter is already zero (i.e. `hv` was never added — the
    /// counters would underflow).
    pub fn subtract(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        if hv.dimension() != self.dimension {
            return Err(DimensionMismatchError {
                left: self.dimension,
                right: hv.dimension(),
            });
        }
        self.subtract_words(hv.as_words());
        Ok(())
    }

    /// Raw-row form of [`subtract`](Self::subtract) (mirrors
    /// [`add_words`](Self::add_words)).
    ///
    /// # Panics
    ///
    /// As for [`subtract`](Self::subtract); word length is debug-asserted.
    pub(crate) fn subtract_words(&mut self, words: &[u64]) {
        debug_assert_eq!(words.len(), self.words);
        assert!(self.members > 0, "cannot retract from an empty bundler");
        // Ripple-borrow: borrow₀ = input, then per plane
        //   borrowₖ₊₁ = !planeₖ & borrowₖ;  planeₖ ^= borrowₖ.
        self.carry.copy_from_slice(words);
        for plane in &mut self.planes {
            if self.carry.iter().all(|&w| w == 0) {
                break;
            }
            for (p, b) in plane.iter_mut().zip(self.carry.iter_mut()) {
                let new_borrow = !*p & *b;
                *p ^= *b;
                *b = new_borrow;
            }
        }
        assert!(
            self.carry.iter().all(|&w| w == 0),
            "retracted hypervector was never added (counter underflow)"
        );
        self.members -= 1;
    }

    /// Reads out the majority vote: bit `i` of the result is 1 iff
    /// `count_i > members / 2`, with exact-half ties (even member counts)
    /// resolved by `tie`'s bit — the same contract as the scalar
    /// formulation in [`reference::bundle`].
    ///
    /// # Panics
    ///
    /// Panics if no members were added, or if `tie` has the wrong
    /// dimension.
    #[must_use]
    pub fn majority(&self, tie: Option<&Hypervector>) -> Hypervector {
        assert!(self.members > 0, "majority of zero hypervectors is undefined");
        if let Some(t) = tie {
            assert_eq!(t.dimension(), self.dimension, "tie-break dimension mismatch");
        }
        let half = self.members / 2;
        let bits = self.planes.len();
        let mut out = vec![0u64; self.words];
        for (w, out_word) in out.iter_mut().enumerate() {
            // Bit-sliced comparator: per lane, gt = (count > half),
            // eq = (count == half), scanning count bits MSB → LSB.
            let mut gt = 0u64;
            let mut eq = u64::MAX;
            for k in (0..bits).rev() {
                let c = self.planes[k][w];
                let h = if (half >> k) & 1 == 1 { u64::MAX } else { 0 };
                gt |= eq & c & !h;
                eq &= !(c ^ h);
            }
            // `half` may have set bits above the plane count only when no
            // lane can reach it; those lanes correctly read eq = 0.
            if half >> bits != 0 {
                eq = 0;
                gt = 0;
            }
            *out_word = gt;
            if let Some(t) = tie {
                *out_word |= eq & t.as_words()[w];
            }
        }
        Hypervector::from_words(self.dimension, out)
    }
}

/// Bundles hypervectors by bitwise majority vote.
///
/// For an even number of inputs, ties are broken by `tie_break` bits drawn
/// deterministically from `rng` (the conventional approach in binary HDC).
///
/// The vote is computed by a word-parallel carry-save counter network
/// ([`MajorityBundler`]): ~64 dimensions per bitwise operation instead of
/// the naive per-bit scan (kept in [`reference::bundle`] as the
/// equivalence-tested specification).
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if any input dimension differs from
/// the first.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn bundle(
    inputs: &[&Hypervector],
    rng: &mut Rng,
) -> Result<Hypervector, DimensionMismatchError> {
    assert!(!inputs.is_empty(), "bundle of zero hypervectors is undefined");
    let d = inputs[0].dimension();
    for hv in inputs {
        if hv.dimension() != d {
            return Err(DimensionMismatchError { left: d, right: hv.dimension() });
        }
    }
    // Drawn before voting, exactly like the reference implementation, so
    // both consume the RNG identically (bit-for-bit reproducibility).
    let tie = if inputs.len().is_multiple_of(2) { Some(Hypervector::random(d, rng)) } else { None };

    let mut bundler = MajorityBundler::new(d);
    for hv in inputs {
        bundler.add_words(hv.as_words());
    }
    Ok(bundler.majority(tie.as_ref()))
}

/// Cyclically rotates the bits of a hypervector by `shift` positions.
///
/// Permutation is a distance-preserving bijection; `permute(hv, d)` is the
/// identity.
///
/// Implemented as a word-level rotation of the `d`-bit vector: the result
/// is `(x << s | x >> (d − s)) mod 2^d`, assembled whole words at a time
/// (shift plus carry bits from the neighbouring word) rather than moving
/// bits one by one.
#[must_use]
pub fn permute(hv: &Hypervector, shift: usize) -> Hypervector {
    let d = hv.dimension();
    let shift = shift % d;
    let mut out = vec![0u64; hv.word_len()];
    shl_or_into(hv.as_words(), shift, &mut out);
    if shift != 0 {
        shr_or_into(hv.as_words(), d - shift, &mut out);
    }
    Hypervector::from_words(d, out)
}

/// ORs `src << shift` (as one big little-endian integer) into `dst`.
fn shl_or_into(src: &[u64], shift: usize, dst: &mut [u64]) {
    let word_shift = shift / 64;
    let bit_shift = shift % 64;
    for w in (word_shift..dst.len()).rev() {
        let lo = src[w - word_shift];
        let mut word = lo << bit_shift;
        if bit_shift != 0 && w > word_shift {
            word |= src[w - word_shift - 1] >> (64 - bit_shift);
        }
        dst[w] |= word;
    }
}

/// ORs `src >> shift` (as one big little-endian integer) into `dst`.
fn shr_or_into(src: &[u64], shift: usize, dst: &mut [u64]) {
    let word_shift = shift / 64;
    let bit_shift = shift % 64;
    for w in 0..dst.len().saturating_sub(word_shift) {
        let hi = src[w + word_shift];
        let mut word = hi >> bit_shift;
        if bit_shift != 0 && w + word_shift + 1 < src.len() {
            word |= src[w + word_shift + 1] << (64 - bit_shift);
        }
        dst[w] |= word;
    }
}

/// Bit-at-a-time reference implementations of the kernels.
///
/// These are the *specifications*: transparently correct, dimension-by-
/// dimension formulations that the optimized word-parallel kernels must
/// match bit-for-bit (enforced by `tests/kernel_equivalence.rs` and
/// benchmarked against in `hdhash-bench`). They are not used on any hot
/// path.
pub mod reference {
    use super::{DimensionMismatchError, Hypervector, Rng};

    /// Per-bit majority bundle — the original formulation of
    /// [`bundle`](super::bundle).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if any input dimension differs
    /// from the first.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn bundle(
        inputs: &[&Hypervector],
        rng: &mut Rng,
    ) -> Result<Hypervector, DimensionMismatchError> {
        assert!(!inputs.is_empty(), "bundle of zero hypervectors is undefined");
        let d = inputs[0].dimension();
        for hv in inputs {
            if hv.dimension() != d {
                return Err(DimensionMismatchError { left: d, right: hv.dimension() });
            }
        }
        let needs_tiebreak = inputs.len().is_multiple_of(2);
        let tie = if needs_tiebreak { Some(Hypervector::random(d, rng)) } else { None };

        let mut out = Hypervector::zeros(d);
        let half = inputs.len() / 2;
        for i in 0..d {
            let mut count = inputs.iter().filter(|hv| hv.bit(i)).count();
            if let Some(t) = &tie {
                // A tie-break vote only matters when the count sits exactly
                // at the boundary; adding it unconditionally keeps the
                // majority semantics for all other counts because of the
                // strict compare.
                if count == half && t.bit(i) {
                    count += 1;
                }
            }
            out.set_bit(i, count > half);
        }
        Ok(out)
    }

    /// Per-bit cyclic rotation — the original formulation of
    /// [`permute`](super::permute).
    #[must_use]
    pub fn permute(hv: &Hypervector, shift: usize) -> Hypervector {
        let d = hv.dimension();
        let shift = shift % d;
        let mut out = Hypervector::zeros(d);
        for i in 0..d {
            if hv.bit(i) {
                out.set_bit((i + shift) % d, true);
            }
        }
        out
    }

    /// Per-bit Hamming distance — the specification for both
    /// [`Hypervector::hamming_distance`] and the early-exit
    /// [`Hypervector::hamming_distance_within`].
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn hamming(a: &Hypervector, b: &Hypervector) -> usize {
        assert_eq!(a.dimension(), b.dimension(), "dimension mismatch");
        (0..a.dimension()).filter(|&i| a.bit(i) != b.bit(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::hamming;

    #[test]
    fn bind_preserves_distance() {
        let mut rng = Rng::new(21);
        let a = Hypervector::random(2000, &mut rng);
        let b = Hypervector::random(2000, &mut rng);
        let c = Hypervector::random(2000, &mut rng);
        let d1 = hamming(&a, &b);
        let d2 = hamming(&bind(&a, &c).expect("dims"), &bind(&b, &c).expect("dims"));
        assert_eq!(d1, d2);
    }

    #[test]
    fn bind_with_self_is_zero() {
        let mut rng = Rng::new(22);
        let a = Hypervector::random(512, &mut rng);
        assert_eq!(bind(&a, &a).expect("dims").count_ones(), 0);
    }

    #[test]
    fn bind_dimension_mismatch_errors() {
        let a = Hypervector::zeros(10);
        let b = Hypervector::zeros(20);
        assert!(bind(&a, &b).is_err());
        let mut a = a;
        assert!(bind_assign(&mut a, &b).is_err());
    }

    #[test]
    fn bind_assign_matches_bind() {
        let mut rng = Rng::new(35);
        let a = Hypervector::random(777, &mut rng);
        let b = Hypervector::random(777, &mut rng);
        let mut inplace = a.clone();
        bind_assign(&mut inplace, &b).expect("dims");
        assert_eq!(inplace, bind(&a, &b).expect("dims"));
    }

    #[test]
    fn transformation_weight_is_exact() {
        let mut rng = Rng::new(23);
        for flips in [0usize, 1, 10, 100, 1000] {
            let t = transformation(10_000, flips, &mut rng);
            assert_eq!(t.count_ones(), flips);
        }
    }

    #[test]
    fn binding_with_transformation_moves_exactly_that_far() {
        let mut rng = Rng::new(24);
        let a = Hypervector::random(10_000, &mut rng);
        let t = transformation(10_000, 500, &mut rng);
        let b = bind(&a, &t).expect("dims");
        assert_eq!(hamming(&a, &b), 500);
    }

    #[test]
    fn bundle_is_similar_to_inputs() {
        let mut rng = Rng::new(25);
        let inputs: Vec<Hypervector> =
            (0..3).map(|_| Hypervector::random(10_000, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let m = bundle(&refs, &mut rng).expect("dims");
        for hv in &inputs {
            let dist = hamming(&m, hv);
            // Majority of 3: expected distance d/4, far below random d/2.
            assert!(dist < 3_000, "bundle too far from input: {dist}");
        }
    }

    #[test]
    fn bundle_of_one_is_identity() {
        let mut rng = Rng::new(26);
        let a = Hypervector::random(100, &mut rng);
        assert_eq!(bundle(&[&a], &mut rng).expect("dims"), a);
    }

    #[test]
    fn bundle_even_count_stays_between_inputs() {
        let mut rng = Rng::new(27);
        let inputs: Vec<Hypervector> =
            (0..4).map(|_| Hypervector::random(4096, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let m = bundle(&refs, &mut rng).expect("dims");
        for hv in &inputs {
            assert!(hamming(&m, hv) < 2048, "even bundle lost similarity");
        }
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn bundle_empty_panics() {
        let mut rng = Rng::new(0);
        let _ = bundle(&[], &mut rng);
    }

    #[test]
    fn bundle_mixed_dims_errors() {
        let mut rng = Rng::new(28);
        let a = Hypervector::zeros(10);
        let b = Hypervector::zeros(11);
        assert!(bundle(&[&a, &b], &mut rng).is_err());
    }

    #[test]
    fn bundle_matches_reference_exactly() {
        // Bit-for-bit agreement with the per-bit specification, odd and
        // even counts, including tail-word dimensions.
        for (n, d, seed) in
            [(1usize, 130usize, 1u64), (2, 64, 2), (3, 65, 3), (4, 1000, 4), (7, 10_000, 5), (16, 127, 6)]
        {
            let mut rng = Rng::new(seed);
            let inputs: Vec<Hypervector> =
                (0..n).map(|_| Hypervector::random(d, &mut rng)).collect();
            let refs: Vec<&Hypervector> = inputs.iter().collect();
            // Identical RNG state into both implementations.
            let mut rng_fast = Rng::new(seed ^ 0xABCD);
            let mut rng_ref = Rng::new(seed ^ 0xABCD);
            let fast = bundle(&refs, &mut rng_fast).expect("dims");
            let naive = reference::bundle(&refs, &mut rng_ref).expect("dims");
            assert_eq!(fast, naive, "n={n} d={d}");
            assert_eq!(rng_fast, rng_ref, "RNG consumption must match");
        }
    }

    #[test]
    fn bundler_reuse_is_clean() {
        let mut rng = Rng::new(60);
        let a = Hypervector::random(320, &mut rng);
        let b = Hypervector::random(320, &mut rng);
        let mut bundler = MajorityBundler::new(320);
        bundler.add(&a).expect("dims");
        bundler.add(&a).expect("dims");
        bundler.add(&b).expect("dims");
        assert_eq!(bundler.majority(None), a, "2-of-3 majority is a");
        assert_eq!(bundler.members(), 3);
        bundler.reset();
        assert_eq!(bundler.members(), 0);
        bundler.add(&b).expect("dims");
        assert_eq!(bundler.majority(None), b, "stale counts leaked through reset");
    }

    #[test]
    fn bundler_rejects_wrong_dimension() {
        let mut bundler = MajorityBundler::new(64);
        assert!(bundler.add(&Hypervector::zeros(65)).is_err());
        assert_eq!(bundler.members(), 0);
        assert_eq!(bundler.dimension(), 64);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn bundler_empty_majority_panics() {
        let bundler = MajorityBundler::new(64);
        let _ = bundler.majority(None);
    }

    #[test]
    fn permute_is_bijective_and_preserves_weight() {
        let mut rng = Rng::new(29);
        let a = Hypervector::random(1001, &mut rng);
        let p = permute(&a, 17);
        assert_eq!(p.count_ones(), a.count_ones());
        // Rotating the rest of the way recovers the original.
        assert_eq!(permute(&p, 1001 - 17), a);
    }

    #[test]
    fn permute_full_rotation_is_identity() {
        let mut rng = Rng::new(30);
        let a = Hypervector::random(333, &mut rng);
        assert_eq!(permute(&a, 333), a);
        assert_eq!(permute(&a, 0), a);
    }

    #[test]
    fn permute_decorrelates() {
        let mut rng = Rng::new(31);
        let a = Hypervector::random(10_000, &mut rng);
        let p = permute(&a, 1);
        let dist = hamming(&a, &p);
        assert!((4_500..5_500).contains(&dist), "rotation should look random: {dist}");
    }

    #[test]
    fn permute_matches_reference_exactly() {
        let mut rng = Rng::new(32);
        for d in [1usize, 63, 64, 65, 127, 128, 129, 333, 1000, 10_000] {
            let a = Hypervector::random(d, &mut rng);
            for shift in [0usize, 1, 63, 64, 65, d / 2, d - 1, d, d + 7] {
                assert_eq!(
                    permute(&a, shift),
                    reference::permute(&a, shift),
                    "d={d} shift={shift}"
                );
            }
        }
    }
}
