//! The HDC operation set: binding, bundling and permutation.
//!
//! For dense binary hypervectors the canonical operations are:
//!
//! * **bind** — elementwise XOR. Binding is its own inverse, preserves
//!   distances (`δ(a ⊕ c, b ⊕ c) = δ(a, b)`) and produces a vector
//!   dissimilar to both inputs. Algorithm 1 of the paper uses binding with
//!   sparse *transformation-hypervectors* to walk around the circle.
//! * **bundle** — bitwise majority vote of an odd number of vectors (ties
//!   for even counts are broken by a deterministic tie-break vector). The
//!   bundle is similar to each of its inputs.
//! * **permute** — cyclic bit rotation, a fixed distance-preserving
//!   bijection used to encode order.

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::rng::Rng;

/// Binds two hypervectors (elementwise XOR), returning a new vector.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if dimensions differ.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{ops::bind, Hypervector, Rng};
///
/// let mut rng = Rng::new(3);
/// let a = Hypervector::random(1000, &mut rng);
/// let b = Hypervector::random(1000, &mut rng);
/// let bound = bind(&a, &b)?;
/// // Unbinding recovers the original exactly.
/// assert_eq!(bind(&bound, &b)?, a);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
pub fn bind(a: &Hypervector, b: &Hypervector) -> Result<Hypervector, DimensionMismatchError> {
    a.xor(b)
}

/// Creates a sparse *transformation-hypervector*: a zero vector with
/// exactly `flips` distinct random bits set.
///
/// This is lines 4–5 of the paper's Algorithm 1 (`t ← 0^d`, then flip
/// `d/m` random bits of `t`).
///
/// # Panics
///
/// Panics if `flips > d` or `d == 0`.
#[must_use]
pub fn transformation(d: usize, flips: usize, rng: &mut Rng) -> Hypervector {
    let mut t = Hypervector::zeros(d);
    t.flip_bits(rng.distinct_indices(flips, d));
    t
}

/// Bundles hypervectors by bitwise majority vote.
///
/// For an even number of inputs, ties are broken by `tie_break` bits drawn
/// deterministically from `rng` (the conventional approach in binary HDC).
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if any input dimension differs from
/// the first.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn bundle(
    inputs: &[&Hypervector],
    rng: &mut Rng,
) -> Result<Hypervector, DimensionMismatchError> {
    assert!(!inputs.is_empty(), "bundle of zero hypervectors is undefined");
    let d = inputs[0].dimension();
    for hv in inputs {
        if hv.dimension() != d {
            return Err(DimensionMismatchError { left: d, right: hv.dimension() });
        }
    }
    let needs_tiebreak = inputs.len() % 2 == 0;
    let tie = if needs_tiebreak { Some(Hypervector::random(d, rng)) } else { None };

    let mut out = Hypervector::zeros(d);
    let half = inputs.len() / 2;
    for i in 0..d {
        let mut count = inputs.iter().filter(|hv| hv.bit(i)).count();
        if let Some(t) = &tie {
            // A tie-break vote only matters when the count sits exactly at
            // the boundary; adding it unconditionally keeps the majority
            // semantics for all other counts because of the strict compare.
            if count == half && t.bit(i) {
                count += 1;
            }
        }
        out.set_bit(i, count > half);
    }
    Ok(out)
}

/// Cyclically rotates the bits of a hypervector by `shift` positions.
///
/// Permutation is a distance-preserving bijection; `permute(hv, d)` is the
/// identity.
#[must_use]
pub fn permute(hv: &Hypervector, shift: usize) -> Hypervector {
    let d = hv.dimension();
    let shift = shift % d;
    let mut out = Hypervector::zeros(d);
    for i in 0..d {
        if hv.bit(i) {
            out.set_bit((i + shift) % d, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::hamming;

    #[test]
    fn bind_preserves_distance() {
        let mut rng = Rng::new(21);
        let a = Hypervector::random(2000, &mut rng);
        let b = Hypervector::random(2000, &mut rng);
        let c = Hypervector::random(2000, &mut rng);
        let d1 = hamming(&a, &b);
        let d2 = hamming(&bind(&a, &c).expect("dims"), &bind(&b, &c).expect("dims"));
        assert_eq!(d1, d2);
    }

    #[test]
    fn bind_with_self_is_zero() {
        let mut rng = Rng::new(22);
        let a = Hypervector::random(512, &mut rng);
        assert_eq!(bind(&a, &a).expect("dims").count_ones(), 0);
    }

    #[test]
    fn bind_dimension_mismatch_errors() {
        let a = Hypervector::zeros(10);
        let b = Hypervector::zeros(20);
        assert!(bind(&a, &b).is_err());
    }

    #[test]
    fn transformation_weight_is_exact() {
        let mut rng = Rng::new(23);
        for flips in [0usize, 1, 10, 100, 1000] {
            let t = transformation(10_000, flips, &mut rng);
            assert_eq!(t.count_ones(), flips);
        }
    }

    #[test]
    fn binding_with_transformation_moves_exactly_that_far() {
        let mut rng = Rng::new(24);
        let a = Hypervector::random(10_000, &mut rng);
        let t = transformation(10_000, 500, &mut rng);
        let b = bind(&a, &t).expect("dims");
        assert_eq!(hamming(&a, &b), 500);
    }

    #[test]
    fn bundle_is_similar_to_inputs() {
        let mut rng = Rng::new(25);
        let inputs: Vec<Hypervector> =
            (0..3).map(|_| Hypervector::random(10_000, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let m = bundle(&refs, &mut rng).expect("dims");
        for hv in &inputs {
            let dist = hamming(&m, hv);
            // Majority of 3: expected distance d/4, far below random d/2.
            assert!(dist < 3_000, "bundle too far from input: {dist}");
        }
    }

    #[test]
    fn bundle_of_one_is_identity() {
        let mut rng = Rng::new(26);
        let a = Hypervector::random(100, &mut rng);
        assert_eq!(bundle(&[&a], &mut rng).expect("dims"), a);
    }

    #[test]
    fn bundle_even_count_stays_between_inputs() {
        let mut rng = Rng::new(27);
        let inputs: Vec<Hypervector> =
            (0..4).map(|_| Hypervector::random(4096, &mut rng)).collect();
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let m = bundle(&refs, &mut rng).expect("dims");
        for hv in &inputs {
            assert!(hamming(&m, hv) < 2048, "even bundle lost similarity");
        }
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn bundle_empty_panics() {
        let mut rng = Rng::new(0);
        let _ = bundle(&[], &mut rng);
    }

    #[test]
    fn bundle_mixed_dims_errors() {
        let mut rng = Rng::new(28);
        let a = Hypervector::zeros(10);
        let b = Hypervector::zeros(11);
        assert!(bundle(&[&a, &b], &mut rng).is_err());
    }

    #[test]
    fn permute_is_bijective_and_preserves_weight() {
        let mut rng = Rng::new(29);
        let a = Hypervector::random(1001, &mut rng);
        let p = permute(&a, 17);
        assert_eq!(p.count_ones(), a.count_ones());
        // Rotating the rest of the way recovers the original.
        assert_eq!(permute(&p, 1001 - 17), a);
    }

    #[test]
    fn permute_full_rotation_is_identity() {
        let mut rng = Rng::new(30);
        let a = Hypervector::random(333, &mut rng);
        assert_eq!(permute(&a, 333), a);
        assert_eq!(permute(&a, 0), a);
    }

    #[test]
    fn permute_decorrelates() {
        let mut rng = Rng::new(31);
        let a = Hypervector::random(10_000, &mut rng);
        let p = permute(&a, 1);
        let dist = hamming(&a, &p);
        assert!((4_500..5_500).contains(&dist), "rotation should look random: {dist}");
    }
}
