//! # hdhash-hdc — a hyperdimensional computing substrate
//!
//! Hyperdimensional Computing (HDC, Kanerva 2009) represents information as
//! very wide random vectors ("hypervectors", typically 10 000 bits) and
//! manipulates them with three dimension-independent operations: *binding*
//! (elementwise XOR for dense binary vectors), *bundling* (bitwise majority)
//! and *permutation* (cyclic rotation). Because information is spread
//! holographically over all dimensions, hypervector representations are
//! inherently robust to bit errors — the property the paper
//! ("Hyperdimensional Hashing", DAC 2022) exploits to build a fault-tolerant
//! dynamic hash table.
//!
//! This crate is a complete, self-contained HDC substrate:
//!
//! * [`Hypervector`] — bit-packed dense binary hypervectors over `u64` words;
//! * [`ops`] — bind / bundle / permute / bit flips;
//! * [`similarity`] — Hamming distance, normalized (inverse) Hamming
//!   similarity and the ±1 ("bipolar") cosine similarity;
//! * [`basis`] — the three basis-hypervector families of the paper's
//!   Section 4: random, level and **circular** hypervectors (Algorithm 1,
//!   including the odd-cardinality footnote);
//! * [`encoding`] — compound encoders built from the basis families:
//!   sequences, n-grams and key–value records;
//! * [`accumulator`] — incremental integer-counter bundling ("binarized
//!   bundling", Schmuck et al. \[18\]) for online prototypes;
//! * [`classifier`] — the centroid HDC classifier (VoiceHD-style), used
//!   to evaluate the paper's future-work claim that circular bases
//!   improve ML on periodic features;
//! * [`maintenance`] — incremental counter-plane membership centroids:
//!   add/remove one member in `O(words · log n)` bitwise ops, byte-
//!   identical to from-scratch re-bundling (the substrate behind
//!   classifier prototypes and the hash tables' pool signatures);
//! * [`memory`] — an associative memory implementing HDC *inference*
//!   (`argmax` similarity, Eq. 2 of the paper) with serial and
//!   multi-threaded search paths (the paper's GPU substitute);
//! * [`batch`] — the [`BatchLookup`] engine behind every memory scan: one
//!   contiguous word matrix (row-major or word-interleaved, autotuned via
//!   [`EngineOptions`]), single-probe early-exit scans and cache-blocked
//!   multi-probe batches through the fused SIMD kernels;
//! * [`noise`] — seeded bit-error injection into stored hypervectors
//!   (single-event upsets and multi-cell burst upsets);
//! * [`profile`] — pairwise similarity matrices (paper Figure 2).
//!
//! ## Quick example
//!
//! ```
//! use hdhash_hdc::{basis::CircularBasis, similarity::cosine, Hypervector, Rng};
//!
//! let mut rng = Rng::new(7);
//! // Twelve hypervectors arranged on a circle in 10k-dimensional space.
//! let basis = CircularBasis::generate(12, 10_000, &mut rng).expect("valid parameters");
//! let c: &[Hypervector] = basis.hypervectors();
//! // Neighbours on the circle are similar; antipodes are dissimilar.
//! assert!(cosine(&c[0], &c[1]) > cosine(&c[0], &c[6]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod basis;
pub mod batch;
pub mod classifier;
pub mod encoding;
pub mod hypervector;
pub mod maintenance;
pub mod memory;
pub mod noise;
pub mod ops;
pub mod profile;
pub mod rng;
pub mod similarity;

pub use batch::{BatchLookup, EngineOptions, MatrixLayout};
pub use classifier::CentroidClassifier;
pub use maintenance::{
    diff_memberships, signature_diff, CentroidDelta, MembershipCentroid, SignatureDelta,
};
pub use hypervector::{DimensionMismatchError, Hypervector};
pub use memory::{AssociativeMemory, SearchStrategy};
pub use rng::Rng;
pub use similarity::SimilarityMetric;
