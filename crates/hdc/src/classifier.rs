//! A centroid classifier: the paper's anticipated ML use of circular
//! hypervectors.
//!
//! Section 6 of the paper proposes circular-hypervectors as a new way to
//! "represent periodic information […] seasons of the year, hours of a
//! day or days of a week" and asks "whether this can be used to improve
//! data representation in HDC, for instance in machine learning
//! applications". This module provides the standard HDC learning
//! machinery needed to answer that question — the centroid (prototype)
//! classifier of VoiceHD and the biosignal literature the paper cites
//! (\[8\], \[16\]) — and its tests answer it: on a periodic feature,
//! swapping the level basis for a circular basis removes the
//! wrap-around error (see `circular_beats_level_on_periodic_features`).
//!
//! Training bundles each class's encoded observations into an incremental
//! counter-plane [`MembershipCentroid`]; prediction reads the planes out
//! into binary prototypes (a bit-sliced comparator, not a per-bit
//! threshold loop) and returns the most similar class — exactly the
//! inference operation HD hashing shares with HDC learning systems.
//! Observations can also be *retracted* ([`CentroidClassifier::forget`]):
//! both directions of churn are `O(words · log n)` plane updates, never a
//! re-bundle of the class's remaining observations, and the resulting
//! prototypes are byte-identical to from-scratch re-bundling (pinned by
//! `tests/incremental_maintenance.rs`).

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::maintenance::MembershipCentroid;
use crate::similarity::SimilarityMetric;

/// A centroid (prototype-per-class) HDC classifier.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{CentroidClassifier, Hypervector, Rng};
///
/// let mut rng = Rng::new(9);
/// let red = Hypervector::random(4096, &mut rng);
/// let blue = Hypervector::random(4096, &mut rng);
///
/// let mut classifier = CentroidClassifier::new(4096);
/// // Observations are noisy copies of their class archetype.
/// for i in 0..5 {
///     let mut r = red.clone();
///     r.flip_bits(rng.distinct_indices(400 + i, 4096));
///     classifier.observe("red", &r)?;
///     let mut b = blue.clone();
///     b.flip_bits(rng.distinct_indices(400 + i, 4096));
///     classifier.observe("blue", &b)?;
/// }
/// assert_eq!(classifier.predict(&red), Some("red"));
/// assert_eq!(classifier.predict(&blue), Some("blue"));
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CentroidClassifier<L> {
    dimension: usize,
    metric: SimilarityMetric,
    classes: Vec<(L, MembershipCentroid)>,
}

impl<L: Clone + PartialEq> CentroidClassifier<L> {
    /// Creates an empty classifier over hypervectors of dimension `d`,
    /// using inverse-Hamming similarity.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        Self { dimension: d, metric: SimilarityMetric::default(), classes: Vec::new() }
    }

    /// Sets the similarity metric (builder style).
    #[must_use]
    pub fn with_metric(mut self, metric: SimilarityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The hypervector dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The labels observed so far, in first-observation order.
    pub fn labels(&self) -> impl Iterator<Item = &L> {
        self.classes.iter().map(|(l, _)| l)
    }

    /// Number of distinct classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total training observations across all classes.
    #[must_use]
    pub fn observation_count(&self) -> usize {
        self.classes.iter().map(|(_, acc)| acc.members()).sum()
    }

    /// Adds one training observation for `label`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the encoding has the wrong
    /// dimension.
    pub fn observe(
        &mut self,
        label: L,
        encoding: &Hypervector,
    ) -> Result<(), DimensionMismatchError> {
        if encoding.dimension() != self.dimension {
            return Err(DimensionMismatchError {
                left: self.dimension,
                right: encoding.dimension(),
            });
        }
        match self.classes.iter_mut().find(|(l, _)| *l == label) {
            Some((_, centroid)) => centroid.add(encoding)?,
            None => {
                let mut centroid = MembershipCentroid::new(self.dimension);
                centroid.add(encoding)?;
                self.classes.push((label, centroid));
            }
        }
        Ok(())
    }

    /// Retracts one previously observed training example for `label` —
    /// the churn inverse of [`observe`](Self::observe), an
    /// `O(words · log n)` counter-plane update. A class whose last
    /// observation is forgotten is dropped entirely (its label disappears
    /// from [`labels`](Self::labels) and predictions).
    ///
    /// Returns `true` if `label` was present (and the retraction
    /// applied), `false` if it was unknown.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the encoding has the wrong
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `encoding` was never observed for `label` (counter
    /// underflow — retraction requires the exact observed hypervector).
    pub fn forget(
        &mut self,
        label: &L,
        encoding: &Hypervector,
    ) -> Result<bool, DimensionMismatchError> {
        if encoding.dimension() != self.dimension {
            return Err(DimensionMismatchError {
                left: self.dimension,
                right: encoding.dimension(),
            });
        }
        let Some(index) = self.classes.iter().position(|(l, _)| l == label) else {
            return Ok(false);
        };
        self.classes[index].1.remove(encoding)?;
        if self.classes[index].1.is_empty() {
            self.classes.remove(index);
        }
        Ok(true)
    }

    /// The current binary prototype of a class, if observed.
    #[must_use]
    pub fn prototype(&self, label: &L) -> Option<Hypervector> {
        self.classes
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, centroid)| centroid.read())
    }

    /// Classifies an encoding: the label whose prototype is most similar,
    /// or `None` if no classes were observed. Ties break toward the
    /// earliest-observed class.
    ///
    /// # Panics
    ///
    /// Panics if `encoding` has the wrong dimension.
    #[must_use]
    pub fn predict(&self, encoding: &Hypervector) -> Option<L> {
        let mut best: Option<(L, f64)> = None;
        for (label, similarity) in self.scores(encoding) {
            // Strict '>' keeps ties on the earliest-observed class.
            if best.as_ref().is_none_or(|(_, s)| similarity > *s) {
                best = Some((label, similarity));
            }
        }
        best.map(|(label, _)| label)
    }

    /// The similarity of `encoding` to every class prototype, in
    /// first-observation order (exposed for calibration and thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `encoding` has the wrong dimension.
    #[must_use]
    pub fn scores(&self, encoding: &Hypervector) -> Vec<(L, f64)> {
        assert_eq!(encoding.dimension(), self.dimension, "encoding dimension mismatch");
        self.classes
            .iter()
            .map(|(label, centroid)| {
                (label.clone(), self.metric.evaluate(encoding, &centroid.read()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{CircularBasis, LevelBasis};
    use crate::rng::Rng;

    const D: usize = 10_080; // divisible by 2·360 for exact circular steps

    #[test]
    fn recovers_cluster_archetypes() {
        let mut rng = Rng::new(50);
        let archetypes: Vec<Hypervector> =
            (0..5).map(|_| Hypervector::random(D, &mut rng)).collect();
        let mut classifier = CentroidClassifier::new(D);
        for (label, archetype) in archetypes.iter().enumerate() {
            for _ in 0..7 {
                let mut sample = archetype.clone();
                sample.flip_bits(rng.distinct_indices(2000, D));
                classifier.observe(label, &sample).expect("dims");
            }
        }
        assert_eq!(classifier.class_count(), 5);
        assert_eq!(classifier.observation_count(), 35);
        // Fresh noisy samples classify back to their archetype.
        for (label, archetype) in archetypes.iter().enumerate() {
            let mut probe = archetype.clone();
            probe.flip_bits(rng.distinct_indices(2500, D));
            assert_eq!(classifier.predict(&probe), Some(label), "class {label}");
        }
    }

    #[test]
    fn forget_retracts_observations_exactly() {
        let mut rng = Rng::new(54);
        let a = Hypervector::random(D, &mut rng);
        let churn: Vec<Hypervector> =
            (0..4).map(|_| Hypervector::random(D, &mut rng)).collect();
        let mut classifier = CentroidClassifier::new(D);
        classifier.observe("a", &a).expect("dims");
        let baseline = classifier.prototype(&"a").expect("observed");
        // Pile churn observations onto the class, then retract them all:
        // the prototype must return to its exact baseline.
        for hv in &churn {
            classifier.observe("a", hv).expect("dims");
        }
        for hv in &churn {
            assert!(classifier.forget(&"a", hv).expect("dims"));
        }
        assert_eq!(classifier.prototype(&"a").expect("observed"), baseline);
        assert_eq!(classifier.observation_count(), 1);
        // Forgetting an unknown label is a no-op, not an error.
        assert!(!classifier.forget(&"ghost", &a).expect("dims"));
        // Forgetting the last observation drops the class entirely.
        assert!(classifier.forget(&"a", &a).expect("dims"));
        assert_eq!(classifier.class_count(), 0);
        assert_eq!(classifier.predict(&a), None);
        // Dimension mismatch is an error before any lookup.
        assert!(classifier.forget(&"a", &Hypervector::zeros(64)).is_err());
    }

    #[test]
    fn empty_classifier_predicts_none() {
        let classifier: CentroidClassifier<u8> = CentroidClassifier::new(64);
        assert_eq!(classifier.predict(&Hypervector::zeros(64)), None);
        assert_eq!(classifier.class_count(), 0);
        assert!(classifier.prototype(&0).is_none());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut classifier = CentroidClassifier::new(64);
        assert!(classifier.observe("x", &Hypervector::zeros(65)).is_err());
    }

    #[test]
    fn single_observation_prototype_is_the_observation() {
        let mut rng = Rng::new(51);
        let sample = Hypervector::random(D, &mut rng);
        let mut classifier = CentroidClassifier::new(D);
        classifier.observe("only", &sample).expect("dims");
        assert_eq!(classifier.prototype(&"only").expect("observed"), sample);
        assert_eq!(classifier.predict(&sample), Some("only"));
        assert_eq!(classifier.labels().collect::<Vec<_>>(), vec![&"only"]);
    }

    #[test]
    fn scores_expose_all_classes_in_order() {
        let mut rng = Rng::new(52);
        let a = Hypervector::random(D, &mut rng);
        let b = Hypervector::random(D, &mut rng);
        let mut classifier = CentroidClassifier::new(D);
        classifier.observe("a", &a).expect("dims");
        classifier.observe("b", &b).expect("dims");
        let scores = classifier.scores(&a);
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].0, "a");
        assert_eq!(scores[1].0, "b");
        assert!(scores[0].1 > scores[1].1);
    }

    /// The paper's future-work thesis, quantified: classifying the season
    /// from the day of the year. Winter *wraps* (December → February), so
    /// a level basis — whose first and last levels are maximally
    /// dissimilar — tears winter apart at New Year, while the circular
    /// basis represents it faithfully.
    #[test]
    fn circular_beats_level_on_periodic_features() {
        let seasons = |day: usize| match day {
            0..=58 | 334..=365 => "winter", // Jan, Feb, Dec
            59..=150 => "spring",
            151..=242 => "summer",
            _ => "autumn",
        };
        let mut rng = Rng::new(53);
        let circular = CircularBasis::generate(366, D, &mut rng).expect("valid parameters");
        let level = LevelBasis::generate(366, D, &mut rng).expect("valid parameters");

        // Train on every 4th day, test on the days between.
        let accuracy = |encode: &dyn Fn(usize) -> Hypervector| {
            let mut classifier = CentroidClassifier::new(D);
            for day in (0..366).step_by(4) {
                classifier.observe(seasons(day), &encode(day)).expect("dims");
            }
            let test_days: Vec<usize> = (0..366).filter(|d| d % 4 == 2).collect();
            let correct = test_days
                .iter()
                .filter(|&&day| classifier.predict(&encode(day)) == Some(seasons(day)))
                .count();
            correct as f64 / test_days.len() as f64
        };
        let circular_accuracy = accuracy(&|day| circular[day].clone());
        let level_accuracy = accuracy(&|day| level[day].clone());
        assert!(
            circular_accuracy > level_accuracy,
            "circular {circular_accuracy:.3} must beat level {level_accuracy:.3}"
        );
        assert!(circular_accuracy > 0.9, "circular accuracy too low: {circular_accuracy:.3}");

        // The failure is specifically at the wrap: level encoding around
        // New Year's Eve misclassifies winter, circular does not.
        let mut level_classifier = CentroidClassifier::new(D);
        let mut circular_classifier = CentroidClassifier::new(D);
        for day in (0..366).step_by(4) {
            level_classifier.observe(seasons(day), &level[day]).expect("dims");
            circular_classifier.observe(seasons(day), &circular[day]).expect("dims");
        }
        for day in [360usize, 362, 365, 1, 3] {
            assert_eq!(
                circular_classifier.predict(&circular[day]),
                Some("winter"),
                "circular misclassified day {day}"
            );
        }
    }
}
