//! The batched nearest-neighbour engine: one contiguous word matrix under
//! every associative-memory scan.
//!
//! [`AssociativeMemory`](crate::memory::AssociativeMemory) stores its
//! entries as `Vec<(K, Hypervector)>` — fine as an API surface, hostile as
//! a scan layout: every candidate costs a pointer chase into a separately
//! allocated word buffer. [`BatchLookup`] keeps a synchronized *row-major
//! word matrix* (`rows × words_per_row`, one flat `Vec<u64>`), so a scan is
//! a single linear walk that the prefetcher can see coming.
//!
//! Three scan shapes, all allocation-free in steady state:
//!
//! * [`nearest_one`](BatchLookup::nearest_one) — single-probe argmin with
//!   best-so-far abandonment (`hamming_distance_within` semantics): a
//!   candidate is dropped the moment its partial distance exceeds the
//!   current best;
//! * [`nearest_batch_into`](BatchLookup::nearest_batch_into) — multi-probe
//!   scan, cache-blocked so each block of member rows is streamed through
//!   once for the whole probe batch (the emulator issues thousands of
//!   lookups per tick);
//! * [`nearest_in_range`](BatchLookup::nearest_in_range) — the shard
//!   primitive for the multi-threaded path, with a caller-supplied
//!   starting bound so shards can inherit a global best.

use crate::hypervector::{hamming_words_within, DimensionMismatchError, Hypervector};

/// Rows of member hypervectors in one contiguous, cache-blocked word
/// matrix, scanned by Hamming distance.
///
/// Row indices are stable under [`push`](Self::push) (append) and shift
/// down under [`rebuild`](Self::rebuild); callers that key rows (the
/// associative memory) own the index↔key correspondence.
#[derive(Debug, Clone)]
pub struct BatchLookup {
    dimension: usize,
    row_words: usize,
    rows: usize,
    matrix: Vec<u64>,
}

/// A scan hit: row index and exact Hamming distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Index of the winning row.
    pub row: usize,
    /// Its exact Hamming distance to the probe.
    pub distance: usize,
}

std::thread_local! {
    /// Reusable `(prefix distance, row)` buffer for the prefix-filter
    /// scan in [`BatchLookup::nearest_one`] — queries take `&self`, so the
    /// scratch lives with the thread, keeping the hot path allocation-free.
    static PREFIX_SCRATCH: std::cell::RefCell<Vec<(u32, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// How many rows one blocked pass streams before moving to the next probe.
///
/// 16 rows of a `d = 10_240` memory are 20 KiB — comfortably inside L1/L2
/// alongside the probe — while still amortizing the per-probe bookkeeping.
const ROW_BLOCK: usize = 16;

impl BatchLookup {
    /// An empty engine for dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        Self { dimension: d, row_words: d.div_ceil(64), rows: 0, matrix: Vec::new() }
    }

    /// Hypervector dimension of every row.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of member rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the engine holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a member row.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    pub fn push(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        if hv.dimension() != self.dimension {
            return Err(DimensionMismatchError {
                left: self.dimension,
                right: hv.dimension(),
            });
        }
        self.matrix.extend_from_slice(hv.as_words());
        self.rows += 1;
        Ok(())
    }

    /// Replaces the whole matrix from an entry iterator (used after
    /// removals, which are rare next to lookups).
    pub fn rebuild<'a, I: Iterator<Item = &'a Hypervector>>(&mut self, rows: I) {
        self.matrix.clear();
        self.rows = 0;
        for hv in rows {
            assert_eq!(hv.dimension(), self.dimension, "row dimension mismatch");
            self.matrix.extend_from_slice(hv.as_words());
            self.rows += 1;
        }
    }

    /// The packed words of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.matrix[i * self.row_words..(i + 1) * self.row_words]
    }

    /// Flips one bit of row `i` (noise injection keeps the engine in sync
    /// with the owning memory's entries).
    pub(crate) fn flip_bit(&mut self, row: usize, bit: usize) {
        debug_assert!(bit < self.dimension);
        self.matrix[row * self.row_words + bit / 64] ^= 1u64 << (bit % 64);
    }

    /// Nearest row to `probe` over all rows: lowest distance, earliest row
    /// on ties. `None` when empty.
    ///
    /// Uses a **prefix-filter** scan when the population is large enough:
    /// a first pass computes every row's distance on a ~12% word prefix
    /// (a lower bound on its full distance). If one row's prefix stands
    /// well below the field — the shape of real HDC inference, where the
    /// probe is a (possibly noisy) copy of a stored vector — rows are then
    /// verified in ascending-prefix order, and the scan stops at the first
    /// prefix exceeding the best full distance: the near match is verified
    /// fully, everything else dies on its prefix alone. When no prefix
    /// stands out (uniformly random probe) the scan falls back to the
    /// plain early-exit sweep, so the filter can win big and never costs
    /// more than the prefix pass. Both paths return the exact argmin with
    /// the earliest-row tie-break.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn nearest_one(&self, probe: &Hypervector) -> Option<Hit> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        // Keep the prefix a whole number of 16-word kernel blocks when the
        // rows are long enough, so both passes run fully unrolled.
        let prefix_words = match self.row_words / 8 {
            p if p >= 16 => p & !15,
            p => p,
        };
        if self.rows < 8 || prefix_words == 0 {
            return self.nearest_in_range(probe, 0, self.rows, self.dimension);
        }
        let probe_words = probe.as_words();
        let probe_prefix = &probe_words[..prefix_words];

        PREFIX_SCRATCH.with(|cell| {
            // Pass 1: prefix distances (lower bounds) for every row, in a
            // thread-local scratch so steady-state queries allocate nothing.
            let mut prefixes = cell.borrow_mut();
            prefixes.clear();
            let mut min_p = u32::MAX;
            let mut sum_p: u64 = 0;
            for row in 0..self.rows {
                let row_prefix =
                    &self.matrix[row * self.row_words..row * self.row_words + prefix_words];
                let p: u32 = probe_prefix
                    .iter()
                    .zip(row_prefix)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                min_p = min_p.min(p);
                sum_p += u64::from(p);
                prefixes.push((p, row as u32));
            }
            let mean_p = sum_p / self.rows as u64;
            // A stand-out minimum (≤ ¾ of the mean) signals a near match:
            // verifying in ascending-prefix order will then kill the rest
            // of the field on prefixes alone. Otherwise keep insertion
            // order — same verification cost, no sort. Either way pass 2
            // only scans suffixes, so no word is counted twice.
            let sorted = u64::from(min_p) * 4 <= mean_p * 3;
            if sorted {
                prefixes.sort_unstable();
            }

            // Pass 2: a prefix strictly above the best full distance can
            // neither win nor tie (suffix distances are non-negative).
            let mut best: Option<Hit> = None;
            let mut limit = self.dimension;
            for &(p, row) in prefixes.iter() {
                if p as usize > limit {
                    if sorted {
                        break;
                    }
                    continue;
                }
                let row = row as usize;
                let row_rest = &self.matrix
                    [row * self.row_words + prefix_words..(row + 1) * self.row_words];
                let Some(rest) = hamming_words_within(
                    &probe_words[prefix_words..],
                    row_rest,
                    limit - p as usize,
                ) else {
                    continue;
                };
                let distance = p as usize + rest;
                let better = match best {
                    None => true,
                    Some(b) => {
                        distance < b.distance || (distance == b.distance && row < b.row)
                    }
                };
                if better {
                    best = Some(Hit { row, distance });
                    limit = distance;
                }
            }
            best
        })
    }

    /// Nearest row within `rows[start..end)`, considering only candidates
    /// at distance `≤ bound` (callers pass the dimension for an unbounded
    /// scan, or a shared best-so-far to prune across shards).
    ///
    /// Ties break toward the earliest row, and a candidate merely *equal*
    /// to `bound` is still returned — both properties the quantized
    /// arg-max in `hdhash-core` relies on.
    #[must_use]
    pub fn nearest_in_range(
        &self,
        probe: &Hypervector,
        start: usize,
        end: usize,
        bound: usize,
    ) -> Option<Hit> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        let probe_words = probe.as_words();
        let mut best: Option<Hit> = None;
        let mut limit = bound;
        for row in start..end.min(self.rows) {
            let row_words = &self.matrix[row * self.row_words..(row + 1) * self.row_words];
            if let Some(distance) = hamming_words_within(probe_words, row_words, limit) {
                if best.is_none_or(|b| distance < b.distance) {
                    best = Some(Hit { row, distance });
                    limit = distance;
                }
            }
        }
        best
    }

    /// Resolves a batch of probes in one cache-blocked sweep: member rows
    /// are streamed block by block, each block scanned for every probe
    /// before the next block is touched, so the matrix is read once per
    /// `ROW_BLOCK` rows regardless of batch size.
    ///
    /// Results land in `out` (cleared and refilled; reuse the buffer to
    /// keep the path allocation-free). Each slot matches
    /// [`nearest_one`](Self::nearest_one) for the corresponding probe.
    ///
    /// # Panics
    ///
    /// Panics if any probe has the wrong dimension.
    pub fn nearest_batch_into(&self, probes: &[&Hypervector], out: &mut Vec<Option<Hit>>) {
        for probe in probes {
            assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        }
        out.clear();
        out.resize(probes.len(), None);
        let mut block_start = 0;
        while block_start < self.rows {
            let block_end = (block_start + ROW_BLOCK).min(self.rows);
            for (probe, slot) in probes.iter().zip(out.iter_mut()) {
                let probe_words = probe.as_words();
                let mut limit = slot.map_or(self.dimension, |b| b.distance);
                for row in block_start..block_end {
                    let row_words =
                        &self.matrix[row * self.row_words..(row + 1) * self.row_words];
                    if let Some(distance) =
                        hamming_words_within(probe_words, row_words, limit)
                    {
                        if slot.is_none_or(|b| distance < b.distance) {
                            *slot = Some(Hit { row, distance });
                            limit = distance;
                        }
                    }
                }
            }
            block_start = block_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn engine_with(n: usize, d: usize, seed: u64) -> (BatchLookup, Vec<Hypervector>) {
        let mut rng = Rng::new(seed);
        let mut engine = BatchLookup::new(d);
        let mut rows = Vec::new();
        for _ in 0..n {
            let hv = Hypervector::random(d, &mut rng);
            engine.push(&hv).expect("dims");
            rows.push(hv);
        }
        (engine, rows)
    }

    fn naive_nearest(rows: &[Hypervector], probe: &Hypervector) -> Option<Hit> {
        rows.iter()
            .enumerate()
            .map(|(i, hv)| Hit { row: i, distance: probe.hamming_distance(hv) })
            .min_by_key(|h| (h.distance, h.row))
    }

    #[test]
    fn nearest_matches_naive_scan() {
        for d in [64usize, 65, 130, 1000] {
            let (engine, rows) = engine_with(40, d, d as u64);
            let mut rng = Rng::new(999);
            for _ in 0..25 {
                let probe = Hypervector::random(d, &mut rng);
                assert_eq!(
                    engine.nearest_one(&probe),
                    naive_nearest(&rows, &probe),
                    "d={d}"
                );
            }
        }
    }

    #[test]
    fn noisy_match_probes_agree_with_naive_scan() {
        // The prefix-filter path: the probe is a corrupted copy of one row,
        // the shape of real HDC inference.
        for d in [512usize, 1000, 10_240] {
            let (engine, rows) = engine_with(200, d, 3 * d as u64 + 1);
            let mut rng = Rng::new(4242);
            for _ in 0..15 {
                let victim = rng.next_below(200) as usize;
                let mut probe = rows[victim].clone();
                probe.flip_bits(rng.distinct_indices(d / 20, d));
                let hit = engine.nearest_one(&probe);
                assert_eq!(hit, naive_nearest(&rows, &probe), "d={d}");
                assert_eq!(hit.expect("non-empty").row, victim);
            }
        }
    }

    #[test]
    fn batch_matches_single_probe() {
        let (engine, _) = engine_with(100, 320, 5);
        let mut rng = Rng::new(6);
        let probes: Vec<Hypervector> =
            (0..37).map(|_| Hypervector::random(320, &mut rng)).collect();
        let refs: Vec<&Hypervector> = probes.iter().collect();
        let mut out = Vec::new();
        engine.nearest_batch_into(&refs, &mut out);
        assert_eq!(out.len(), probes.len());
        for (probe, got) in probes.iter().zip(&out) {
            assert_eq!(*got, engine.nearest_one(probe));
        }
    }

    #[test]
    fn ties_break_to_earliest_row() {
        let mut engine = BatchLookup::new(128);
        let hv = Hypervector::ones(128);
        engine.push(&hv).expect("dims");
        engine.push(&hv).expect("dims");
        let hit = engine.nearest_one(&hv).expect("non-empty");
        assert_eq!((hit.row, hit.distance), (0, 0));
    }

    #[test]
    fn bound_still_admits_equal_distance() {
        let (engine, rows) = engine_with(10, 256, 8);
        let probe = rows[7].clone();
        // Bound exactly the winner's distance (0): it must still be found.
        let hit = engine.nearest_in_range(&probe, 0, 10, 0).expect("bounded hit");
        assert_eq!(hit.row, 7);
        // A bound below every distance yields nothing.
        let mut rng = Rng::new(77);
        let far = Hypervector::random(256, &mut rng);
        assert!(engine.nearest_in_range(&far, 0, 10, 0).is_none());
    }

    #[test]
    fn rebuild_and_rows_roundtrip() {
        let (mut engine, rows) = engine_with(9, 130, 11);
        assert_eq!(engine.len(), 9);
        for (i, hv) in rows.iter().enumerate() {
            assert_eq!(engine.row(i), hv.as_words());
        }
        engine.rebuild(rows.iter().skip(4));
        assert_eq!(engine.len(), 5);
        assert_eq!(engine.row(0), rows[4].as_words());
    }

    #[test]
    fn empty_engine_finds_nothing() {
        let engine = BatchLookup::new(64);
        let probe = Hypervector::zeros(64);
        assert!(engine.nearest_one(&probe).is_none());
        assert!(engine.is_empty());
        let mut out = vec![Some(Hit { row: 9, distance: 9 })];
        engine.nearest_batch_into(&[&probe], &mut out);
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn push_rejects_wrong_dimension() {
        let mut engine = BatchLookup::new(64);
        assert!(engine.push(&Hypervector::zeros(65)).is_err());
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.dimension(), 64);
    }

    #[test]
    fn flip_bit_tracks_rows() {
        let (mut engine, rows) = engine_with(3, 130, 13);
        engine.flip_bit(2, 129);
        let mut expect = rows[2].clone();
        expect.flip_bit(129);
        assert_eq!(engine.row(2), expect.as_words());
    }
}
