//! The batched nearest-neighbour engine: one contiguous word matrix under
//! every associative-memory scan.
//!
//! [`AssociativeMemory`](crate::memory::AssociativeMemory) stores its
//! entries as `Vec<(K, Hypervector)>` — fine as an API surface, hostile as
//! a scan layout: every candidate costs a pointer chase into a separately
//! allocated word buffer. [`BatchLookup`] keeps a synchronized flat word
//! matrix (one `Vec<u64>`), so a scan is a linear walk the prefetcher can
//! see coming.
//!
//! Three scan shapes, all allocation-free in steady state:
//!
//! * [`nearest_one`](BatchLookup::nearest_one) — single-probe argmin
//!   through an **adaptive incremental-prefix schedule** (see below);
//! * [`nearest_batch_into`](BatchLookup::nearest_batch_into) — multi-probe
//!   scan, cache-blocked so each block of member rows is streamed through
//!   once for the whole probe batch (the emulator issues thousands of
//!   lookups per tick);
//! * [`nearest_in_range`](BatchLookup::nearest_in_range) — the shard
//!   primitive for the multi-threaded path, with a caller-supplied
//!   starting bound so shards can inherit a global best.
//!
//! ## Matrix layouts
//!
//! The matrix has two physical layouts, selected (or autotuned) at
//! construction via [`EngineOptions`]:
//!
//! * [`MatrixLayout::RowMajor`] — one row after another
//!   (`matrix[row * row_words + w]`). Full-row scans are perfectly
//!   sequential; a *prefix* round of width `k` reads `k` words then skips
//!   `row_words − k`, a strided access pattern that wastes most of every
//!   cache line once `k` is small relative to the row.
//! * [`MatrixLayout::Interleaved`] — column-blocked word interleaving:
//!   rows are grouped into blocks of `row_block` *lanes* and stored
//!   word-major within the block
//!   (`matrix[(row/B)·row_words·B + w·B + row%B]`). The first `k` words
//!   of **every** lane in a block are one contiguous range, so prefix
//!   rounds — the hot step of the adaptive schedule — become sequential
//!   streams, and widening a prefix from `k₀` to `k₁` words reads exactly
//!   the new segment. Scans go through the accumulating fused kernel
//!   [`hdhash_simdkernels::xor_popcount_interleaved`]; whole blocks are
//!   abandoned early once every lane's lower bound exceeds the current
//!   pruning limit.
//!
//! Both layouts produce **byte-identical results** on every query path —
//! same argmin, same tie-breaks — pinned by this module's tests and the
//! cross-layout property suite in `crates/hdc/tests/kernel_equivalence.rs`.
//! Row-major scans use the overwriting fused kernel
//! ([`hdhash_simdkernels::xor_popcount_rows`]) for bulk prefix rounds and
//! drop software prefetch hints one row ahead on sweep loops.
//! `retain_rows` compaction under the interleaved layout rebuilds into a
//! persistent per-engine arena buffer that is swapped with the matrix and
//! kept, so membership churn reuses the same two allocations forever
//! instead of fragmenting the heap.
//!
//! ## The adaptive scan schedule
//!
//! An HD-hash table sees two probe shapes with opposite optimal scans.
//! *Inference-shaped* probes (a noisy copy of a stored row — the memory's
//! contract) have one far-below-the-field near match: a short prefix pass
//! identifies it and the rest of the population dies on prefix lower
//! bounds alone. *Adversarial* probes (uniformly random, no near match)
//! gain nothing from any filter: every partial distance concentrates at
//! half the prefix, so the only good plan is one straight early-exit
//! sweep. A fixed prefix filter is therefore pure overhead exactly when
//! the table is under adversarial load.
//!
//! [`nearest_one`] resolves the tension twice over:
//!
//! 1. **Incremental-prefix escalation** — the first round scores every
//!    row on a short prefix (~1/8 of the words). If a row stands out, the
//!    leader is verified fully, survivors are re-ranked, and subsequent
//!    rounds widen the prefix geometrically (×4 per round), pruning any
//!    row whose partial distance (a lower bound) exceeds the best full
//!    distance. No word is ever counted twice: each round extends the
//!    stored partials over the new segment only. If no row stands out the
//!    scan completes as one suffix sweep in insertion order, still
//!    reusing the round-one partials.
//! 2. **An online calibrator** — a per-engine atomic score tracks whether
//!    recent probes were inference-shaped (filter helped) or adversarial
//!    (filter idle). Under sustained adversarial traffic the engine
//!    *collapses to the straight blocked scan*, skipping the prefix pass
//!    entirely, and re-probes the filtered path on a small fraction of
//!    queries so it can re-engage when the workload turns.
//!
//! Every path — tiny table, straight scan, early collapse, full
//! escalation, either layout — returns the exact argmin with the
//! earliest-row tie-break; the property suite pins each one against
//! `ops::reference`.
//!
//! [`nearest_one`]: BatchLookup::nearest_one

use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};

use crate::hypervector::{hamming_words_within, DimensionMismatchError, Hypervector};

/// Physical layout of the scan matrix. See the
/// [module docs](self#matrix-layouts) for the trade-off; both layouts are
/// result-identical on every query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixLayout {
    /// One row after another: word `w` of row `r` lives at
    /// `r * row_words + w`. Best when scans read whole rows.
    RowMajor,
    /// Column-blocked word interleaving: rows are grouped into blocks of
    /// `row_block` lanes, stored word-major within the block, so a prefix
    /// of the whole block is one contiguous range. Best when scans read
    /// short prefixes of many rows.
    Interleaved,
}

impl MatrixLayout {
    /// Every layout, in autotune preference order (benchmarks sweep this).
    pub const ALL: [MatrixLayout; 2] = [MatrixLayout::RowMajor, MatrixLayout::Interleaved];

    /// Stable external name (config files, bench JSON, CLI flags).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MatrixLayout::RowMajor => "row-major",
            MatrixLayout::Interleaved => "interleaved",
        }
    }

    /// Inverse of [`name`](Self::name), tolerant of underscore spellings.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "row-major" | "row_major" | "rowmajor" => Some(MatrixLayout::RowMajor),
            "interleaved" => Some(MatrixLayout::Interleaved),
            _ => None,
        }
    }
}

/// Construction options for [`BatchLookup`] (and everything above it:
/// the associative memory, the HD-hash table, the serving shards).
///
/// Every field defaults to `None`, meaning *autotune*: the engine picks
/// the measured-best value for the dimension and the detected kernel tier
/// from a small static table fed by the `bench_layout` sweep (recorded in
/// `BENCH_lookup.json`). Set a field to pin it — benchmarks and the
/// cross-layout property tests do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EngineOptions {
    /// Physical matrix layout; `None` = autotune from dimension + tier.
    pub layout: Option<MatrixLayout>,
    /// Rows per block: the lane count of the interleaved layout and the
    /// cache-block height of row-major batch sweeps. `None` = autotune.
    pub row_block: Option<usize>,
}

impl EngineOptions {
    /// Pins the matrix layout.
    #[must_use]
    pub fn with_layout(mut self, layout: MatrixLayout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Pins the row-block height (must be positive).
    #[must_use]
    pub fn with_row_block(mut self, row_block: usize) -> Self {
        self.row_block = Some(row_block);
        self
    }
}

/// Rows of member hypervectors in one contiguous, cache-blocked word
/// matrix, scanned by Hamming distance.
///
/// Row indices are stable under [`push`](Self::push) (append) and shift
/// down under [`rebuild`](Self::rebuild) and
/// [`retain_rows`](Self::retain_rows); callers that key rows (the
/// associative memory) own the index↔key correspondence.
#[derive(Debug, Clone)]
pub struct BatchLookup {
    dimension: usize,
    row_words: usize,
    rows: usize,
    layout: MatrixLayout,
    row_block: usize,
    matrix: Vec<u64>,
    /// Compaction arena for the interleaved layout: `retain_rows` rebuilds
    /// into this buffer and swaps it with `matrix`, so churn ping-pongs
    /// between two long-lived allocations instead of fragmenting.
    arena: Vec<u64>,
    calibrator: ScanCalibrator,
}

/// The per-engine online probe-shape calibrator.
///
/// A small saturating score votes on whether recent single-probe queries
/// were inference-shaped (`+1`: the prefix round found a stand-out row) or
/// adversarial (`-2`: it did not). While the score is negative the engine
/// skips the prefix pass and runs the straight blocked scan, re-probing
/// the filtered path once every [`EXPLORE_PERIOD`] queries so a workload
/// shift back to inference-shaped traffic re-engages the filter.
///
/// All state is atomic with `Relaxed` ordering: queries take `&self`, the
/// score is a heuristic, and a lost update merely delays adaptation by a
/// query — exactness of results never depends on it.
#[derive(Debug)]
struct ScanCalibrator {
    /// Saturating vote in `[-SCORE_SATURATION, SCORE_SATURATION]`;
    /// negative collapses the scan.
    score: AtomicI32,
    /// Query counter driving periodic exploration while collapsed.
    queries: AtomicU32,
}

/// Score bounds; small so both collapse and re-engagement happen within a
/// handful of queries.
const SCORE_SATURATION: i32 = 8;
/// Fresh engines assume inference-shaped probes (the memory's contract);
/// two adversarial probes in a row are enough to collapse from here.
const INITIAL_SCORE: i32 = 2;
/// While collapsed, one query in this many runs the filtered path anyway.
const EXPLORE_PERIOD: u32 = 32;

impl ScanCalibrator {
    fn new() -> Self {
        Self { score: AtomicI32::new(INITIAL_SCORE), queries: AtomicU32::new(0) }
    }

    /// Whether this query should attempt the filtered schedule.
    fn wants_filter(&self) -> bool {
        if self.score.load(Ordering::Relaxed) >= 0 {
            return true;
        }
        // Collapsed: still explore occasionally.
        self.queries.fetch_add(1, Ordering::Relaxed).is_multiple_of(EXPLORE_PERIOD)
    }

    /// Records whether the prefix round found a stand-out row.
    fn record(&self, stood_out: bool) {
        // Saturating add/sub via compare-free clamp: racing updates can
        // overshoot transiently, which the clamp on the next load hides.
        let delta = if stood_out { 1 } else { -2 };
        let old = self.score.fetch_add(delta, Ordering::Relaxed);
        let new = old + delta;
        if !(-SCORE_SATURATION..=SCORE_SATURATION).contains(&new) {
            let clamped = new.clamp(-SCORE_SATURATION, SCORE_SATURATION);
            self.score.store(clamped, Ordering::Relaxed);
        }
    }
}

impl Clone for ScanCalibrator {
    fn clone(&self) -> Self {
        Self {
            score: AtomicI32::new(self.score.load(Ordering::Relaxed)),
            queries: AtomicU32::new(self.queries.load(Ordering::Relaxed)),
        }
    }
}

/// A scan hit: row index and exact Hamming distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Index of the winning row.
    pub row: usize,
    /// Its exact Hamming distance to the probe.
    pub distance: usize,
}

std::thread_local! {
    /// Reusable `(prefix distance, row)` buffer for the prefix-filter
    /// scan in [`BatchLookup::nearest_one`] — queries take `&self`, so the
    /// scratch lives with the thread, keeping the hot path allocation-free.
    static PREFIX_SCRATCH: std::cell::RefCell<Vec<(u32, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };

    /// Reusable distance buffer for the fused row-major prefix round.
    static DIST_SCRATCH: std::cell::RefCell<Vec<u32>> =
        const { std::cell::RefCell::new(Vec::new()) };

    /// Reusable per-lane accumulators for interleaved block sweeps.
    static LANE_SCRATCH: std::cell::RefCell<Vec<u32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Autotune fallback for the rows-per-block height: 16 rows of a
/// `d = 10_240` memory are 20 KiB — comfortably inside L1/L2 alongside
/// the probe — while still amortizing the per-probe bookkeeping.
const DEFAULT_ROW_BLOCK: usize = 16;

/// Populations below this always scan straight: the prefix bookkeeping
/// cannot pay for itself over a handful of rows.
const MIN_FILTER_ROWS: usize = 8;

/// Upper bound on schedule rounds (widths grow ×4 per round, so even
/// gigabit rows fit; the array lives on the stack).
const MAX_ROUNDS: usize = 16;

/// Chunk width (words) between early-abandon checks when an interleaved
/// block sweep extends its lane accumulators: 64 words × 16 lanes = 8 KiB
/// per check, long enough for the fused kernel to stream flat out.
const SUFFIX_CHUNK_WORDS: usize = 64;

/// Lane-accumulator sentinel for rows pruned before (or outside) a block
/// sweep. Far above any distance but with headroom for the accumulation
/// that still lands on pruned lanes (distances fit u32 throughout the
/// engine, so `PRUNED + dimension` cannot wrap).
const PRUNED: u32 = u32::MAX / 2;

impl BatchLookup {
    /// An empty engine for dimension `d` with autotuned layout options.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        Self::with_options(d, EngineOptions::default())
    }

    /// An empty engine for dimension `d`; unset [`EngineOptions`] fields
    /// are filled from the static autotune table (dimension × detected
    /// kernel tier, measured by `bench_layout`).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `options.row_block == Some(0)`.
    #[must_use]
    pub fn with_options(d: usize, options: EngineOptions) -> Self {
        assert!(d > 0, "dimension must be positive");
        if let Some(b) = options.row_block {
            assert!(b > 0, "row block must be positive");
        }
        let row_words = d.div_ceil(64);
        let (layout, row_block) = Self::autotuned(row_words, options);
        Self {
            dimension: d,
            row_words,
            rows: 0,
            layout,
            row_block,
            matrix: Vec::new(),
            arena: Vec::new(),
            calibrator: ScanCalibrator::new(),
        }
    }

    /// Resolves unset options from the static autotune table.
    ///
    /// The table is fed by the `bench_layout` sweep (layout × `ROW_BLOCK`
    /// × kernel tier × dimension; see the `layout_sweep` block of
    /// `BENCH_lookup.json` and `docs/BENCHMARKS.md` for regeneration).
    /// The sweep's verdict on the AVX-capable reference host: row-major
    /// wins or ties at every measured dimension — the adaptive schedule's
    /// per-row early abandon prunes harder than the interleaved sweep's
    /// all-lanes-dead test, and at `d = 10_240` that gap is ~1.6× on
    /// noisy-probe workloads. Block heights 8–32 measure within noise of
    /// each other (only 4 is consistently bad), so the default stays at
    /// [`DEFAULT_ROW_BLOCK`]. The interleaved layout remains selectable
    /// via [`EngineOptions::with_layout`] for streaming-dominated
    /// workloads and is property-pinned byte-identical to row-major.
    fn autotuned(_row_words: usize, options: EngineOptions) -> (MatrixLayout, usize) {
        let layout = options.layout.unwrap_or(MatrixLayout::RowMajor);
        let row_block = options.row_block.unwrap_or(DEFAULT_ROW_BLOCK);
        (layout, row_block)
    }

    /// Hypervector dimension of every row.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The physical matrix layout this engine scans.
    #[must_use]
    pub fn layout(&self) -> MatrixLayout {
        self.layout
    }

    /// Rows per block: interleave lane count / batch cache-block height.
    #[must_use]
    pub fn row_block(&self) -> usize {
        self.row_block
    }

    /// Number of member rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the engine holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Flat index of word `w` of row `row` under the current layout.
    #[inline]
    fn word_index(&self, row: usize, w: usize) -> usize {
        match self.layout {
            MatrixLayout::RowMajor => row * self.row_words + w,
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                (row / b) * self.row_words * b + w * b + (row % b)
            }
        }
    }

    /// Appends a member row.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    pub fn push(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        if hv.dimension() != self.dimension {
            return Err(DimensionMismatchError {
                left: self.dimension,
                right: hv.dimension(),
            });
        }
        match self.layout {
            MatrixLayout::RowMajor => self.matrix.extend_from_slice(hv.as_words()),
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                if self.rows.is_multiple_of(b) {
                    // Open a zeroed block; tail lanes stay zero-padded
                    // until later pushes claim them.
                    self.matrix.resize(self.matrix.len() + self.row_words * b, 0);
                }
                let off = (self.rows / b) * self.row_words * b + self.rows % b;
                for (w, &word) in hv.as_words().iter().enumerate() {
                    self.matrix[off + w * b] = word;
                }
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Replaces the whole matrix from an entry iterator (used when the
    /// owning memory's entries are the only source of truth, e.g. after
    /// noise is cleared).
    pub fn rebuild<'a, I: Iterator<Item = &'a Hypervector>>(&mut self, rows: I) {
        self.matrix.clear();
        self.rows = 0;
        for hv in rows {
            assert_eq!(hv.dimension(), self.dimension, "row dimension mismatch");
            self.push(hv).expect("dimension checked above");
        }
    }

    /// Drops every row whose index fails `keep`, compacting the matrix
    /// without touching the owning entries. Surviving rows keep their
    /// relative order, so the earliest-row tie-break still matches the
    /// owner's entry order.
    ///
    /// Row-major compaction is one forward `copy_within` pass in place.
    /// Interleaved compaction re-lanes survivors into the persistent
    /// per-engine arena and swaps it with the matrix, so sustained
    /// membership churn reuses the same two allocations instead of
    /// fragmenting the heap.
    pub fn retain_rows<F: FnMut(usize) -> bool>(&mut self, mut keep: F) {
        match self.layout {
            MatrixLayout::RowMajor => {
                let w = self.row_words;
                let mut kept = 0usize;
                for row in 0..self.rows {
                    if keep(row) {
                        if kept != row {
                            self.matrix.copy_within(row * w..(row + 1) * w, kept * w);
                        }
                        kept += 1;
                    }
                }
                self.rows = kept;
                self.matrix.truncate(kept * w);
            }
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                let rw = self.row_words;
                self.arena.clear();
                let mut kept = 0usize;
                for row in 0..self.rows {
                    if !keep(row) {
                        continue;
                    }
                    if kept.is_multiple_of(b) {
                        self.arena.resize(self.arena.len() + rw * b, 0);
                    }
                    let src = (row / b) * rw * b + row % b;
                    let dst = (kept / b) * rw * b + kept % b;
                    for w in 0..rw {
                        self.arena[dst + w * b] = self.matrix[src + w * b];
                    }
                    kept += 1;
                }
                std::mem::swap(&mut self.matrix, &mut self.arena);
                // The old matrix becomes the next compaction's arena;
                // clearing keeps its capacity.
                self.arena.clear();
                self.rows = kept;
            }
        }
    }

    /// Copies the packed words of row `i` into `out` (cleared first).
    ///
    /// Layout-independent replacement for borrowing a row slice, which
    /// only the row-major layout could offer; callers needing bulk
    /// distances should prefer [`distances_into`](Self::distances_into).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn copy_row_into(&self, i: usize, out: &mut Vec<u64>) {
        assert!(i < self.rows, "row index out of range");
        out.clear();
        match self.layout {
            MatrixLayout::RowMajor => {
                out.extend_from_slice(
                    &self.matrix[i * self.row_words..(i + 1) * self.row_words],
                );
            }
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                let off = (i / b) * self.row_words * b + i % b;
                out.extend((0..self.row_words).map(|w| self.matrix[off + w * b]));
            }
        }
    }

    /// Exact Hamming distances from `probe` to every row, into `out`
    /// (cleared and refilled; reuse the buffer to stay allocation-free).
    /// Runs the layout's fused kernel: one dispatcher entry per block
    /// instead of one per row.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    pub fn distances_into(&self, probe: &Hypervector, out: &mut Vec<u32>) {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        out.clear();
        out.resize(self.rows, 0);
        if self.rows == 0 {
            return;
        }
        let probe_words = probe.as_words();
        match self.layout {
            MatrixLayout::RowMajor => {
                hdhash_simdkernels::xor_popcount_rows(
                    probe_words,
                    &self.matrix,
                    self.row_words,
                    out,
                );
            }
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                let rw = self.row_words;
                LANE_SCRATCH.with(|cell| {
                    let mut acc = cell.borrow_mut();
                    for blk in 0..=(self.rows - 1) / b {
                        let base = blk * b;
                        let off = blk * rw * b;
                        acc.clear();
                        acc.resize(b, 0);
                        hdhash_simdkernels::prefetch_words(&self.matrix, off + rw * b);
                        hdhash_simdkernels::xor_popcount_interleaved(
                            probe_words,
                            &self.matrix[off..off + rw * b],
                            b,
                            &mut acc,
                        );
                        for (lane, &d) in acc.iter().enumerate().take(self.rows - base) {
                            out[base + lane] = d;
                        }
                    }
                });
            }
        }
    }

    /// Flips one bit of row `i` (noise injection keeps the engine in sync
    /// with the owning memory's entries).
    pub(crate) fn flip_bit(&mut self, row: usize, bit: usize) {
        debug_assert!(bit < self.dimension);
        let idx = self.word_index(row, bit / 64);
        self.matrix[idx] ^= 1u64 << (bit % 64);
    }

    /// Prefix distances (lower bounds) of rows `start..end` against
    /// `probe_prefix`, appended to `partials` as `(distance, row)` in row
    /// order, through the layout's fused kernel.
    fn prefix_partials_into(
        &self,
        probe_prefix: &[u64],
        start: usize,
        end: usize,
        partials: &mut Vec<(u32, u32)>,
    ) {
        match self.layout {
            MatrixLayout::RowMajor => DIST_SCRATCH.with(|cell| {
                let mut dist = cell.borrow_mut();
                dist.clear();
                dist.resize(end - start, 0);
                hdhash_simdkernels::xor_popcount_rows(
                    probe_prefix,
                    &self.matrix[start * self.row_words..],
                    self.row_words,
                    &mut dist,
                );
                partials.extend(dist.iter().zip(start..end).map(|(&p, row)| (p, row as u32)));
            }),
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                let rw = self.row_words;
                let k = probe_prefix.len();
                LANE_SCRATCH.with(|cell| {
                    let mut acc = cell.borrow_mut();
                    for blk in start / b..=(end - 1) / b {
                        let base = blk * b;
                        let off = blk * rw * b;
                        acc.clear();
                        acc.resize(b, 0);
                        // The next block's prefix while this one counts.
                        hdhash_simdkernels::prefetch_words(&self.matrix, off + rw * b);
                        hdhash_simdkernels::xor_popcount_interleaved(
                            probe_prefix,
                            &self.matrix[off..off + k * b],
                            b,
                            &mut acc,
                        );
                        for (lane, &p) in acc.iter().enumerate() {
                            let row = base + lane;
                            if row >= start && row < end {
                                partials.push((p, row as u32));
                            }
                        }
                    }
                });
            }
        }
    }

    /// Hamming distance between `probe_words[from..to]` and the matching
    /// word segment of `row`, early-exiting with `None` once the running
    /// total exceeds `budget` — the per-survivor step of the escalation
    /// rounds, layout-dispatched.
    fn dist_segment_within(
        &self,
        probe_words: &[u64],
        row: usize,
        from: usize,
        to: usize,
        budget: usize,
    ) -> Option<usize> {
        match self.layout {
            MatrixLayout::RowMajor => {
                let off = row * self.row_words;
                hamming_words_within(
                    &probe_words[from..to],
                    &self.matrix[off + from..off + to],
                    budget,
                )
            }
            MatrixLayout::Interleaved => {
                // Survivor sets are tiny by the time this runs, so a
                // strided per-lane walk (with the same 16-word early-exit
                // cadence as `hamming_words_within`) beats re-streaming
                // whole blocks for one lane.
                let b = self.row_block;
                let off = (row / b) * self.row_words * b + row % b;
                let mut total = 0usize;
                for (i, w) in (from..to).enumerate() {
                    total += (probe_words[w] ^ self.matrix[off + w * b]).count_ones() as usize;
                    if i % 16 == 15 && total > budget {
                        return None;
                    }
                }
                (total <= budget).then_some(total)
            }
        }
    }

    /// Extends the lane accumulators of one interleaved block (word
    /// offset `off`) over words `[from_word, row_words)`, checking every
    /// [`SUFFIX_CHUNK_WORDS`] whether all lanes' lower bounds already
    /// exceed `limit` (abandon: returns `false`, accumulators partial).
    /// On `true` the accumulators hold exact totals.
    fn extend_block(
        &self,
        probe_words: &[u64],
        off: usize,
        from_word: usize,
        limit: usize,
        acc: &mut [u32],
    ) -> bool {
        let b = self.row_block;
        let rw = self.row_words;
        let mut w = from_word;
        while w < rw {
            let stop = (w + SUFFIX_CHUNK_WORDS).min(rw);
            // Hint the next chunk while this one is counted.
            hdhash_simdkernels::prefetch_words(&self.matrix, off + stop * b);
            hdhash_simdkernels::xor_popcount_interleaved(
                &probe_words[w..stop],
                &self.matrix[off + w * b..off + stop * b],
                b,
                acc,
            );
            w = stop;
            if w < rw && acc.iter().all(|&a| a as usize > limit) {
                return false;
            }
        }
        true
    }

    /// Streams the interleaved blocks covering rows `[start, end)`,
    /// extending per-lane accumulators over words `[from_word, row_words)`
    /// via [`extend_block`](Self::extend_block). `seed(row)` supplies each
    /// in-range row's starting partial (`None`, or a value above the
    /// current limit, prunes the lane). `visit(row, exact_distance, limit)`
    /// runs in row order for every live lane of each completed block;
    /// visitors shrink `*limit` as they find better candidates.
    ///
    /// Pruning is sound on every caller: accumulators are monotone lower
    /// bounds, so a block abandoned at `min > limit` holds no row that
    /// any caller's comparator could still accept.
    #[allow(clippy::too_many_arguments)]
    fn sweep_interleaved<S, V>(
        &self,
        probe_words: &[u64],
        from_word: usize,
        start: usize,
        end: usize,
        limit: &mut usize,
        mut seed: S,
        mut visit: V,
    ) where
        S: FnMut(usize) -> Option<u32>,
        V: FnMut(usize, usize, &mut usize),
    {
        debug_assert_eq!(self.layout, MatrixLayout::Interleaved);
        if start >= end {
            return;
        }
        let b = self.row_block;
        let rw = self.row_words;
        LANE_SCRATCH.with(|cell| {
            let mut acc = cell.borrow_mut();
            for blk in start / b..=(end - 1) / b {
                let base = blk * b;
                let off = blk * rw * b;
                acc.clear();
                let mut live = false;
                for lane in 0..b {
                    let row = base + lane;
                    let p = if row >= start && row < end {
                        match seed(row) {
                            Some(p) if p as usize <= *limit => {
                                live = true;
                                p
                            }
                            _ => PRUNED,
                        }
                    } else {
                        PRUNED
                    };
                    acc.push(p);
                }
                if !live {
                    continue;
                }
                if !self.extend_block(probe_words, off, from_word, *limit, &mut acc) {
                    continue;
                }
                for (lane, &a) in acc.iter().enumerate() {
                    let row = base + lane;
                    if row < start || row >= end || a >= PRUNED {
                        continue;
                    }
                    visit(row, a as usize, limit);
                }
            }
        });
    }

    /// The cumulative prefix widths (in words) of the incremental scan
    /// schedule, written into `cuts`; returns how many rounds there are.
    ///
    /// Round one covers ~1/8 of the row (rounded to whole 16-word kernel
    /// blocks when long enough, so the hot loop runs fully unrolled);
    /// every later round widens the prefix ×4 until the full row is
    /// covered. A single-round schedule means the row is too short to
    /// filter and the caller should scan straight.
    fn scan_schedule(&self, cuts: &mut [usize; MAX_ROUNDS]) -> usize {
        let block_align = |w: usize| if w >= 16 { w & !15 } else { w };
        let mut len = 0;
        let mut w = block_align(self.row_words / 8);
        while w > 0 && w < self.row_words && len + 1 < MAX_ROUNDS {
            cuts[len] = w;
            len += 1;
            w = block_align(w.saturating_mul(4));
        }
        cuts[len] = self.row_words;
        len + 1
    }

    /// Nearest row to `probe` over all rows: lowest distance, earliest row
    /// on ties. `None` when empty.
    ///
    /// Runs the **adaptive incremental-prefix schedule** described in the
    /// module docs: a short prefix round scores every row; with a
    /// stand-out leader the field is pruned and escalated through
    /// geometrically widening prefixes (survivors re-ranked between
    /// rounds), otherwise the scan finishes as one suffix sweep. A
    /// per-engine calibrator collapses to the plain blocked scan under
    /// sustained adversarial (no-near-match) traffic. Every path returns
    /// the exact argmin with the earliest-row tie-break.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn nearest_one(&self, probe: &Hypervector) -> Option<Hit> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        let mut cuts = [0usize; MAX_ROUNDS];
        let rounds = self.scan_schedule(&mut cuts);
        if self.rows < MIN_FILTER_ROWS || rounds < 2 {
            // Tiny population or single-round schedule: nothing to filter.
            return self.nearest_in_range(probe, 0, self.rows, self.dimension);
        }
        if !self.calibrator.wants_filter() {
            // Collapsed: recent probes were adversarial, the prefix pass
            // would be pure overhead.
            return self.nearest_in_range(probe, 0, self.rows, self.dimension);
        }
        self.nearest_filtered(probe, &cuts[..rounds])
    }

    /// The filtered path of [`nearest_one`](Self::nearest_one): round one
    /// plus either the escalation rounds (stand-out leader) or a single
    /// suffix sweep (no stand-out). `cuts` holds the cumulative prefix
    /// widths; `cuts[last] == row_words`.
    fn nearest_filtered(&self, probe: &Hypervector, cuts: &[usize]) -> Option<Hit> {
        let probe_words = probe.as_words();
        let first_cut = cuts[0];

        PREFIX_SCRATCH.with(|cell| {
            // Round one: prefix distances (lower bounds on the full
            // distance) for every row through the layout's fused kernel,
            // in a thread-local scratch so steady-state queries allocate
            // nothing.
            let mut partials = cell.borrow_mut();
            partials.clear();
            self.prefix_partials_into(&probe_words[..first_cut], 0, self.rows, &mut partials);
            let mut min_p = u32::MAX;
            let mut sum_p: u64 = 0;
            for &(p, _) in partials.iter() {
                min_p = min_p.min(p);
                sum_p += u64::from(p);
            }
            let mean_p = sum_p / self.rows as u64;
            // A stand-out minimum (≤ ¾ of the mean) signals a near match —
            // the shape of real HDC inference, where the probe is a noisy
            // copy of a stored row. Feed the verdict back to the
            // calibrator either way.
            let stood_out = u64::from(min_p) * 4 <= mean_p * 3;
            self.calibrator.record(stood_out);

            if !stood_out {
                // Adversarial-shaped probe: finish as one suffix sweep in
                // insertion order, reusing the round-one partials so no
                // word is counted twice.
                return self.sweep_suffixes(probe_words, first_cut, &partials);
            }

            // Rank the field and verify the leader fully: its exact
            // distance is the pruning bound every later round uses.
            partials.sort_unstable();
            let (p0, row0) = partials[0];
            let row0 = row0 as usize;
            let leader_rest = self
                .dist_segment_within(probe_words, row0, first_cut, self.row_words, self.dimension)
                .expect("budget = dimension admits every distance");
            let mut best = Hit { row: row0, distance: p0 as usize + leader_rest };
            let mut limit = best.distance;

            // Escalation rounds: extend surviving partials over the next
            // segment only, prune on the lower bound, re-rank. The final
            // round's partials are exact distances.
            let mut live = partials.len();
            for (r, window) in cuts.windows(2).enumerate() {
                let (from, to) = (window[0], window[1]);
                let final_round = r + 2 == cuts.len();
                let mut kept = 1usize; // slot 0 is the verified leader
                for i in 1..live {
                    let (p, row) = partials[i];
                    if p as usize > limit {
                        // Sorted ascending and `limit` only shrinks: every
                        // later candidate is also above the bound.
                        break;
                    }
                    let row_idx = row as usize;
                    let Some(seg) = self.dist_segment_within(
                        probe_words,
                        row_idx,
                        from,
                        to,
                        limit - p as usize,
                    ) else {
                        continue;
                    };
                    let extended = p as usize + seg;
                    if final_round {
                        // Exact distance; `<= limit` here, and ties lose
                        // to the leader unless strictly earlier.
                        if extended < best.distance
                            || (extended == best.distance && row_idx < best.row)
                        {
                            best = Hit { row: row_idx, distance: extended };
                            limit = extended;
                        }
                    } else {
                        partials[kept] = (extended as u32, row);
                        kept += 1;
                    }
                }
                if final_round {
                    break;
                }
                live = kept;
                // Re-rank the survivors (leader stays the sentinel bound).
                partials[1..live].sort_unstable();
            }
            Some(best)
        })
    }

    /// Finishes a non-stand-out filtered scan: one pass over the row
    /// suffixes in insertion order, each budgeted by the best-so-far
    /// distance minus the row's known prefix partial. `partials` holds
    /// `(prefix distance, row)` for rows `0..self.rows` in row order.
    fn sweep_suffixes(
        &self,
        probe_words: &[u64],
        first_cut: usize,
        partials: &[(u32, u32)],
    ) -> Option<Hit> {
        let mut best: Option<Hit> = None;
        let mut limit = self.dimension;
        match self.layout {
            MatrixLayout::RowMajor => {
                for &(p, row) in partials {
                    if p as usize > limit {
                        continue;
                    }
                    let row = row as usize;
                    hdhash_simdkernels::prefetch_words(
                        &self.matrix,
                        (row + 1) * self.row_words + first_cut,
                    );
                    let row_rest = &self.matrix
                        [row * self.row_words + first_cut..(row + 1) * self.row_words];
                    let Some(rest) = hamming_words_within(
                        &probe_words[first_cut..],
                        row_rest,
                        limit - p as usize,
                    ) else {
                        continue;
                    };
                    let distance = p as usize + rest;
                    // Insertion order makes `<` sufficient, but keep the
                    // explicit tie-break for symmetry with the other paths.
                    let better = match best {
                        None => true,
                        Some(b) => {
                            distance < b.distance || (distance == b.distance && row < b.row)
                        }
                    };
                    if better {
                        best = Some(Hit { row, distance });
                        limit = distance;
                    }
                }
            }
            MatrixLayout::Interleaved => {
                self.sweep_interleaved(
                    probe_words,
                    first_cut,
                    0,
                    self.rows,
                    &mut limit,
                    |row| Some(partials[row].0),
                    |row, distance, limit| {
                        if distance > *limit {
                            return;
                        }
                        let better = match best {
                            None => true,
                            Some(b) => {
                                distance < b.distance
                                    || (distance == b.distance && row < b.row)
                            }
                        };
                        if better {
                            best = Some(Hit { row, distance });
                            *limit = distance;
                        }
                    },
                );
            }
        }
        best
    }

    /// Quantized arg-max over `rows[start..end)` on the **adaptive
    /// incremental-prefix schedule**: distances are rounded to the grid
    /// `quantum` (`q = ⌊(dist + c/2)/c⌋`) and the minimum is taken over
    /// `(q, order(row), row)` — the deterministic,
    /// membership-order-independent tie-break `hdhash-core`'s partitioned
    /// codebook requires.
    ///
    /// This is the quantized twin of [`nearest_one`](Self::nearest_one):
    /// the same prefix round → stand-out test → escalation/suffix-sweep
    /// machinery, the same per-engine calibrator (quantized probes vote
    /// alongside plain ones — the traffic shape is a property of the
    /// workload, not of the comparator), and the same exactness
    /// guarantee. The pruning bound is quantum-aware: once a best level
    /// `q` is known, any row whose partial distance already exceeds the
    /// largest distance mapping to `q` can never improve `(q, order)`
    /// and is abandoned. Rows that could still *tie* the level are
    /// scanned to completion so the `order` tie-break sees them.
    ///
    /// Returns `(q, order(row), row)` of the winner, or `None` when the
    /// range is empty. Byte-identical to the straight bounded scan it
    /// replaces (`kernel_equivalence` pins this, engaged and collapsed).
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension or `quantum == 0`.
    #[must_use]
    pub fn nearest_quantized_by<O, F>(
        &self,
        probe: &Hypervector,
        quantum: usize,
        start: usize,
        end: usize,
        order: F,
    ) -> Option<(usize, O, usize)>
    where
        O: Ord,
        F: Fn(usize) -> O,
    {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        assert!(quantum > 0, "quantum must be positive");
        let end = end.min(self.rows);
        if start >= end {
            return None;
        }
        let mut cuts = [0usize; MAX_ROUNDS];
        let rounds = self.scan_schedule(&mut cuts);
        if end - start < MIN_FILTER_ROWS || rounds < 2 || !self.calibrator.wants_filter() {
            // Tiny range, single-round schedule, or collapsed calibrator:
            // the straight bounded sweep is the best plan.
            return self.quantized_straight(probe, quantum, start, end, &order);
        }
        self.quantized_filtered(probe, quantum, start, end, &order, &cuts[..rounds])
    }

    /// Largest distance still mapping to quantum level `q`:
    /// `dist ≤ q·c + c − 1 − c/2` (the level bound every quantized scan
    /// path prunes on, clamped to the dimension).
    fn quantum_limit(&self, q: usize, quantum: usize) -> usize {
        (q * quantum + quantum - 1 - quantum / 2).min(self.dimension)
    }

    /// The straight path of
    /// [`nearest_quantized_by`](Self::nearest_quantized_by): one bounded
    /// early-exit sweep in row order (the pre-adaptive behavior,
    /// preserved as the collapsed plan).
    fn quantized_straight<O: Ord, F: Fn(usize) -> O>(
        &self,
        probe: &Hypervector,
        quantum: usize,
        start: usize,
        end: usize,
        order: &F,
    ) -> Option<(usize, O, usize)> {
        let probe_words = probe.as_words();
        let mut best: Option<(usize, O, usize)> = None;
        let mut limit = self.dimension;
        match self.layout {
            MatrixLayout::RowMajor => {
                for row in start..end {
                    hdhash_simdkernels::prefetch_words(&self.matrix, (row + 1) * self.row_words);
                    let row_words =
                        &self.matrix[row * self.row_words..(row + 1) * self.row_words];
                    let Some(dist) = hamming_words_within(probe_words, row_words, limit) else {
                        continue;
                    };
                    let q = (dist + quantum / 2) / quantum;
                    let key_order = order(row);
                    let better = match &best {
                        None => true,
                        Some((bq, bo, _)) => (q, &key_order) < (*bq, bo),
                    };
                    if better {
                        limit = self.quantum_limit(q, quantum);
                        best = Some((q, key_order, row));
                    }
                }
            }
            MatrixLayout::Interleaved => {
                self.sweep_interleaved(
                    probe_words,
                    0,
                    start,
                    end,
                    &mut limit,
                    |_| Some(0),
                    |row, dist, limit| {
                        if dist > *limit {
                            return;
                        }
                        let q = (dist + quantum / 2) / quantum;
                        let key_order = order(row);
                        let better = match &best {
                            None => true,
                            Some((bq, bo, _)) => (q, &key_order) < (*bq, bo),
                        };
                        if better {
                            *limit = self.quantum_limit(q, quantum);
                            best = Some((q, key_order, row));
                        }
                    },
                );
            }
        }
        best
    }

    /// The filtered path of
    /// [`nearest_quantized_by`](Self::nearest_quantized_by): prefix round
    /// over the range, stand-out test (feeding the shared calibrator),
    /// then either escalation through widening prefixes or a single
    /// suffix sweep. Exact: every row whose distance could reach the best
    /// level's bound is resolved fully before the `(q, order, row)`
    /// minimum is taken.
    fn quantized_filtered<O: Ord, F: Fn(usize) -> O>(
        &self,
        probe: &Hypervector,
        quantum: usize,
        start: usize,
        end: usize,
        order: &F,
        cuts: &[usize],
    ) -> Option<(usize, O, usize)> {
        let probe_words = probe.as_words();
        let first_cut = cuts[0];

        PREFIX_SCRATCH.with(|cell| {
            let mut partials = cell.borrow_mut();
            partials.clear();
            self.prefix_partials_into(&probe_words[..first_cut], start, end, &mut partials);
            let mut min_p = u32::MAX;
            let mut sum_p: u64 = 0;
            for &(p, _) in partials.iter() {
                min_p = min_p.min(p);
                sum_p += u64::from(p);
            }
            let mean_p = sum_p / (end - start) as u64;
            let stood_out = u64::from(min_p) * 4 <= mean_p * 3;
            self.calibrator.record(stood_out);

            if !stood_out {
                // Suffix sweep in row order, budgeted by the best level's
                // bound minus each row's known prefix partial.
                let mut best: Option<(usize, O, usize)> = None;
                let mut limit = self.dimension;
                match self.layout {
                    MatrixLayout::RowMajor => {
                        for &(p, row) in partials.iter() {
                            if p as usize > limit {
                                continue;
                            }
                            let row = row as usize;
                            let row_rest = &self.matrix
                                [row * self.row_words + first_cut..(row + 1) * self.row_words];
                            let Some(rest) = hamming_words_within(
                                &probe_words[first_cut..],
                                row_rest,
                                limit - p as usize,
                            ) else {
                                continue;
                            };
                            let dist = p as usize + rest;
                            let q = (dist + quantum / 2) / quantum;
                            let key_order = order(row);
                            let better = match &best {
                                None => true,
                                Some((bq, bo, _)) => (q, &key_order) < (*bq, bo),
                            };
                            if better {
                                limit = self.quantum_limit(q, quantum);
                                best = Some((q, key_order, row));
                            }
                        }
                    }
                    MatrixLayout::Interleaved => {
                        self.sweep_interleaved(
                            probe_words,
                            first_cut,
                            start,
                            end,
                            &mut limit,
                            |row| Some(partials[row - start].0),
                            |row, dist, limit| {
                                if dist > *limit {
                                    return;
                                }
                                let q = (dist + quantum / 2) / quantum;
                                let key_order = order(row);
                                let better = match &best {
                                    None => true,
                                    Some((bq, bo, _)) => (q, &key_order) < (*bq, bo),
                                };
                                if better {
                                    *limit = self.quantum_limit(q, quantum);
                                    best = Some((q, key_order, row));
                                }
                            },
                        );
                    }
                }
                return best;
            }

            // Stand-out leader: verify it fully; its level bound prunes
            // the escalation rounds.
            partials.sort_unstable();
            let (p0, row0) = partials[0];
            let row0 = row0 as usize;
            let leader_rest = self
                .dist_segment_within(probe_words, row0, first_cut, self.row_words, self.dimension)
                .expect("budget = dimension admits every distance");
            let leader_q = (p0 as usize + leader_rest + quantum / 2) / quantum;
            let mut best: (usize, O, usize) = (leader_q, order(row0), row0);
            let mut limit = self.quantum_limit(leader_q, quantum);

            let mut live = partials.len();
            for (r, window) in cuts.windows(2).enumerate() {
                let (from, to) = (window[0], window[1]);
                let final_round = r + 2 == cuts.len();
                let mut kept = 1usize; // slot 0 is the verified leader
                for i in 1..live {
                    let (p, row) = partials[i];
                    if p as usize > limit {
                        // Sorted ascending; the level bound only shrinks.
                        break;
                    }
                    let row_idx = row as usize;
                    let Some(seg) = self.dist_segment_within(
                        probe_words,
                        row_idx,
                        from,
                        to,
                        limit - p as usize,
                    ) else {
                        continue;
                    };
                    let extended = p as usize + seg;
                    if final_round {
                        // Exact distance (≤ limit, so its level ≤ best's).
                        let q = (extended + quantum / 2) / quantum;
                        let key_order = order(row_idx);
                        if (q, &key_order, row_idx) < (best.0, &best.1, best.2) {
                            limit = self.quantum_limit(q, quantum);
                            best = (q, key_order, row_idx);
                        }
                    } else {
                        partials[kept] = (extended as u32, row);
                        kept += 1;
                    }
                }
                if final_round {
                    break;
                }
                live = kept;
                partials[1..live].sort_unstable();
            }
            Some(best)
        })
    }

    /// Nearest row within `rows[start..end)`, considering only candidates
    /// at distance `≤ bound` (callers pass the dimension for an unbounded
    /// scan, or a shared best-so-far to prune across shards).
    ///
    /// Ties break toward the earliest row, and a candidate merely *equal*
    /// to `bound` is still returned — both properties the quantized
    /// arg-max in `hdhash-core` relies on.
    #[must_use]
    pub fn nearest_in_range(
        &self,
        probe: &Hypervector,
        start: usize,
        end: usize,
        bound: usize,
    ) -> Option<Hit> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        let probe_words = probe.as_words();
        let end = end.min(self.rows);
        let mut best: Option<Hit> = None;
        let mut limit = bound;
        if start >= end {
            return None;
        }
        match self.layout {
            MatrixLayout::RowMajor => {
                for row in start..end {
                    hdhash_simdkernels::prefetch_words(&self.matrix, (row + 1) * self.row_words);
                    let row_words =
                        &self.matrix[row * self.row_words..(row + 1) * self.row_words];
                    if let Some(distance) = hamming_words_within(probe_words, row_words, limit) {
                        if best.is_none_or(|b| distance < b.distance) {
                            best = Some(Hit { row, distance });
                            limit = distance;
                        }
                    }
                }
            }
            MatrixLayout::Interleaved => {
                self.sweep_interleaved(
                    probe_words,
                    0,
                    start,
                    end,
                    &mut limit,
                    |_| Some(0),
                    |row, distance, limit| {
                        if distance <= *limit && best.is_none_or(|b| distance < b.distance) {
                            best = Some(Hit { row, distance });
                            *limit = distance;
                        }
                    },
                );
            }
        }
        best
    }

    /// Resolves a batch of probes, choosing the scan plan the calibrator
    /// currently believes in.
    ///
    /// While the per-engine calibrator holds the filter engaged (recent
    /// probes were inference-shaped) each probe of the batch runs the same
    /// **adaptive incremental-prefix schedule** as
    /// [`nearest_one`](Self::nearest_one): a short prefix round kills most
    /// of the population per probe, which beats re-streaming the full
    /// matrix. Under a collapsed calibrator (adversarial traffic, where no
    /// prefix filter can help) the batch falls back to the cache-blocked
    /// sweep, streaming each block of member rows once for the whole
    /// batch. Each filtered probe feeds its stand-out verdict back to the
    /// calibrator, so a workload shift mid-stream flips the plan within a
    /// batch or two; the occasional exploration query of a collapsed
    /// engine runs one whole batch through the filtered path.
    ///
    /// Results land in `out` (cleared and refilled; reuse the buffer to
    /// keep the path allocation-free). Both plans compute the exact argmin
    /// with the earliest-row tie-break, so each slot matches
    /// [`nearest_one`](Self::nearest_one) for the corresponding probe
    /// **byte-identically, whichever plan ran**
    /// (`crates/hdc/tests/kernel_equivalence.rs` pins this).
    ///
    /// # Panics
    ///
    /// Panics if any probe has the wrong dimension.
    pub fn nearest_batch_into(&self, probes: &[&Hypervector], out: &mut Vec<Option<Hit>>) {
        for probe in probes {
            assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        }
        out.clear();
        out.resize(probes.len(), None);
        if probes.is_empty() {
            return;
        }
        let mut cuts = [0usize; MAX_ROUNDS];
        let rounds = self.scan_schedule(&mut cuts);
        if self.rows >= MIN_FILTER_ROWS && rounds >= 2 && self.calibrator.wants_filter() {
            for (probe, slot) in probes.iter().zip(out.iter_mut()) {
                *slot = self.nearest_filtered(probe, &cuts[..rounds]);
            }
            return;
        }
        self.blocked_batch_into(probes, out);
    }

    /// The straight cache-blocked multi-probe sweep: member rows are
    /// streamed block by block ([`row_block`](Self::row_block) rows at a
    /// time), each block scanned for every probe before the next block is
    /// touched, so the matrix is read once per block regardless of batch
    /// size. Under the interleaved layout each block is one fused-kernel
    /// accumulation per probe, abandoned early once every lane exceeds
    /// the probe's running bound. `out` must already hold one `None` per
    /// probe.
    fn blocked_batch_into(&self, probes: &[&Hypervector], out: &mut [Option<Hit>]) {
        if self.rows == 0 {
            return;
        }
        match self.layout {
            MatrixLayout::RowMajor => {
                let mut block_start = 0;
                while block_start < self.rows {
                    let block_end = (block_start + self.row_block).min(self.rows);
                    for (probe, slot) in probes.iter().zip(out.iter_mut()) {
                        let probe_words = probe.as_words();
                        let mut limit = slot.map_or(self.dimension, |b| b.distance);
                        for row in block_start..block_end {
                            hdhash_simdkernels::prefetch_words(
                                &self.matrix,
                                (row + 1) * self.row_words,
                            );
                            let row_words =
                                &self.matrix[row * self.row_words..(row + 1) * self.row_words];
                            if let Some(distance) =
                                hamming_words_within(probe_words, row_words, limit)
                            {
                                if slot.is_none_or(|b| distance < b.distance) {
                                    *slot = Some(Hit { row, distance });
                                    limit = distance;
                                }
                            }
                        }
                    }
                    block_start = block_end;
                }
            }
            MatrixLayout::Interleaved => {
                let b = self.row_block;
                let rw = self.row_words;
                LANE_SCRATCH.with(|cell| {
                    let mut acc = cell.borrow_mut();
                    for blk in 0..=(self.rows - 1) / b {
                        let base = blk * b;
                        let off = blk * rw * b;
                        let lanes = (self.rows - base).min(b);
                        for (probe, slot) in probes.iter().zip(out.iter_mut()) {
                            let probe_words = probe.as_words();
                            let mut limit = slot.map_or(self.dimension, |h| h.distance);
                            acc.clear();
                            acc.resize(lanes, 0);
                            acc.resize(b, PRUNED); // zero-padded tail lanes
                            if !self.extend_block(probe_words, off, 0, limit, &mut acc) {
                                continue;
                            }
                            for (lane, &a) in acc.iter().enumerate().take(lanes) {
                                let distance = a as usize;
                                if distance <= limit
                                    && slot.is_none_or(|h| distance < h.distance)
                                {
                                    *slot = Some(Hit { row: base + lane, distance });
                                    limit = distance;
                                }
                            }
                        }
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn engine_with_options(
        n: usize,
        d: usize,
        seed: u64,
        options: EngineOptions,
    ) -> (BatchLookup, Vec<Hypervector>) {
        let mut rng = Rng::new(seed);
        let mut engine = BatchLookup::with_options(d, options);
        let mut rows = Vec::new();
        for _ in 0..n {
            let hv = Hypervector::random(d, &mut rng);
            engine.push(&hv).expect("dims");
            rows.push(hv);
        }
        (engine, rows)
    }

    fn engine_with(n: usize, d: usize, seed: u64) -> (BatchLookup, Vec<Hypervector>) {
        engine_with_options(n, d, seed, EngineOptions::default())
    }

    /// Every (layout, row_block) combination the suite cross-checks,
    /// including a degenerate one-lane interleave and a non-divisor block.
    fn option_grid() -> Vec<EngineOptions> {
        let mut grid = Vec::new();
        for layout in MatrixLayout::ALL {
            for row_block in [1usize, 3, 16] {
                grid.push(EngineOptions::default()
                    .with_layout(layout)
                    .with_row_block(row_block));
            }
        }
        grid
    }

    fn row_of(engine: &BatchLookup, i: usize) -> Vec<u64> {
        let mut out = Vec::new();
        engine.copy_row_into(i, &mut out);
        out
    }

    fn naive_nearest(rows: &[Hypervector], probe: &Hypervector) -> Option<Hit> {
        rows.iter()
            .enumerate()
            .map(|(i, hv)| Hit { row: i, distance: probe.hamming_distance(hv) })
            .min_by_key(|h| (h.distance, h.row))
    }

    #[test]
    fn nearest_matches_naive_scan() {
        for d in [64usize, 65, 130, 1000] {
            for options in option_grid() {
                let (engine, rows) = engine_with_options(40, d, d as u64, options);
                let mut rng = Rng::new(999);
                for _ in 0..25 {
                    let probe = Hypervector::random(d, &mut rng);
                    assert_eq!(
                        engine.nearest_one(&probe),
                        naive_nearest(&rows, &probe),
                        "d={d} options={options:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn noisy_match_probes_agree_with_naive_scan() {
        // The prefix-filter path: the probe is a corrupted copy of one row,
        // the shape of real HDC inference.
        for d in [512usize, 1000, 10_240] {
            for layout in MatrixLayout::ALL {
                let options = EngineOptions::default().with_layout(layout);
                let (engine, rows) = engine_with_options(200, d, 3 * d as u64 + 1, options);
                let mut rng = Rng::new(4242);
                for _ in 0..15 {
                    let victim = rng.next_below(200) as usize;
                    let mut probe = rows[victim].clone();
                    probe.flip_bits(rng.distinct_indices(d / 20, d));
                    let hit = engine.nearest_one(&probe);
                    assert_eq!(hit, naive_nearest(&rows, &probe), "d={d} layout={layout:?}");
                    assert_eq!(hit.expect("non-empty").row, victim);
                }
            }
        }
    }

    #[test]
    fn layouts_agree_byte_identically() {
        // The same membership behind every (layout, row_block) must return
        // the same hits on every query path, probe shape, and plan.
        let d = 10_240;
        let engines: Vec<(BatchLookup, Vec<Hypervector>)> = option_grid()
            .into_iter()
            .map(|options| engine_with_options(48, d, 8181, options))
            .collect();
        let rows = engines[0].1.clone();
        let mut rng = Rng::new(8182);
        let order = |row: usize| row * 7 % 13;
        for i in 0..16 {
            let probe = if i % 2 == 0 {
                Hypervector::random(d, &mut rng)
            } else {
                let victim = rng.next_below(48) as usize;
                let mut p = rows[victim].clone();
                p.flip_bits(rng.distinct_indices(d / 25, d));
                p
            };
            let expect_one = naive_nearest(&rows, &probe);
            for (engine, _) in &engines {
                assert_eq!(
                    engine.nearest_one(&probe),
                    expect_one,
                    "probe {i} layout={:?} block={}",
                    engine.layout(),
                    engine.row_block()
                );
                assert_eq!(
                    engine.nearest_quantized_by(&probe, 64, 3, 41, order),
                    engines[0].0.nearest_quantized_by(&probe, 64, 3, 41, order),
                    "probe {i} quantized layout={:?} block={}",
                    engine.layout(),
                    engine.row_block()
                );
                assert_eq!(
                    engine.nearest_in_range(&probe, 5, 37, d / 2),
                    engines[0].0.nearest_in_range(&probe, 5, 37, d / 2),
                    "probe {i} ranged layout={:?} block={}",
                    engine.layout(),
                    engine.row_block()
                );
            }
        }
    }

    #[test]
    fn batch_matches_single_probe() {
        for options in option_grid() {
            let (engine, _) = engine_with_options(100, 320, 5, options);
            let mut rng = Rng::new(6);
            let probes: Vec<Hypervector> =
                (0..37).map(|_| Hypervector::random(320, &mut rng)).collect();
            let refs: Vec<&Hypervector> = probes.iter().collect();
            let mut out = Vec::new();
            engine.nearest_batch_into(&refs, &mut out);
            assert_eq!(out.len(), probes.len());
            for (probe, got) in probes.iter().zip(&out) {
                assert_eq!(*got, engine.nearest_one(probe), "options={options:?}");
            }
        }
    }

    #[test]
    fn calibrated_batch_is_exact_in_both_plans() {
        // The batch path consults the calibrator: inference-shaped batches
        // run the per-probe prefix schedule, collapsed engines run the
        // blocked sweep. Both must produce the exact argmin.
        let d = 10_240;
        for layout in MatrixLayout::ALL {
            let options = EngineOptions::default().with_layout(layout);
            let (engine, rows) = engine_with_options(64, d, 2024, options);
            let mut rng = Rng::new(2025);
            // Engaged path: noisy batches (fresh engines assume inference).
            for _ in 0..3 {
                let probes: Vec<Hypervector> = (0..9)
                    .map(|_| {
                        let victim = rng.next_below(64) as usize;
                        let mut p = rows[victim].clone();
                        p.flip_bits(rng.distinct_indices(d / 20, d));
                        p
                    })
                    .collect();
                let refs: Vec<&Hypervector> = probes.iter().collect();
                let mut out = Vec::new();
                engine.nearest_batch_into(&refs, &mut out);
                for (probe, got) in probes.iter().zip(&out) {
                    assert_eq!(*got, naive_nearest(&rows, probe), "layout={layout:?}");
                }
            }
            assert!(
                engine.calibrator.score.load(Ordering::Relaxed) >= 0,
                "noisy batches must keep the filter engaged"
            );
            // Adversarial batches collapse the calibrator, switching later
            // batches to the blocked sweep — results stay exact throughout.
            for _ in 0..4 {
                let probes: Vec<Hypervector> =
                    (0..8).map(|_| Hypervector::random(d, &mut rng)).collect();
                let refs: Vec<&Hypervector> = probes.iter().collect();
                let mut out = Vec::new();
                engine.nearest_batch_into(&refs, &mut out);
                for (probe, got) in probes.iter().zip(&out) {
                    assert_eq!(*got, naive_nearest(&rows, probe), "layout={layout:?}");
                }
            }
            assert!(
                engine.calibrator.score.load(Ordering::Relaxed) < 0,
                "adversarial batches must collapse the filter"
            );
        }
    }

    #[test]
    fn collapsed_and_engaged_batches_agree_byte_identically() {
        let d = 10_240;
        for layout in MatrixLayout::ALL {
            let options = EngineOptions::default().with_layout(layout);
            let (engaged, rows) = engine_with_options(48, d, 7070, options);
            let collapsed = engaged.clone();
            collapsed.calibrator.score.store(-SCORE_SATURATION, Ordering::Relaxed);
            // Offset the query counter so no exploration query re-runs the
            // filtered plan mid-test.
            collapsed.calibrator.queries.store(1, Ordering::Relaxed);
            let mut rng = Rng::new(7071);
            let probes: Vec<Hypervector> = (0..20)
                .map(|i| {
                    if i % 2 == 0 {
                        Hypervector::random(d, &mut rng)
                    } else {
                        let victim = rng.next_below(48) as usize;
                        let mut p = rows[victim].clone();
                        p.flip_bits(rng.distinct_indices(d / 25, d));
                        p
                    }
                })
                .collect();
            let refs: Vec<&Hypervector> = probes.iter().collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            engaged.nearest_batch_into(&refs, &mut a);
            collapsed.nearest_batch_into(&refs, &mut b);
            assert_eq!(a, b, "scan plan must never change batch results (layout={layout:?})");
        }
    }

    /// Reference for the quantized arg-max: exhaustive `(q, order, row)`
    /// minimum over a row range.
    fn naive_quantized(
        rows: &[Hypervector],
        probe: &Hypervector,
        quantum: usize,
        start: usize,
        end: usize,
        order: impl Fn(usize) -> usize,
    ) -> Option<(usize, usize, usize)> {
        rows[start..end.min(rows.len())]
            .iter()
            .enumerate()
            .map(|(i, hv)| {
                let row = start + i;
                ((probe.hamming_distance(hv) + quantum / 2) / quantum, order(row), row)
            })
            .min()
    }

    #[test]
    fn quantized_matches_naive_on_both_probe_shapes() {
        let d = 10_240;
        for layout in MatrixLayout::ALL {
            let options = EngineOptions::default().with_layout(layout);
            let (engine, rows) = engine_with_options(64, d, 4040, options);
            let mut rng = Rng::new(4041);
            let order = |row: usize| row * 7 % 13; // collides → order tie-breaks matter
            for quantum in [32usize, 64, 160] {
                for i in 0..24 {
                    let probe = if i % 2 == 0 {
                        Hypervector::random(d, &mut rng)
                    } else {
                        let victim = rng.next_below(64) as usize;
                        let mut p = rows[victim].clone();
                        p.flip_bits(rng.distinct_indices(d / 20, d));
                        p
                    };
                    assert_eq!(
                        engine.nearest_quantized_by(&probe, quantum, 0, 64, order),
                        naive_quantized(&rows, &probe, quantum, 0, 64, order),
                        "quantum {quantum}, probe {i}, layout={layout:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_respects_row_ranges() {
        let d = 4096;
        for options in option_grid() {
            let (engine, rows) = engine_with_options(40, d, 5050, options);
            let mut rng = Rng::new(5051);
            let order = |row: usize| row * 7 % 13;
            for _ in 0..10 {
                let probe = Hypervector::random(d, &mut rng);
                for (start, end) in [(0usize, 40usize), (5, 25), (30, 40), (12, 13), (20, 20)] {
                    assert_eq!(
                        engine.nearest_quantized_by(&probe, 64, start, end, order),
                        naive_quantized(&rows, &probe, 64, start, end, order),
                        "range {start}..{end} options={options:?}"
                    );
                }
                // Out-of-range end clamps; fully out-of-range start is None.
                assert_eq!(
                    engine.nearest_quantized_by(&probe, 64, 0, 999, order),
                    naive_quantized(&rows, &probe, 64, 0, 40, order)
                );
                assert!(engine.nearest_quantized_by(&probe, 64, 40, 45, order).is_none());
            }
        }
    }

    #[test]
    fn quantized_collapsed_equals_engaged() {
        // The scan plan must never change the quantized verdict: an
        // engine collapsed by adversarial traffic and a fresh engaged one
        // agree on every (q, order, row) verdict.
        let d = 10_240;
        for layout in MatrixLayout::ALL {
            let options = EngineOptions::default().with_layout(layout);
            let (engaged, rows) = engine_with_options(48, d, 6060, options);
            let collapsed = engaged.clone();
            collapsed.calibrator.score.store(-SCORE_SATURATION, Ordering::Relaxed);
            collapsed.calibrator.queries.store(1, Ordering::Relaxed);
            let mut rng = Rng::new(6061);
            let order = |row: usize| row % 5;
            for i in 0..30 {
                let probe = if i % 2 == 0 {
                    Hypervector::random(d, &mut rng)
                } else {
                    let victim = rng.next_below(48) as usize;
                    let mut p = rows[victim].clone();
                    p.flip_bits(rng.distinct_indices(d / 25, d));
                    p
                };
                let a = engaged.nearest_quantized_by(&probe, 64, 0, 48, order);
                let b = collapsed.nearest_quantized_by(&probe, 64, 0, 48, order);
                assert_eq!(a, b, "probe {i}: scan plan changed the quantized verdict");
                assert_eq!(
                    a,
                    naive_quantized(&rows, &probe, 64, 0, 48, order),
                    "probe {i} layout={layout:?}"
                );
            }
        }
    }

    #[test]
    fn ties_break_to_earliest_row() {
        for options in option_grid() {
            let mut engine = BatchLookup::with_options(128, options);
            let hv = Hypervector::ones(128);
            engine.push(&hv).expect("dims");
            engine.push(&hv).expect("dims");
            let hit = engine.nearest_one(&hv).expect("non-empty");
            assert_eq!((hit.row, hit.distance), (0, 0), "options={options:?}");
        }
    }

    #[test]
    fn bound_still_admits_equal_distance() {
        for options in option_grid() {
            let (engine, rows) = engine_with_options(10, 256, 8, options);
            let probe = rows[7].clone();
            // Bound exactly the winner's distance (0): it must still be found.
            let hit = engine.nearest_in_range(&probe, 0, 10, 0).expect("bounded hit");
            assert_eq!(hit.row, 7, "options={options:?}");
            // A bound below every distance yields nothing.
            let mut rng = Rng::new(77);
            let far = Hypervector::random(256, &mut rng);
            assert!(engine.nearest_in_range(&far, 0, 10, 0).is_none());
        }
    }

    #[test]
    fn rebuild_and_rows_roundtrip() {
        for options in option_grid() {
            let (mut engine, rows) = engine_with_options(9, 130, 11, options);
            assert_eq!(engine.len(), 9);
            for (i, hv) in rows.iter().enumerate() {
                assert_eq!(row_of(&engine, i), hv.as_words(), "options={options:?}");
            }
            engine.rebuild(rows.iter().skip(4));
            assert_eq!(engine.len(), 5);
            assert_eq!(row_of(&engine, 0), rows[4].as_words());
        }
    }

    #[test]
    fn empty_engine_finds_nothing() {
        for options in option_grid() {
            let engine = BatchLookup::with_options(64, options);
            let probe = Hypervector::zeros(64);
            assert!(engine.nearest_one(&probe).is_none());
            assert!(engine.is_empty());
            let mut out = vec![Some(Hit { row: 9, distance: 9 })];
            engine.nearest_batch_into(&[&probe], &mut out);
            assert_eq!(out, vec![None]);
        }
    }

    #[test]
    fn push_rejects_wrong_dimension() {
        let mut engine = BatchLookup::new(64);
        assert!(engine.push(&Hypervector::zeros(65)).is_err());
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.dimension(), 64);
    }

    #[test]
    fn retain_rows_compacts_under_every_layout() {
        for options in option_grid() {
            let (mut engine, rows) = engine_with_options(9, 130, 11, options);
            engine.retain_rows(|row| row % 3 != 1);
            assert_eq!(engine.len(), 6);
            let survivors: Vec<usize> = (0..9).filter(|r| r % 3 != 1).collect();
            for (new_row, &old_row) in survivors.iter().enumerate() {
                assert_eq!(
                    row_of(&engine, new_row),
                    rows[old_row].as_words(),
                    "row {old_row} options={options:?}"
                );
            }
            // Scans agree with a freshly built engine over the survivors.
            let mut fresh = BatchLookup::with_options(130, options);
            for &old_row in &survivors {
                fresh.push(&rows[old_row]).expect("dims");
            }
            let mut rng = Rng::new(321);
            for _ in 0..10 {
                let probe = Hypervector::random(130, &mut rng);
                assert_eq!(engine.nearest_one(&probe), fresh.nearest_one(&probe));
            }
            // Dropping everything leaves an empty engine.
            engine.retain_rows(|_| false);
            assert!(engine.is_empty());
            assert_eq!(engine.matrix.len(), 0, "options={options:?}");
        }
    }

    #[test]
    fn interleaved_churn_reuses_the_arena() {
        // Repeated compactions under the interleaved layout must ping-pong
        // between the matrix and the arena without shrinking correctness.
        let options = EngineOptions::default()
            .with_layout(MatrixLayout::Interleaved)
            .with_row_block(4);
        let (mut engine, mut rows) = engine_with_options(20, 512, 909, options);
        let mut rng = Rng::new(910);
        for round in 0..5 {
            let drop_mod = 2 + round % 3;
            let survivors: Vec<usize> =
                (0..engine.len()).filter(|r| r % drop_mod != 0).collect();
            engine.retain_rows(|row| row % drop_mod != 0);
            rows = survivors.iter().map(|&r| rows[r].clone()).collect();
            assert_eq!(engine.len(), rows.len());
            for (i, hv) in rows.iter().enumerate() {
                assert_eq!(row_of(&engine, i), hv.as_words(), "round {round} row {i}");
            }
            // Refill a little so later rounds have material.
            for _ in 0..3 {
                let hv = Hypervector::random(512, &mut rng);
                engine.push(&hv).expect("dims");
                rows.push(hv);
            }
            let probe = Hypervector::random(512, &mut rng);
            assert_eq!(engine.nearest_one(&probe), naive_nearest(&rows, &probe));
        }
    }

    #[test]
    fn distances_into_matches_per_row_distances() {
        for d in [64usize, 130, 1000, 10_240] {
            for options in option_grid() {
                let (engine, rows) = engine_with_options(21, d, d as u64 + 5, options);
                let mut rng = Rng::new(42);
                let probe = Hypervector::random(d, &mut rng);
                let mut out = vec![7u32; 3]; // stale contents must be replaced
                engine.distances_into(&probe, &mut out);
                assert_eq!(out.len(), 21);
                for (i, hv) in rows.iter().enumerate() {
                    assert_eq!(
                        out[i] as usize,
                        probe.hamming_distance(hv),
                        "d={d} row {i} options={options:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn schedule_covers_row_and_escalates() {
        for d in [64usize, 1000, 10_240, 65_536] {
            let engine = BatchLookup::new(d);
            let mut cuts = [0usize; MAX_ROUNDS];
            let rounds = engine.scan_schedule(&mut cuts);
            assert!(rounds >= 1);
            assert_eq!(cuts[rounds - 1], engine.row_words, "d={d} must end at the full row");
            for pair in cuts[..rounds].windows(2) {
                assert!(pair[0] < pair[1], "d={d} schedule must be strictly increasing");
            }
        }
        // d = 10_240 (160 words): first round is one 16-word kernel block.
        let engine = BatchLookup::new(10_240);
        let mut cuts = [0usize; MAX_ROUNDS];
        let rounds = engine.scan_schedule(&mut cuts);
        assert_eq!(&cuts[..rounds], &[16, 64, 160]);
    }

    #[test]
    fn calibrator_collapses_and_explores() {
        let calibrator = ScanCalibrator::new();
        assert!(calibrator.wants_filter(), "fresh engines start filtered");
        // Sustained adversarial verdicts collapse the scan.
        for _ in 0..8 {
            calibrator.record(false);
        }
        let filtered = (0..EXPLORE_PERIOD as usize).filter(|_| calibrator.wants_filter()).count();
        assert_eq!(filtered, 1, "collapsed engines explore exactly once per period");
        // Stand-out verdicts (from exploration queries) re-engage it.
        for _ in 0..3 * SCORE_SATURATION {
            calibrator.record(true);
        }
        assert!(calibrator.wants_filter(), "inference traffic must re-engage the filter");
    }

    #[test]
    fn collapsed_engine_still_exact() {
        // Force the collapsed path and confirm exactness on both probe
        // shapes, including the periodic exploration queries.
        let d = 10_240;
        for layout in MatrixLayout::ALL {
            let options = EngineOptions::default().with_layout(layout);
            let (engine, rows) = engine_with_options(64, d, 77, options);
            let mut rng = Rng::new(78);
            for _ in 0..12 {
                let probe = Hypervector::random(d, &mut rng);
                let _ = engine.nearest_one(&probe);
            }
            assert!(
                engine.calibrator.score.load(Ordering::Relaxed) < 0,
                "should have collapsed"
            );
            for i in 0..40 {
                let probe = if i % 2 == 0 {
                    Hypervector::random(d, &mut rng)
                } else {
                    let victim = rng.next_below(64) as usize;
                    let mut p = rows[victim].clone();
                    p.flip_bits(rng.distinct_indices(d / 20, d));
                    p
                };
                assert_eq!(
                    engine.nearest_one(&probe),
                    naive_nearest(&rows, &probe),
                    "query {i} layout={layout:?}"
                );
            }
        }
    }

    #[test]
    fn adversarial_stream_collapses_then_reengages() {
        let d = 10_240;
        let (engine, rows) = engine_with(32, d, 99);
        let mut rng = Rng::new(100);
        for _ in 0..12 {
            let probe = Hypervector::random(d, &mut rng);
            assert_eq!(engine.nearest_one(&probe), naive_nearest(&rows, &probe));
        }
        assert!(engine.calibrator.score.load(Ordering::Relaxed) < 0);
        // A long inference-shaped phase re-engages the filter through the
        // exploration queries.
        for i in 0..(3 * EXPLORE_PERIOD * SCORE_SATURATION as u32) {
            let victim = (i as usize) % 32;
            let mut probe = rows[victim].clone();
            probe.flip_bits(rng.distinct_indices(d / 30, d));
            assert_eq!(engine.nearest_one(&probe), naive_nearest(&rows, &probe));
            if engine.calibrator.score.load(Ordering::Relaxed) >= 0 {
                break;
            }
        }
        assert!(
            engine.calibrator.score.load(Ordering::Relaxed) >= 0,
            "filter must re-engage under inference traffic"
        );
    }

    #[test]
    fn flip_bit_tracks_rows() {
        for options in option_grid() {
            let (mut engine, rows) = engine_with_options(3, 130, 13, options);
            engine.flip_bit(2, 129);
            let mut expect = rows[2].clone();
            expect.flip_bit(129);
            assert_eq!(row_of(&engine, 2), expect.as_words(), "options={options:?}");
        }
    }

    #[test]
    fn layout_names_roundtrip() {
        for layout in MatrixLayout::ALL {
            assert_eq!(MatrixLayout::parse(layout.name()), Some(layout));
        }
        assert_eq!(MatrixLayout::parse("row_major"), Some(MatrixLayout::RowMajor));
        assert_eq!(MatrixLayout::parse("column-major"), None);
    }

    #[test]
    fn autotune_fills_unset_options() {
        // The measured table picks row-major at every dimension (see
        // `autotuned`); pinned options are honored verbatim.
        let long = BatchLookup::new(10_240);
        assert_eq!(long.layout(), MatrixLayout::RowMajor);
        assert!(long.row_block() > 0);
        let short = BatchLookup::new(512);
        assert_eq!(short.layout(), MatrixLayout::RowMajor);
        let pinned = BatchLookup::with_options(
            10_240,
            EngineOptions::default().with_layout(MatrixLayout::Interleaved).with_row_block(5),
        );
        assert_eq!(pinned.layout(), MatrixLayout::Interleaved);
        assert_eq!(pinned.row_block(), 5);
    }
}
