//! Compound encodings: sequences, n-grams and records.
//!
//! Section 4 of the paper situates circular-hypervectors within the wider
//! family of HDC *encoding strategies*: "encoding strategies have already
//! been proposed for various types of input data, such as images, time
//! series and text. […] From these so-called basis-hypervectors more
//! complex objects […] can be encoded by combining and manipulating the
//! basis-hypervectors using bundling, binding and permutation operations."
//!
//! This module provides those standard compound encoders over any basis:
//!
//! * [`encode_sequence`] — position-by-permutation sequence encoding
//!   (`ρ⁰(x₁) ⊕ ρ¹(x₂) ⊕ …` for binding-based chains, used by n-grams);
//! * [`encode_ngrams`] — the classical text/trajectory encoding: bundle
//!   of all `n`-gram bindings (Rahimi et al.; Najafabadi et al., the
//!   paper's \[14\]);
//! * [`encode_record`] — key–value record encoding: bundle of
//!   `key ⊕ value` pairs (Kanerva's "holistic record").

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::ops::{bind, bundle, permute};
use crate::rng::Rng;

/// Encodes an ordered sequence by binding permuted symbols:
/// `ρ⁰(x₁) ⊕ ρ¹(x₂) ⊕ … ⊕ ρ^{k−1}(x_k)` where `ρ` is a 1-bit rotation.
///
/// The result is quasi-orthogonal to every input and to the same multiset
/// in any other order — order *matters*, which is the point.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if inputs disagree in dimension.
///
/// # Panics
///
/// Panics if `symbols` is empty.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::encoding::encode_sequence;
/// use hdhash_hdc::{similarity::cosine, Hypervector, Rng};
///
/// let mut rng = Rng::new(1);
/// let a = Hypervector::random(4096, &mut rng);
/// let b = Hypervector::random(4096, &mut rng);
/// let ab = encode_sequence(&[&a, &b])?;
/// let ba = encode_sequence(&[&b, &a])?;
/// assert!(cosine(&ab, &ba).abs() < 0.1, "order must matter");
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
pub fn encode_sequence(symbols: &[&Hypervector]) -> Result<Hypervector, DimensionMismatchError> {
    assert!(!symbols.is_empty(), "cannot encode an empty sequence");
    let mut acc = symbols[0].clone();
    for (position, symbol) in symbols.iter().enumerate().skip(1) {
        let rotated = permute(symbol, position);
        acc.xor_assign(&rotated)?;
    }
    Ok(acc)
}

/// Encodes a symbol stream as the bundle of its `n`-gram sequence
/// encodings — the standard HDC text-classification encoding.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if inputs disagree in dimension.
///
/// # Panics
///
/// Panics if `n == 0` or the stream is shorter than `n`.
pub fn encode_ngrams(
    stream: &[&Hypervector],
    n: usize,
    rng: &mut Rng,
) -> Result<Hypervector, DimensionMismatchError> {
    assert!(n > 0, "n-gram order must be positive");
    assert!(stream.len() >= n, "stream shorter than one n-gram");
    let grams: Vec<Hypervector> = stream
        .windows(n)
        .map(encode_sequence)
        .collect::<Result<_, _>>()?;
    let refs: Vec<&Hypervector> = grams.iter().collect();
    bundle(&refs, rng)
}

/// Encodes a record `{(key₁, value₁), …}` as the bundle of `keyᵢ ⊕ valueᵢ`
/// bindings. Values can be recovered approximately by unbinding:
/// `record ⊕ keyᵢ` is closer to `valueᵢ` than to any other stored value.
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] if inputs disagree in dimension.
///
/// # Panics
///
/// Panics if `fields` is empty.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::encoding::encode_record;
/// use hdhash_hdc::{similarity::cosine, Hypervector, Rng};
///
/// let mut rng = Rng::new(2);
/// let (name_k, name_v) = (Hypervector::random(8192, &mut rng), Hypervector::random(8192, &mut rng));
/// let (age_k, age_v) = (Hypervector::random(8192, &mut rng), Hypervector::random(8192, &mut rng));
/// let record = encode_record(&[(&name_k, &name_v), (&age_k, &age_v)], &mut rng)?;
/// // Unbinding the name key points at the name value.
/// let probe = record.xor(&name_k)?;
/// assert!(cosine(&probe, &name_v) > cosine(&probe, &age_v));
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
pub fn encode_record(
    fields: &[(&Hypervector, &Hypervector)],
    rng: &mut Rng,
) -> Result<Hypervector, DimensionMismatchError> {
    assert!(!fields.is_empty(), "cannot encode an empty record");
    let bound: Vec<Hypervector> =
        fields.iter().map(|&(k, v)| bind(k, v)).collect::<Result<_, _>>()?;
    let refs: Vec<&Hypervector> = bound.iter().collect();
    bundle(&refs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::RandomBasis;
    use crate::memory::AssociativeMemory;
    use crate::similarity::cosine;

    const D: usize = 8192;

    fn alphabet(n: usize, seed: u64) -> Vec<Hypervector> {
        let mut rng = Rng::new(seed);
        RandomBasis::generate(n, D, &mut rng).expect("valid").into_hypervectors()
    }

    #[test]
    fn sequence_is_order_sensitive() {
        let abc = alphabet(3, 1);
        let refs: Vec<&Hypervector> = abc.iter().collect();
        let fwd = encode_sequence(&refs).expect("dims");
        let rev: Vec<&Hypervector> = abc.iter().rev().collect();
        let bwd = encode_sequence(&rev).expect("dims");
        assert!(cosine(&fwd, &bwd).abs() < 0.1);
    }

    #[test]
    fn sequence_of_one_is_identity() {
        let a = alphabet(1, 2);
        assert_eq!(encode_sequence(&[&a[0]]).expect("dims"), a[0]);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let _ = encode_sequence(&[]);
    }

    #[test]
    fn ngram_texts_classify_by_language_style() {
        // Two "languages": streams over disjoint trigram statistics. A
        // fresh sample from language A must encode closer to A's profile.
        let symbols = alphabet(8, 3);
        let mut rng = Rng::new(4);
        let sample = |pattern: &[usize], rng: &mut Rng| {
            let stream: Vec<&Hypervector> =
                pattern.iter().map(|&i| &symbols[i]).collect();
            encode_ngrams(&stream, 3, rng).expect("dims")
        };
        // Language A cycles 0,1,2,3; language B cycles 4,5,6,7.
        let a_profile = sample(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3], &mut rng);
        let b_profile = sample(&[4, 5, 6, 7, 4, 5, 6, 7, 4, 5, 6, 7], &mut rng);
        let a_test = sample(&[1, 2, 3, 0, 1, 2, 3, 0], &mut rng);
        assert!(
            cosine(&a_test, &a_profile) > cosine(&a_test, &b_profile),
            "trigram profile failed to separate the languages"
        );
    }

    #[test]
    #[should_panic(expected = "shorter than one n-gram")]
    fn short_stream_panics() {
        let a = alphabet(2, 5);
        let mut rng = Rng::new(0);
        let _ = encode_ngrams(&[&a[0], &a[1]], 3, &mut rng);
    }

    #[test]
    fn record_recovers_all_values_via_cleanup_memory() {
        let keys = alphabet(4, 6);
        let values = alphabet(4, 7);
        let mut rng = Rng::new(8);
        let fields: Vec<(&Hypervector, &Hypervector)> =
            keys.iter().zip(values.iter()).collect();
        let record = encode_record(&fields, &mut rng).expect("dims");

        // Cleanup memory over the value alphabet.
        let mut memory = AssociativeMemory::new(D);
        for (i, v) in values.iter().enumerate() {
            memory.insert(i, v.clone()).expect("dims");
        }
        for (i, k) in keys.iter().enumerate() {
            let probe = record.xor(k).expect("dims");
            assert_eq!(
                memory.nearest(&probe).expect("non-empty").key,
                i,
                "field {i} failed to decode"
            );
        }
    }

    #[test]
    fn record_is_dissimilar_to_raw_parts() {
        let keys = alphabet(3, 9);
        let values = alphabet(3, 10);
        let mut rng = Rng::new(11);
        let fields: Vec<(&Hypervector, &Hypervector)> =
            keys.iter().zip(values.iter()).collect();
        let record = encode_record(&fields, &mut rng).expect("dims");
        for hv in keys.iter().chain(values.iter()) {
            assert!(cosine(&record, hv).abs() < 0.15);
        }
    }

    #[test]
    #[should_panic(expected = "empty record")]
    fn empty_record_panics() {
        let mut rng = Rng::new(0);
        let _ = encode_record(&[], &mut rng);
    }

    #[test]
    fn encoders_reject_dimension_mismatch() {
        let mut rng = Rng::new(12);
        let a = Hypervector::random(64, &mut rng);
        let b = Hypervector::random(128, &mut rng);
        assert!(encode_sequence(&[&a, &b]).is_err());
        assert!(encode_record(&[(&a, &b)], &mut rng).is_err());
    }
}
