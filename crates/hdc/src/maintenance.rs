//! Incremental membership maintenance: counter-plane centroids.
//!
//! Online HDC systems keep a *bundled summary* of a changing membership —
//! a classifier's per-class prototype, a hash table's pool signature — and
//! the naive discipline re-bundles the full membership on every change:
//! `O(n · d)` scalar work to add or remove one member. This module makes
//! that churn incremental by standing the summary on
//! [`MajorityBundler`](crate::ops::MajorityBundler)'s transposed counter
//! planes: adding a member is a ripple-carry plane update, removing one is
//! the ripple-borrow inverse — both `O(words · log n)` bitwise ops — and
//! the majority readout is the bit-sliced comparator, never a per-bit
//! loop.
//!
//! [`MembershipCentroid`] reproduces, **bit for bit**, the prototype the
//! integer-counter [`BundleAccumulator`](crate::accumulator::BundleAccumulator)
//! would compute from scratch over the same multiset (bipolar threshold,
//! exact-tie resolution by dimension-index parity). The property suite
//! (`tests/incremental_maintenance.rs`) drives random add/remove
//! interleavings against the from-scratch construction to pin that claim.

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::ops::MajorityBundler;

/// An incrementally maintained majority centroid over a changing
/// membership of hypervectors.
///
/// Semantics match thresholding the bipolar counters of a
/// [`BundleAccumulator`](crate::accumulator::BundleAccumulator) holding
/// the same multiset: bit `i` of [`read`](Self::read) is 1 iff more
/// members vote 1 than 0 in dimension `i`, with exact ties (even member
/// counts only) resolved by the fixed dimension-index parity pattern.
/// The empty centroid reads as the parity pattern itself, again matching
/// the accumulator.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{maintenance::MembershipCentroid, Hypervector, Rng};
///
/// let mut rng = Rng::new(5);
/// let members: Vec<Hypervector> =
///     (0..5).map(|_| Hypervector::random(2048, &mut rng)).collect();
/// let mut centroid = MembershipCentroid::new(2048);
/// for hv in &members {
///     centroid.add(hv)?;
/// }
/// let with_all = centroid.read();
/// // Removing and re-adding a member is an exact no-op.
/// centroid.remove(&members[2])?;
/// centroid.add(&members[2])?;
/// assert_eq!(centroid.read(), with_all);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MembershipCentroid {
    bundler: MajorityBundler,
    /// The fixed exact-tie pattern: bit `i` set iff `i` is even — the
    /// same unbiased, RNG-free tie-break the integer accumulator uses.
    parity: Hypervector,
}

impl MembershipCentroid {
    /// Creates an empty centroid for dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        let mut parity = Hypervector::zeros(d);
        for i in (0..d).step_by(2) {
            parity.set_bit(i, true);
        }
        Self { bundler: MajorityBundler::new(d), parity }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.bundler.dimension()
    }

    /// Current member count.
    #[must_use]
    pub fn members(&self) -> usize {
        self.bundler.members()
    }

    /// Whether no members are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bundler.members() == 0
    }

    /// Adds one member's votes (`O(words · log n)` plane update).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    pub fn add(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        self.bundler.add(hv)
    }

    /// Removes one previously added member's votes (`O(words · log n)`
    /// ripple-borrow plane update).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the centroid is empty or `hv` was never added (counter
    /// underflow).
    pub fn remove(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        self.bundler.subtract(hv)
    }

    /// Clears the membership, keeping plane storage for reuse.
    pub fn clear(&mut self) {
        self.bundler.reset();
    }

    /// Reads out the current majority centroid (bit-sliced comparator,
    /// `O(words · log n)`).
    ///
    /// Byte-identical to `BundleAccumulator::to_hypervector()` over the
    /// same multiset; the empty centroid reads as the parity pattern.
    #[must_use]
    pub fn read(&self) -> Hypervector {
        if self.bundler.members() == 0 {
            return self.parity.clone();
        }
        // A bipolar tie (as many 1-votes as 0-votes) only exists for even
        // member counts. For odd counts the comparator's `count == ⌊m/2⌋`
        // case means the 0-votes won by one, so no tie vector may apply.
        let tie =
            if self.bundler.members().is_multiple_of(2) { Some(&self.parity) } else { None };
        self.bundler.majority(tie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::BundleAccumulator;
    use crate::rng::Rng;

    fn from_scratch(members: &[Hypervector], d: usize) -> Hypervector {
        let mut acc = BundleAccumulator::new(d);
        for hv in members {
            acc.add(hv).expect("dims");
        }
        acc.to_hypervector()
    }

    #[test]
    fn matches_accumulator_for_odd_and_even_counts() {
        let mut rng = Rng::new(1);
        for d in [63usize, 64, 65, 130, 1000] {
            let members: Vec<Hypervector> =
                (0..6).map(|_| Hypervector::random(d, &mut rng)).collect();
            let mut centroid = MembershipCentroid::new(d);
            for (i, hv) in members.iter().enumerate() {
                centroid.add(hv).expect("dims");
                assert_eq!(
                    centroid.read(),
                    from_scratch(&members[..=i], d),
                    "d={d} count={}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn empty_reads_parity() {
        let centroid = MembershipCentroid::new(10);
        let hv = centroid.read();
        for i in 0..10 {
            assert_eq!(hv.bit(i), i % 2 == 0);
        }
        assert!(centroid.is_empty());
        assert_eq!(centroid.dimension(), 10);
    }

    #[test]
    fn remove_undoes_add_exactly() {
        let mut rng = Rng::new(2);
        let d = 512;
        let keep: Vec<Hypervector> = (0..3).map(|_| Hypervector::random(d, &mut rng)).collect();
        let churn: Vec<Hypervector> = (0..4).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut centroid = MembershipCentroid::new(d);
        for hv in &keep {
            centroid.add(hv).expect("dims");
        }
        let baseline = centroid.read();
        for hv in &churn {
            centroid.add(hv).expect("dims");
        }
        for hv in &churn {
            centroid.remove(hv).expect("dims");
        }
        assert_eq!(centroid.members(), 3);
        assert_eq!(centroid.read(), baseline);
    }

    #[test]
    fn clear_resets_membership() {
        let mut rng = Rng::new(3);
        let mut centroid = MembershipCentroid::new(128);
        let a = Hypervector::random(128, &mut rng);
        centroid.add(&a).expect("dims");
        centroid.clear();
        assert!(centroid.is_empty());
        let b = Hypervector::random(128, &mut rng);
        centroid.add(&b).expect("dims");
        assert_eq!(centroid.read(), b, "stale planes leaked through clear");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_a_stranger_panics() {
        let d = 64;
        let mut centroid = MembershipCentroid::new(d);
        centroid.add(&Hypervector::zeros(d)).expect("dims");
        let _ = centroid.remove(&Hypervector::ones(d));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let mut centroid = MembershipCentroid::new(64);
        assert!(centroid.add(&Hypervector::zeros(65)).is_err());
        assert!(centroid.is_empty());
    }
}
