//! Incremental membership maintenance: counter-plane centroids.
//!
//! Online HDC systems keep a *bundled summary* of a changing membership —
//! a classifier's per-class prototype, a hash table's pool signature — and
//! the naive discipline re-bundles the full membership on every change:
//! `O(n · d)` scalar work to add or remove one member. This module makes
//! that churn incremental by standing the summary on
//! [`MajorityBundler`]'s transposed counter
//! planes: adding a member is a ripple-carry plane update, removing one is
//! the ripple-borrow inverse — both `O(words · log n)` bitwise ops — and
//! the majority readout is the bit-sliced comparator, never a per-bit
//! loop.
//!
//! [`MembershipCentroid`] reproduces, **bit for bit**, the prototype the
//! integer-counter [`BundleAccumulator`](crate::accumulator::BundleAccumulator)
//! would compute from scratch over the same multiset (bipolar threshold,
//! exact-tie resolution by dimension-index parity). The property suite
//! (`tests/incremental_maintenance.rs`) drives random add/remove
//! interleavings against the from-scratch construction to pin that claim.

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::ops::MajorityBundler;

/// The outcome of comparing two membership signatures
/// ([`signature_diff`]): the raw Hamming distance plus the verdict at the
/// caller's divergence threshold.
///
/// Anti-entropy protocols gossip the `d`-bit signature instead of member
/// lists; a delta with `diverged == false` means the replicas' slot-level
/// routing state agrees (for identical memberships the distance is exactly
/// zero — the centroid is a pure function of the encoding multiset), while
/// `diverged == true` triggers the expensive member-list exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureDelta {
    /// Exact Hamming distance between the two signatures.
    pub distance: usize,
    /// Dimensionality both signatures share.
    pub dimension: usize,
    /// The divergence threshold the verdict was taken at.
    pub threshold: usize,
    /// `distance > threshold`: the memberships should reconcile.
    pub diverged: bool,
}

impl SignatureDelta {
    /// The distance as a fraction of the dimension, in `[0, 1]`.
    #[must_use]
    pub fn normalized(&self) -> f64 {
        self.distance as f64 / self.dimension as f64
    }
}

/// Compares two membership signatures (as read from
/// [`MembershipCentroid::read`] or a table's `membership_signature()`),
/// returning the Hamming distance and a divergence verdict at `threshold`.
///
/// Identical membership multisets produce **identical** signatures, so
/// `distance == 0` and any threshold reports agreement — the protocol has
/// no false positives by construction. A single-member difference in a
/// high-dimensional pool perturbs on the order of `d / 2n` bits or more
/// (each member's votes touch every dimension), so small thresholds (a few
/// dozen bits at `d = 10_000`) keep false negatives out of reach; the
/// property suite in this module pins both directions.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{maintenance::signature_diff, Hypervector, MembershipCentroid, Rng};
///
/// let mut rng = Rng::new(3);
/// let members: Vec<Hypervector> =
///     (0..8).map(|_| Hypervector::random(4096, &mut rng)).collect();
/// let mut local = MembershipCentroid::new(4096);
/// let mut remote = MembershipCentroid::new(4096);
/// for hv in &members {
///     local.add(hv)?;
///     remote.add(hv)?;
/// }
/// // Identical memberships: distance is exactly zero at any threshold.
/// assert!(!signature_diff(&local.read(), &remote.read(), 0)?.diverged);
/// // One extra member on the remote: the delta trips the threshold.
/// remote.add(&Hypervector::random(4096, &mut rng))?;
/// assert!(signature_diff(&local.read(), &remote.read(), 32)?.diverged);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
///
/// # Errors
///
/// Returns [`DimensionMismatchError`] when the signatures disagree on `d`.
pub fn signature_diff(
    a: &Hypervector,
    b: &Hypervector,
    threshold: usize,
) -> Result<SignatureDelta, DimensionMismatchError> {
    if a.dimension() != b.dimension() {
        return Err(DimensionMismatchError { left: a.dimension(), right: b.dimension() });
    }
    let distance = a.hamming_distance(b);
    Ok(SignatureDelta {
        distance,
        dimension: a.dimension(),
        threshold,
        diverged: distance > threshold,
    })
}

/// The membership moves that turn one centroid's multiset into another's:
/// the reconciliation step of an anti-entropy exchange, expressed at the
/// hypervector level.
///
/// Produced by [`diff_memberships`]; applied with
/// [`apply_to`](Self::apply_to). Applying the delta derived from local and
/// remote member encodings converts the local centroid into a bit-exact
/// copy of the remote one — the centroid is a pure function of the
/// encoding multiset.
///
/// Note the delta is *positional* (a list of adds and removes), so
/// applying the same delta twice is **not** a no-op; protocols that need
/// idempotent reconciliation derive a fresh delta from current state each
/// round (see `hdhash-serve`'s replication layer, which keys deltas off a
/// versioned membership log).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CentroidDelta {
    /// Encodings present remotely but missing locally — to be added.
    pub add: Vec<Hypervector>,
    /// Encodings present locally but missing remotely — to be removed.
    pub remove: Vec<Hypervector>,
}

impl CentroidDelta {
    /// Whether the delta moves nothing (the memberships already agree).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.remove.is_empty()
    }

    /// Total membership moves the delta carries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.add.len() + self.remove.len()
    }

    /// Applies every move to `centroid`: removals first (so a centroid
    /// near capacity never transiently overshoots), then additions.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on the first move whose
    /// dimension disagrees with the centroid; moves already applied stay
    /// applied (derive a fresh delta to recover).
    pub fn apply_to(
        &self,
        centroid: &mut MembershipCentroid,
    ) -> Result<(), DimensionMismatchError> {
        for hv in &self.remove {
            centroid.remove(hv)?;
        }
        for hv in &self.add {
            centroid.add(hv)?;
        }
        Ok(())
    }
}

/// Computes the [`CentroidDelta`] that turns the `local` encoding multiset
/// into the `remote` one (multiset semantics: an encoding present twice
/// remotely and once locally yields one add).
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{
///     maintenance::{diff_memberships, MembershipCentroid},
///     Hypervector, Rng,
/// };
///
/// let mut rng = Rng::new(9);
/// let shared: Vec<Hypervector> =
///     (0..4).map(|_| Hypervector::random(1024, &mut rng)).collect();
/// let local_only = Hypervector::random(1024, &mut rng);
/// let remote_only = Hypervector::random(1024, &mut rng);
///
/// let mut local_members = shared.clone();
/// local_members.push(local_only);
/// let mut remote_members = shared.clone();
/// remote_members.push(remote_only);
///
/// let delta = diff_memberships(&local_members, &remote_members);
/// assert_eq!((delta.add.len(), delta.remove.len()), (1, 1));
///
/// // Applying the delta makes the local centroid byte-identical to the
/// // remote one.
/// let mut local = MembershipCentroid::new(1024);
/// let mut remote = MembershipCentroid::new(1024);
/// for hv in &local_members {
///     local.add(hv)?;
/// }
/// for hv in &remote_members {
///     remote.add(hv)?;
/// }
/// delta.apply_to(&mut local)?;
/// assert_eq!(local.read(), remote.read());
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[must_use]
pub fn diff_memberships(local: &[Hypervector], remote: &[Hypervector]) -> CentroidDelta {
    // Multiset difference via occurrence counting on the packed words.
    // Hypervectors hash by content (word vector), so a HashMap keyed on the
    // vector gives exact multiset semantics.
    let mut counts: std::collections::HashMap<&Hypervector, isize> =
        std::collections::HashMap::new();
    for hv in remote {
        *counts.entry(hv).or_insert(0) += 1;
    }
    for hv in local {
        *counts.entry(hv).or_insert(0) -= 1;
    }
    let mut delta = CentroidDelta::default();
    for (hv, count) in counts {
        for _ in 0..count.abs() {
            if count > 0 {
                delta.add.push(hv.clone());
            } else {
                delta.remove.push(hv.clone());
            }
        }
    }
    delta
}

/// An incrementally maintained majority centroid over a changing
/// membership of hypervectors.
///
/// Semantics match thresholding the bipolar counters of a
/// [`BundleAccumulator`](crate::accumulator::BundleAccumulator) holding
/// the same multiset: bit `i` of [`read`](Self::read) is 1 iff more
/// members vote 1 than 0 in dimension `i`, with exact ties (even member
/// counts only) resolved by the fixed dimension-index parity pattern.
/// The empty centroid reads as the parity pattern itself, again matching
/// the accumulator.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{maintenance::MembershipCentroid, Hypervector, Rng};
///
/// let mut rng = Rng::new(5);
/// let members: Vec<Hypervector> =
///     (0..5).map(|_| Hypervector::random(2048, &mut rng)).collect();
/// let mut centroid = MembershipCentroid::new(2048);
/// for hv in &members {
///     centroid.add(hv)?;
/// }
/// let with_all = centroid.read();
/// // Removing and re-adding a member is an exact no-op.
/// centroid.remove(&members[2])?;
/// centroid.add(&members[2])?;
/// assert_eq!(centroid.read(), with_all);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MembershipCentroid {
    bundler: MajorityBundler,
    /// The fixed exact-tie pattern: bit `i` set iff `i` is even — the
    /// same unbiased, RNG-free tie-break the integer accumulator uses.
    parity: Hypervector,
}

impl MembershipCentroid {
    /// Creates an empty centroid for dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        let mut parity = Hypervector::zeros(d);
        for i in (0..d).step_by(2) {
            parity.set_bit(i, true);
        }
        Self { bundler: MajorityBundler::new(d), parity }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.bundler.dimension()
    }

    /// Current member count.
    #[must_use]
    pub fn members(&self) -> usize {
        self.bundler.members()
    }

    /// Whether no members are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bundler.members() == 0
    }

    /// Adds one member's votes (`O(words · log n)` plane update).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    pub fn add(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        self.bundler.add(hv)
    }

    /// Removes one previously added member's votes (`O(words · log n)`
    /// ripple-borrow plane update).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the centroid is empty or `hv` was never added (counter
    /// underflow).
    pub fn remove(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        self.bundler.subtract(hv)
    }

    /// Clears the membership, keeping plane storage for reuse.
    pub fn clear(&mut self) {
        self.bundler.reset();
    }

    /// Reads out the current majority centroid (bit-sliced comparator,
    /// `O(words · log n)`).
    ///
    /// Byte-identical to `BundleAccumulator::to_hypervector()` over the
    /// same multiset; the empty centroid reads as the parity pattern.
    #[must_use]
    pub fn read(&self) -> Hypervector {
        if self.bundler.members() == 0 {
            return self.parity.clone();
        }
        // A bipolar tie (as many 1-votes as 0-votes) only exists for even
        // member counts. For odd counts the comparator's `count == ⌊m/2⌋`
        // case means the 0-votes won by one, so no tie vector may apply.
        let tie =
            if self.bundler.members().is_multiple_of(2) { Some(&self.parity) } else { None };
        self.bundler.majority(tie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::BundleAccumulator;
    use crate::rng::Rng;

    fn from_scratch(members: &[Hypervector], d: usize) -> Hypervector {
        let mut acc = BundleAccumulator::new(d);
        for hv in members {
            acc.add(hv).expect("dims");
        }
        acc.to_hypervector()
    }

    #[test]
    fn matches_accumulator_for_odd_and_even_counts() {
        let mut rng = Rng::new(1);
        for d in [63usize, 64, 65, 130, 1000] {
            let members: Vec<Hypervector> =
                (0..6).map(|_| Hypervector::random(d, &mut rng)).collect();
            let mut centroid = MembershipCentroid::new(d);
            for (i, hv) in members.iter().enumerate() {
                centroid.add(hv).expect("dims");
                assert_eq!(
                    centroid.read(),
                    from_scratch(&members[..=i], d),
                    "d={d} count={}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn empty_reads_parity() {
        let centroid = MembershipCentroid::new(10);
        let hv = centroid.read();
        for i in 0..10 {
            assert_eq!(hv.bit(i), i % 2 == 0);
        }
        assert!(centroid.is_empty());
        assert_eq!(centroid.dimension(), 10);
    }

    #[test]
    fn remove_undoes_add_exactly() {
        let mut rng = Rng::new(2);
        let d = 512;
        let keep: Vec<Hypervector> = (0..3).map(|_| Hypervector::random(d, &mut rng)).collect();
        let churn: Vec<Hypervector> = (0..4).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut centroid = MembershipCentroid::new(d);
        for hv in &keep {
            centroid.add(hv).expect("dims");
        }
        let baseline = centroid.read();
        for hv in &churn {
            centroid.add(hv).expect("dims");
        }
        for hv in &churn {
            centroid.remove(hv).expect("dims");
        }
        assert_eq!(centroid.members(), 3);
        assert_eq!(centroid.read(), baseline);
    }

    #[test]
    fn clear_resets_membership() {
        let mut rng = Rng::new(3);
        let mut centroid = MembershipCentroid::new(128);
        let a = Hypervector::random(128, &mut rng);
        centroid.add(&a).expect("dims");
        centroid.clear();
        assert!(centroid.is_empty());
        let b = Hypervector::random(128, &mut rng);
        centroid.add(&b).expect("dims");
        assert_eq!(centroid.read(), b, "stale planes leaked through clear");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_a_stranger_panics() {
        let d = 64;
        let mut centroid = MembershipCentroid::new(d);
        centroid.add(&Hypervector::zeros(d)).expect("dims");
        let _ = centroid.remove(&Hypervector::ones(d));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let mut centroid = MembershipCentroid::new(64);
        assert!(centroid.add(&Hypervector::zeros(65)).is_err());
        assert!(centroid.is_empty());
    }

    #[test]
    fn diff_memberships_reconciles_centroids_exactly() {
        let d = 512;
        let mut rng = Rng::new(21);
        let shared: Vec<Hypervector> = (0..5).map(|_| Hypervector::random(d, &mut rng)).collect();
        let local_extra: Vec<Hypervector> =
            (0..3).map(|_| Hypervector::random(d, &mut rng)).collect();
        let remote_extra: Vec<Hypervector> =
            (0..2).map(|_| Hypervector::random(d, &mut rng)).collect();
        let local_members: Vec<Hypervector> =
            shared.iter().chain(&local_extra).cloned().collect();
        let remote_members: Vec<Hypervector> =
            shared.iter().chain(&remote_extra).cloned().collect();
        let delta = diff_memberships(&local_members, &remote_members);
        assert_eq!(delta.add.len(), 2);
        assert_eq!(delta.remove.len(), 3);
        assert_eq!(delta.len(), 5);
        assert!(!delta.is_empty());
        let mut local = MembershipCentroid::new(d);
        for hv in &local_members {
            local.add(hv).expect("dims");
        }
        let mut remote = MembershipCentroid::new(d);
        for hv in &remote_members {
            remote.add(hv).expect("dims");
        }
        delta.apply_to(&mut local).expect("dims");
        assert_eq!(local.read(), remote.read());
        assert_eq!(local.members(), remote.members());
        // Identical memberships diff to the empty delta — the fixed point.
        assert!(diff_memberships(&remote_members, &remote_members).is_empty());
    }

    #[test]
    fn diff_memberships_respects_multiplicity() {
        let d = 128;
        let mut rng = Rng::new(22);
        let hv = Hypervector::random(d, &mut rng);
        // Locally once, remotely three times: two adds, no removes.
        let delta = diff_memberships(
            std::slice::from_ref(&hv),
            &[hv.clone(), hv.clone(), hv.clone()],
        );
        assert_eq!((delta.add.len(), delta.remove.len()), (2, 0));
        assert!(delta.add.iter().all(|a| *a == hv));
    }

    #[test]
    fn delta_apply_dimension_mismatch_errors() {
        let delta = CentroidDelta {
            add: vec![Hypervector::zeros(64)],
            remove: Vec::new(),
        };
        let mut centroid = MembershipCentroid::new(65);
        assert!(delta.apply_to(&mut centroid).is_err());
        assert!(centroid.is_empty(), "failed move must not half-apply");
    }

    #[test]
    fn signature_diff_no_false_positives_at_d10k() {
        // Two replicas that reached the same 32-member pool through
        // different interleavings read byte-identical signatures: distance
        // is exactly 0 and no threshold — including 0 — reports divergence.
        let d = 10_000;
        let mut rng = Rng::new(17);
        let members: Vec<Hypervector> =
            (0..32).map(|_| Hypervector::random(d, &mut rng)).collect();
        let mut a = MembershipCentroid::new(d);
        for hv in &members {
            a.add(hv).expect("dims");
        }
        // Replica b: add in reverse, churn one member in and out.
        let mut b = MembershipCentroid::new(d);
        for hv in members.iter().rev() {
            b.add(hv).expect("dims");
        }
        b.remove(&members[5]).expect("present");
        b.add(&members[5]).expect("dims");
        for threshold in [0usize, 10, 500] {
            let delta = signature_diff(&a.read(), &b.read(), threshold).expect("dims");
            assert_eq!(delta.distance, 0);
            assert!(!delta.diverged, "identical memberships must never diverge");
            assert_eq!(delta.normalized(), 0.0);
        }
    }

    #[test]
    fn signature_diff_no_false_negatives_at_d10k() {
        // Replicas differing by one member of 32 at d = 10k: the distance
        // lands far above any sane threshold, so the mismatch is caught.
        let d = 10_000;
        let mut rng = Rng::new(18);
        let members: Vec<Hypervector> =
            (0..32).map(|_| Hypervector::random(d, &mut rng)).collect();
        let straggler = Hypervector::random(d, &mut rng);
        let mut a = MembershipCentroid::new(d);
        let mut b = MembershipCentroid::new(d);
        for hv in &members {
            a.add(hv).expect("dims");
            b.add(hv).expect("dims");
        }
        b.add(&straggler).expect("dims");
        let delta = signature_diff(&a.read(), &b.read(), 64).expect("dims");
        assert!(
            delta.distance > 64,
            "one of 33 members must perturb ≫ 64 bits, got {}",
            delta.distance
        );
        assert!(delta.diverged);
        assert_eq!(delta.dimension, d);
        assert_eq!(delta.threshold, 64);
    }

    #[test]
    fn signature_diff_threshold_boundary_and_errors() {
        let d = 256;
        let a = Hypervector::zeros(d);
        let mut b = Hypervector::zeros(d);
        b.flip_bits([0, 1, 2]);
        // distance == threshold is still agreement; one past it diverges.
        let at = signature_diff(&a, &b, 3).expect("dims");
        assert_eq!((at.distance, at.diverged), (3, false));
        let past = signature_diff(&a, &b, 2).expect("dims");
        assert_eq!((past.distance, past.diverged), (3, true));
        assert!(signature_diff(&a, &Hypervector::zeros(255), 0).is_err());
    }
}
