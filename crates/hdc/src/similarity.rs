//! Similarity metrics between hypervectors.
//!
//! The paper's Eq. 2 assigns a request to `argmax_s δ(Enc(s), Enc(r))`
//! where `δ` is "a given similarity metric between a pair of hypervectors
//! such as inverse Hamming distance or the cosine similarity". Both are
//! provided here. For dense binary vectors interpreted as bipolar (±1)
//! vectors the two induce the same ranking: `cos(a, b) = 1 − 2·ham/d`.

use crate::hypervector::Hypervector;

/// Which `δ` the arg-max of Eq. 2 uses.
///
/// For dense binary hypervectors these metrics are affinely related and
/// rank identically; both are offered because the paper names both and the
/// ablation benches compare their cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SimilarityMetric {
    /// Inverse Hamming similarity `1 − ham/d` in `[0, 1]`.
    #[default]
    InverseHamming,
    /// Bipolar cosine similarity `1 − 2·ham/d` in `[−1, 1]`.
    Cosine,
}

impl SimilarityMetric {
    /// Evaluates the metric.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn evaluate(self, a: &Hypervector, b: &Hypervector) -> f64 {
        match self {
            SimilarityMetric::InverseHamming => inverse_hamming(a, b),
            SimilarityMetric::Cosine => cosine(a, b),
        }
    }

    /// Converts an integer Hamming distance into this metric's score.
    ///
    /// Bit-identical to [`evaluate`](Self::evaluate) (same floating-point
    /// expression over the same integers), which lets distance-only search
    /// kernels defer the float conversion to the single winning candidate.
    #[must_use]
    pub fn score_from_distance(self, distance: usize, dimension: usize) -> f64 {
        match self {
            SimilarityMetric::InverseHamming => {
                1.0 - distance as f64 / dimension as f64
            }
            SimilarityMetric::Cosine => 1.0 - 2.0 * distance as f64 / dimension as f64,
        }
    }
}

impl core::fmt::Display for SimilarityMetric {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimilarityMetric::InverseHamming => f.write_str("inverse-hamming"),
            SimilarityMetric::Cosine => f.write_str("cosine"),
        }
    }
}

/// Hamming distance (number of differing bits).
///
/// # Panics
///
/// Panics if the dimensions differ.
#[must_use]
pub fn hamming(a: &Hypervector, b: &Hypervector) -> usize {
    a.hamming_distance(b)
}

/// Inverse (normalized) Hamming similarity: `1 − ham(a, b) / d ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if the dimensions differ.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{similarity::inverse_hamming, Hypervector};
///
/// let a = Hypervector::zeros(100);
/// assert_eq!(inverse_hamming(&a, &a), 1.0);
/// ```
#[must_use]
pub fn inverse_hamming(a: &Hypervector, b: &Hypervector) -> f64 {
    1.0 - hamming(a, b) as f64 / a.dimension() as f64
}

/// Bipolar cosine similarity.
///
/// Interpreting bits `{0, 1}` as bipolar `{−1, +1}` coordinates, the cosine
/// of the angle between two hypervectors is exactly `1 − 2·ham(a, b)/d`.
/// Identical vectors score `1`, antipodal vectors `−1`, and independent
/// random vectors concentrate near `0` — the scale used in the paper's
/// Figure 2 heatmaps.
///
/// # Panics
///
/// Panics if the dimensions differ.
#[must_use]
pub fn cosine(a: &Hypervector, b: &Hypervector) -> f64 {
    1.0 - 2.0 * hamming(a, b) as f64 / a.dimension() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn identical_vectors_max_similarity() {
        let mut rng = Rng::new(40);
        let a = Hypervector::random(1000, &mut rng);
        assert_eq!(hamming(&a, &a), 0);
        assert_eq!(inverse_hamming(&a, &a), 1.0);
        assert_eq!(cosine(&a, &a), 1.0);
    }

    #[test]
    fn antipodal_vectors_min_similarity() {
        let a = Hypervector::zeros(640);
        let b = Hypervector::ones(640);
        assert_eq!(inverse_hamming(&a, &b), 0.0);
        assert_eq!(cosine(&a, &b), -1.0);
    }

    #[test]
    fn random_pairs_concentrate_at_zero_cosine() {
        let mut rng = Rng::new(41);
        for _ in 0..10 {
            let a = Hypervector::random(10_000, &mut rng);
            let b = Hypervector::random(10_000, &mut rng);
            let c = cosine(&a, &b);
            assert!(c.abs() < 0.06, "cosine {c} too far from 0");
        }
    }

    #[test]
    fn metrics_rank_identically() {
        let mut rng = Rng::new(42);
        let probe = Hypervector::random(4096, &mut rng);
        let candidates: Vec<Hypervector> =
            (0..20).map(|_| Hypervector::random(4096, &mut rng)).collect();
        let best_ih = candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                inverse_hamming(&probe, a).partial_cmp(&inverse_hamming(&probe, b)).expect("finite")
            })
            .map(|(i, _)| i);
        let best_cos = candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                cosine(&probe, a).partial_cmp(&cosine(&probe, b)).expect("finite")
            })
            .map(|(i, _)| i);
        assert_eq!(best_ih, best_cos);
    }

    #[test]
    fn cosine_affine_relation_to_hamming() {
        let mut rng = Rng::new(43);
        let a = Hypervector::random(2048, &mut rng);
        let mut b = a.clone();
        b.flip_bits(rng.distinct_indices(512, 2048));
        assert_eq!(hamming(&a, &b), 512);
        let expected = 1.0 - 2.0 * 512.0 / 2048.0;
        assert!((cosine(&a, &b) - expected).abs() < 1e-12);
        assert!((inverse_hamming(&a, &b) - (1.0 - 512.0 / 2048.0)).abs() < 1e-12);
    }

    #[test]
    fn metric_enum_dispatch() {
        let mut rng = Rng::new(44);
        let a = Hypervector::random(512, &mut rng);
        let b = Hypervector::random(512, &mut rng);
        assert_eq!(SimilarityMetric::Cosine.evaluate(&a, &b), cosine(&a, &b));
        assert_eq!(
            SimilarityMetric::InverseHamming.evaluate(&a, &b),
            inverse_hamming(&a, &b)
        );
        assert_eq!(SimilarityMetric::default(), SimilarityMetric::InverseHamming);
        assert_eq!(SimilarityMetric::Cosine.to_string(), "cosine");
    }
}
