//! Incremental bundling: integer-counter prototypes.
//!
//! Majority bundling ([`ops::bundle`](crate::ops::bundle)) is a one-shot
//! operation; online HDC systems (classifiers, adaptive prototypes)
//! instead keep an integer counter per dimension, add or retract
//! hypervectors over time, and *threshold* to read out the current
//! prototype. This is the "binarized bundling" of Schmuck et al. \[18\] —
//! the hardware-optimization work the paper leans on for its O(1)
//! inference claim — in software form.

use crate::hypervector::{DimensionMismatchError, Hypervector};

/// An integer-counter bundle accumulator.
///
/// Each dimension holds a signed counter; adding a hypervector increments
/// counters where its bit is 1 and decrements where it is 0 (the bipolar
/// interpretation). [`to_hypervector`](BundleAccumulator::to_hypervector)
/// thresholds at zero, breaking exact ties toward the deterministic
/// pattern of the dimension index parity (no RNG required, fully
/// reproducible).
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{accumulator::BundleAccumulator, similarity::cosine, Hypervector, Rng};
///
/// let mut rng = Rng::new(3);
/// let a = Hypervector::random(4096, &mut rng);
/// let b = Hypervector::random(4096, &mut rng);
/// let mut acc = BundleAccumulator::new(4096);
/// acc.add(&a)?;
/// acc.add(&b)?;
/// let prototype = acc.to_hypervector();
/// assert!(cosine(&prototype, &a) > 0.3);
/// // Retracting `b` leaves (exactly) `a`.
/// acc.subtract(&b)?;
/// assert_eq!(acc.to_hypervector(), a);
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleAccumulator {
    counters: Vec<i32>,
    members: usize,
}

impl BundleAccumulator {
    /// Creates an empty accumulator of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        Self { counters: vec![0; d], members: 0 }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.counters.len()
    }

    /// Number of hypervectors currently bundled (adds minus subtracts).
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    pub fn add(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        self.apply(hv, 1)?;
        self.members += 1;
        Ok(())
    }

    /// Retracts a previously added hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] on dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn subtract(&mut self, hv: &Hypervector) -> Result<(), DimensionMismatchError> {
        assert!(self.members > 0, "cannot retract from an empty bundle");
        self.apply(hv, -1)?;
        self.members -= 1;
        Ok(())
    }

    fn apply(&mut self, hv: &Hypervector, sign: i32) -> Result<(), DimensionMismatchError> {
        if hv.dimension() != self.counters.len() {
            return Err(DimensionMismatchError {
                left: self.counters.len(),
                right: hv.dimension(),
            });
        }
        // Bipolar: bit 1 counts +1, bit 0 counts −1. Unpack whole storage
        // words instead of calling the bounds-checked per-bit accessor.
        for (word_index, &word) in hv.as_words().iter().enumerate() {
            let chunk = &mut self.counters[word_index * 64..];
            for (bit, counter) in chunk.iter_mut().take(64).enumerate() {
                *counter += if (word >> bit) & 1 == 1 { sign } else { -sign };
            }
        }
        Ok(())
    }

    /// Thresholds the counters into a hypervector. Positive counters give
    /// 1, negative give 0; exact zeros resolve to the dimension-index
    /// parity (a fixed, unbiased tie-break pattern).
    #[must_use]
    pub fn to_hypervector(&self) -> Hypervector {
        let mut out = Hypervector::zeros(self.counters.len());
        for (i, &c) in self.counters.iter().enumerate() {
            let bit = match c.cmp(&0) {
                core::cmp::Ordering::Greater => true,
                core::cmp::Ordering::Less => false,
                core::cmp::Ordering::Equal => i % 2 == 0,
            };
            out.set_bit(i, bit);
        }
        out
    }

    /// Raw counter access (for diagnostics and tests).
    #[must_use]
    pub fn counters(&self) -> &[i32] {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::similarity::cosine;

    #[test]
    fn single_member_roundtrips() {
        let mut rng = Rng::new(1);
        let a = Hypervector::random(1000, &mut rng);
        let mut acc = BundleAccumulator::new(1000);
        acc.add(&a).expect("dims");
        assert_eq!(acc.to_hypervector(), a);
        assert_eq!(acc.members(), 1);
    }

    #[test]
    fn odd_bundle_matches_majority() {
        let mut rng = Rng::new(2);
        let inputs: Vec<Hypervector> =
            (0..5).map(|_| Hypervector::random(2048, &mut rng)).collect();
        let mut acc = BundleAccumulator::new(2048);
        for hv in &inputs {
            acc.add(hv).expect("dims");
        }
        let refs: Vec<&Hypervector> = inputs.iter().collect();
        let majority = crate::ops::bundle(&refs, &mut rng).expect("dims");
        // Odd member count: no ties, both constructions agree exactly.
        assert_eq!(acc.to_hypervector(), majority);
    }

    #[test]
    fn add_then_subtract_is_identity() {
        let mut rng = Rng::new(3);
        let keep: Vec<Hypervector> =
            (0..3).map(|_| Hypervector::random(512, &mut rng)).collect();
        let churn: Vec<Hypervector> =
            (0..4).map(|_| Hypervector::random(512, &mut rng)).collect();
        let mut acc = BundleAccumulator::new(512);
        for hv in &keep {
            acc.add(hv).expect("dims");
        }
        let baseline = acc.clone();
        for hv in &churn {
            acc.add(hv).expect("dims");
        }
        for hv in &churn {
            acc.subtract(hv).expect("dims");
        }
        assert_eq!(acc, baseline);
    }

    #[test]
    fn prototype_tracks_dominant_class() {
        let mut rng = Rng::new(4);
        let center = Hypervector::random(8192, &mut rng);
        let mut acc = BundleAccumulator::new(8192);
        // Ten noisy variants of the same center.
        for i in 0..10 {
            let mut variant = center.clone();
            let mut vrng = Rng::new(100 + i);
            variant.flip_bits(vrng.distinct_indices(800, 8192));
            acc.add(&variant).expect("dims");
        }
        let prototype = acc.to_hypervector();
        assert!(cosine(&prototype, &center) > 0.7, "prototype drifted");
    }

    #[test]
    fn dimension_mismatch_errors() {
        let mut acc = BundleAccumulator::new(64);
        let wrong = Hypervector::zeros(65);
        assert!(acc.add(&wrong).is_err());
        assert_eq!(acc.members(), 0);
    }

    #[test]
    #[should_panic(expected = "empty bundle")]
    fn retract_from_empty_panics() {
        let mut acc = BundleAccumulator::new(64);
        let hv = Hypervector::zeros(64);
        let _ = acc.subtract(&hv);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_panics() {
        let _ = BundleAccumulator::new(0);
    }

    #[test]
    fn empty_accumulator_thresholds_to_parity() {
        let acc = BundleAccumulator::new(8);
        let hv = acc.to_hypervector();
        for i in 0..8 {
            assert_eq!(hv.bit(i), i % 2 == 0);
        }
        assert_eq!(acc.counters().len(), 8);
    }
}
