//! Associative memory: HDC *inference* (Eq. 2 of the paper).
//!
//! An associative memory stores `(key, hypervector)` entries and answers
//! nearest-neighbour queries: given a probe hypervector, return the stored
//! key whose hypervector maximizes the similarity metric. This is the
//! operation Schmuck et al. show can be executed in a single clock cycle on
//! HDC accelerator hardware; on a CPU we provide two paths:
//!
//! * [`SearchStrategy::Serial`] — one thread scanning all entries;
//! * [`SearchStrategy::Parallel`] — the paper's *GPU substitute*:
//!   `crossbeam` scoped threads scanning disjoint shards of the memory
//!   (documented in DESIGN.md as the substitution for the TITAN Xp).
//!
//! Both paths run on the [`BatchLookup`] engine: member hypervectors live
//! in one contiguous row-major word matrix (no per-entry pointer chase),
//! scans work on integer Hamming distances with best-so-far abandonment
//! ([`Hypervector::hamming_distance_within`]), and the float similarity is
//! computed once, for the winner. The parallel path reuses a precomputed
//! shard plan — rebuilt when membership changes, not re-derived per query.
//! Both metrics are monotone decreasing in Hamming distance, so the
//! distance argmin *is* the similarity argmax, ties (earliest insert)
//! included.

use crate::batch::{BatchLookup, EngineOptions, Hit};
use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::similarity::SimilarityMetric;

/// How nearest-neighbour queries scan the memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SearchStrategy {
    /// Single-threaded scan.
    #[default]
    Serial,
    /// Multi-threaded scan over `threads` shards (the GPU substitute).
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        threads: usize,
    },
}

/// A single stored match returned by a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match<K> {
    /// The stored key.
    pub key: K,
    /// The similarity score under the memory's metric.
    pub similarity: f64,
}

/// An associative memory over keys of type `K`.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{AssociativeMemory, Hypervector, Rng};
///
/// let mut rng = Rng::new(11);
/// let mut memory = AssociativeMemory::new(10_000);
/// let a = Hypervector::random(10_000, &mut rng);
/// let b = Hypervector::random(10_000, &mut rng);
/// memory.insert("a", a.clone())?;
/// memory.insert("b", b)?;
/// let hit = memory.nearest(&a).expect("non-empty memory");
/// assert_eq!(hit.key, "a");
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AssociativeMemory<K> {
    dimension: usize,
    metric: SimilarityMetric,
    strategy: SearchStrategy,
    /// Keyed entries in insertion order — the API surface (iteration,
    /// noise injection, clone-out of stored vectors).
    entries: Vec<(K, Hypervector)>,
    /// The scan structure: the same hypervectors, flattened into one
    /// row-major word matrix (row `i` ↔ `entries[i]`), kept in sync by
    /// every mutation.
    engine: BatchLookup,
    /// Precomputed `[start, end)` row ranges for the parallel path,
    /// rebuilt on membership or strategy change.
    shard_plan: Vec<(usize, usize)>,
}

impl<K: Clone + Send + Sync> AssociativeMemory<K> {
    /// Creates an empty memory for hypervectors of dimension `d` using the
    /// default metric (inverse Hamming) and serial search.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        Self::with_engine_options(d, EngineOptions::default())
    }

    /// Creates an empty memory whose scan engine uses explicit
    /// [`EngineOptions`] (matrix layout / row block); unset fields are
    /// autotuned exactly as in [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `options.row_block == Some(0)`.
    #[must_use]
    pub fn with_engine_options(d: usize, options: EngineOptions) -> Self {
        assert!(d > 0, "dimension must be positive");
        Self {
            dimension: d,
            metric: SimilarityMetric::default(),
            strategy: SearchStrategy::default(),
            entries: Vec::new(),
            engine: BatchLookup::with_options(d, options),
            shard_plan: Vec::new(),
        }
    }

    /// The resolved scan-engine layout options (post-autotune).
    #[must_use]
    pub fn engine_options(&self) -> EngineOptions {
        EngineOptions::default()
            .with_layout(self.engine.layout())
            .with_row_block(self.engine.row_block())
    }

    /// Sets the similarity metric (builder style).
    #[must_use]
    pub fn with_metric(mut self, metric: SimilarityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the search strategy (builder style).
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self.rebuild_shard_plan();
        self
    }

    /// The hypervector dimension this memory accepts.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The similarity metric used by queries.
    #[must_use]
    pub fn metric(&self) -> SimilarityMetric {
        self.metric
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores an entry.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the hypervector dimension does
    /// not match the memory.
    pub fn insert(&mut self, key: K, hv: Hypervector) -> Result<(), DimensionMismatchError> {
        self.engine.push(&hv)?;
        self.entries.push((key, hv));
        self.rebuild_shard_plan();
        Ok(())
    }

    /// Removes all entries whose key satisfies the predicate; returns how
    /// many were removed.
    ///
    /// The scan matrix is compacted without reallocating
    /// ([`BatchLookup::retain_rows`]: an in-place forward copy pass, or an
    /// arena swap under the interleaved layout) — removing one server from
    /// a large memory never re-reads every stored hypervector.
    pub fn remove_where<F: FnMut(&K) -> bool>(&mut self, mut predicate: F) -> usize {
        // Evaluate the predicate once per entry, in row order, so the
        // entry list and the matrix stay row-for-row in sync.
        let keep: Vec<bool> = self.entries.iter().map(|(k, _)| !predicate(k)).collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed > 0 {
            let mut index = 0;
            self.entries.retain(|_| {
                let kept = keep[index];
                index += 1;
                kept
            });
            self.engine.retain_rows(|row| keep[row]);
            self.rebuild_shard_plan();
        }
        removed
    }

    /// Iterates over the stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &Hypervector)> {
        self.entries.iter().map(|(k, hv)| (k, hv))
    }

    /// Flips one bit of entry `index` (fault injection), keeping the scan
    /// matrix in sync with the stored hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `bit` is out of range.
    pub(crate) fn flip_entry_bit(&mut self, index: usize, bit: usize) {
        self.entries[index].1.flip_bit(bit);
        self.engine.flip_bit(index, bit);
    }

    /// Returns the entry whose hypervector is most similar to `probe`
    /// (Eq. 2: `argmax_s δ(Enc(s), Enc(r))`), or `None` if empty.
    ///
    /// Ties are broken toward the earliest-inserted entry, making the
    /// operation deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn nearest(&self, probe: &Hypervector) -> Option<Match<K>> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        let hit = match self.strategy {
            SearchStrategy::Serial => self.engine.nearest_one(probe),
            SearchStrategy::Parallel { .. } => self.nearest_parallel(probe),
        }?;
        Some(self.hit_to_match(hit))
    }

    /// Resolves a whole probe batch with the cache-blocked multi-probe
    /// kernel; result `i` matches `nearest(probes[i])` exactly.
    ///
    /// Under [`SearchStrategy::Parallel`] the *probes* are sharded across
    /// the worker threads (each worker runs the blocked scan over the full
    /// matrix), which preserves per-probe determinism.
    ///
    /// # Panics
    ///
    /// Panics if any probe has the wrong dimension.
    #[must_use]
    pub fn nearest_batch(&self, probes: &[&Hypervector]) -> Vec<Option<Match<K>>> {
        let mut hits = Vec::new();
        match self.strategy {
            SearchStrategy::Serial => self.engine.nearest_batch_into(probes, &mut hits),
            SearchStrategy::Parallel { threads } => {
                let threads = threads.max(1).min(probes.len().max(1));
                let shard = probes.len().div_ceil(threads);
                if probes.len() <= shard {
                    self.engine.nearest_batch_into(probes, &mut hits);
                } else {
                    let mut shards: Vec<Vec<Option<Hit>>> =
                        vec![Vec::new(); probes.len().div_ceil(shard)];
                    crossbeam::thread::scope(|scope| {
                        for (chunk, slot) in probes.chunks(shard).zip(shards.iter_mut()) {
                            let engine = &self.engine;
                            scope.spawn(move |_| {
                                engine.nearest_batch_into(chunk, slot);
                            });
                        }
                    })
                    .expect("similarity workers do not panic");
                    hits = shards.into_iter().flatten().collect();
                }
            }
        }
        hits.into_iter().map(|h| h.map(|hit| self.hit_to_match(hit))).collect()
    }

    /// Returns the `k` most similar entries, best first.
    ///
    /// Uses partial selection (`select_nth_unstable`) rather than sorting
    /// the full scored vector, preserving the deterministic earliest-insert
    /// tie-break.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn nearest_k(&self, probe: &Hypervector, k: usize) -> Vec<Match<K>> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        if k == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        // Integer distances; (distance, insert index) orders exactly like
        // (−similarity, insert index) because both metrics are strictly
        // decreasing in distance. One fused-kernel pass scores every row.
        let mut dists = Vec::new();
        self.engine.distances_into(probe, &mut dists);
        let mut scored: Vec<(usize, usize)> =
            dists.iter().enumerate().map(|(i, &d)| (d as usize, i)).collect();
        let k = k.min(scored.len());
        if k < scored.len() {
            scored.select_nth_unstable(k - 1);
            scored.truncate(k);
        }
        scored.sort_unstable();
        scored
            .into_iter()
            .map(|(dist, i)| Match {
                key: self.entries[i].0.clone(),
                similarity: self.metric.score_from_distance(dist, self.dimension),
            })
            .collect()
    }

    /// The quantized arg-max of `hdhash-core`'s partitioned codebook:
    /// distances are rounded to the grid `quantum` (`q = ⌊(dist + c/2)/c⌋`)
    /// and the minimum is taken over `(q, order(key))` — a deterministic,
    /// membership-order-independent tie-break.
    ///
    /// Early exit: once a best `q` is known, any candidate whose partial
    /// distance already exceeds the largest distance mapping to `q` is
    /// abandoned mid-scan.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension or `quantum == 0`.
    #[must_use]
    pub fn nearest_quantized_by<O, F>(
        &self,
        probe: &Hypervector,
        quantum: usize,
        order: F,
    ) -> Option<K>
    where
        O: Ord + Send,
        F: Fn(&K) -> O + Sync,
    {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        assert!(quantum > 0, "quantum must be positive");
        if self.entries.is_empty() {
            return None;
        }
        match self.strategy {
            SearchStrategy::Serial => self
                .quantized_in_range(probe, quantum, &order, 0, self.entries.len())
                .map(|(_, _, row)| self.entries[row].0.clone()),
            SearchStrategy::Parallel { .. } => {
                let mut results: Vec<Option<(usize, O, usize)>> =
                    (0..self.shard_plan.len()).map(|_| None).collect();
                crossbeam::thread::scope(|scope| {
                    for (&(start, end), slot) in
                        self.shard_plan.iter().zip(results.iter_mut())
                    {
                        let order = &order;
                        let this = &*self;
                        scope.spawn(move |_| {
                            *slot = this.quantized_in_range(probe, quantum, order, start, end);
                        });
                    }
                })
                .expect("similarity workers do not panic");
                results
                    .into_iter()
                    .flatten()
                    .min_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)))
                    .map(|(_, _, row)| self.entries[row].0.clone())
            }
        }
    }

    /// Batched form of [`nearest_quantized_by`](Self::nearest_quantized_by):
    /// result `i` matches the single-probe call for `probes[i]` exactly.
    ///
    /// Under [`SearchStrategy::Parallel`] the *probes* are sharded across
    /// one thread scope (each worker scanning the full matrix serially per
    /// probe) — batch callers like `hdhash-core`'s slot-deduplicated
    /// `lookup_batch` get one scope per batch instead of one per probe.
    ///
    /// # Panics
    ///
    /// Panics if any probe has the wrong dimension or `quantum == 0`.
    #[must_use]
    pub fn nearest_quantized_batch_by<O, F>(
        &self,
        probes: &[&Hypervector],
        quantum: usize,
        order: F,
    ) -> Vec<Option<K>>
    where
        O: Ord + Send,
        F: Fn(&K) -> O + Sync,
    {
        for probe in probes {
            assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        }
        assert!(quantum > 0, "quantum must be positive");
        if self.entries.is_empty() {
            return probes.iter().map(|_| None).collect();
        }
        let resolve = |probe: &Hypervector| {
            self.quantized_in_range(probe, quantum, &order, 0, self.entries.len())
                .map(|(_, _, row)| self.entries[row].0.clone())
        };
        match self.strategy {
            SearchStrategy::Serial => probes.iter().map(|p| resolve(p)).collect(),
            SearchStrategy::Parallel { threads } => {
                let threads = threads.max(1).min(probes.len().max(1));
                let shard = probes.len().div_ceil(threads);
                if probes.len() <= shard {
                    return probes.iter().map(|p| resolve(p)).collect();
                }
                let mut shards: Vec<Vec<Option<K>>> =
                    vec![Vec::new(); probes.len().div_ceil(shard)];
                crossbeam::thread::scope(|scope| {
                    for (chunk, slot) in probes.chunks(shard).zip(shards.iter_mut()) {
                        let resolve = &resolve;
                        scope.spawn(move |_| {
                            *slot = chunk.iter().map(|p| resolve(p)).collect();
                        });
                    }
                })
                .expect("similarity workers do not panic");
                shards.into_iter().flatten().collect()
            }
        }
    }

    /// Quantized scan over one row range; returns `(q, order(key), row)`.
    ///
    /// Rides [`BatchLookup::nearest_quantized_by`] — the adaptive
    /// incremental-prefix schedule with the quantum-aware pruning bound —
    /// so the Partition-strategy path shares the plain argmin's scan
    /// machinery and calibrator instead of always sweeping straight.
    fn quantized_in_range<O: Ord, F: Fn(&K) -> O>(
        &self,
        probe: &Hypervector,
        quantum: usize,
        order: &F,
        start: usize,
        end: usize,
    ) -> Option<(usize, O, usize)> {
        self.engine.nearest_quantized_by(probe, quantum, start, end, |row| {
            order(&self.entries[row].0)
        })
    }

    fn hit_to_match(&self, hit: Hit) -> Match<K> {
        Match {
            key: self.entries[hit.row].0.clone(),
            similarity: self.metric.score_from_distance(hit.distance, self.dimension),
        }
    }

    /// Parallel single-probe scan over the precomputed shard plan: each
    /// worker prunes within its shard; the global winner is the
    /// `(distance, row)` minimum of the shard winners — identical to the
    /// serial result, tie-break included.
    fn nearest_parallel(&self, probe: &Hypervector) -> Option<Hit> {
        if self.entries.is_empty() {
            return None;
        }
        if self.shard_plan.len() == 1 {
            return self.engine.nearest_one(probe);
        }
        let mut results: Vec<Option<Hit>> = vec![None; self.shard_plan.len()];
        crossbeam::thread::scope(|scope| {
            for (&(start, end), slot) in self.shard_plan.iter().zip(results.iter_mut()) {
                let engine = &self.engine;
                scope.spawn(move |_| {
                    *slot = engine.nearest_in_range(probe, start, end, engine.dimension());
                });
            }
        })
        .expect("similarity workers do not panic");
        results.into_iter().flatten().min_by_key(|h| (h.distance, h.row))
    }

    /// Rebuilds the `[start, end)` shard ranges for the current strategy
    /// and membership (the plan the parallel path reuses on every query).
    fn rebuild_shard_plan(&mut self) {
        self.shard_plan.clear();
        let threads = match self.strategy {
            SearchStrategy::Serial => 1,
            SearchStrategy::Parallel { threads } => threads.max(1),
        };
        let n = self.entries.len();
        if n == 0 {
            return;
        }
        let shard = n.div_ceil(threads);
        let mut start = 0;
        while start < n {
            let end = (start + shard).min(n);
            self.shard_plan.push((start, end));
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn filled_memory(n: usize, d: usize, seed: u64) -> (AssociativeMemory<usize>, Vec<Hypervector>) {
        let mut rng = Rng::new(seed);
        let mut mem = AssociativeMemory::new(d);
        let mut hvs = Vec::new();
        for i in 0..n {
            let hv = Hypervector::random(d, &mut rng);
            mem.insert(i, hv.clone()).expect("dims");
            hvs.push(hv);
        }
        (mem, hvs)
    }

    #[test]
    fn exact_probe_finds_itself() {
        let (mem, hvs) = filled_memory(50, 4096, 90);
        for (i, hv) in hvs.iter().enumerate() {
            assert_eq!(mem.nearest(hv).expect("non-empty").key, i);
        }
    }

    #[test]
    fn noisy_probe_still_finds_owner() {
        let (mem, hvs) = filled_memory(50, 10_000, 91);
        let mut rng = Rng::new(1234);
        // Even 2000 of 10000 bits flipped leaves the owner the clear winner.
        for (i, hv) in hvs.iter().enumerate().take(10) {
            let mut noisy = hv.clone();
            noisy.flip_bits(rng.distinct_indices(2000, 10_000));
            assert_eq!(mem.nearest(&noisy).expect("non-empty").key, i);
        }
    }

    #[test]
    fn empty_memory_returns_none() {
        let mem: AssociativeMemory<u32> = AssociativeMemory::new(64);
        let probe = Hypervector::zeros(64);
        assert!(mem.nearest(&probe).is_none());
        assert!(mem.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let (mem, _) = filled_memory(101, 2048, 92);
        let mut rng = Rng::new(5);
        for threads in [1usize, 2, 3, 8, 200] {
            let par = mem.clone().with_strategy(SearchStrategy::Parallel { threads });
            for _ in 0..20 {
                let probe = Hypervector::random(2048, &mut rng);
                let a = mem.nearest(&probe).expect("non-empty");
                let b = par.nearest(&probe).expect("non-empty");
                assert_eq!(a.key, b.key, "threads={threads}");
                assert!((a.similarity - b.similarity).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batch_matches_single_probe_over_strategies() {
        let (mem, _) = filled_memory(60, 1024, 96);
        let mut rng = Rng::new(55);
        let probes: Vec<Hypervector> =
            (0..33).map(|_| Hypervector::random(1024, &mut rng)).collect();
        let refs: Vec<&Hypervector> = probes.iter().collect();
        for threads in [1usize, 3, 7] {
            let par = mem.clone().with_strategy(SearchStrategy::Parallel { threads });
            for m in [&mem, &par] {
                let batch = m.nearest_batch(&refs);
                assert_eq!(batch.len(), probes.len());
                for (probe, got) in probes.iter().zip(&batch) {
                    let single = m.nearest(probe).expect("non-empty");
                    let got = got.as_ref().expect("non-empty");
                    assert_eq!(got.key, single.key);
                    assert!((got.similarity - single.similarity).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn tie_break_is_first_inserted() {
        let mut mem = AssociativeMemory::new(128);
        let hv = Hypervector::ones(128);
        mem.insert("first", hv.clone()).expect("dims");
        mem.insert("second", hv.clone()).expect("dims");
        assert_eq!(mem.nearest(&hv).expect("non-empty").key, "first");
        let par = mem.clone().with_strategy(SearchStrategy::Parallel { threads: 2 });
        assert_eq!(par.nearest(&hv).expect("non-empty").key, "first");
    }

    #[test]
    fn nearest_k_orders_by_similarity() {
        let mut rng = Rng::new(93);
        let mut mem = AssociativeMemory::new(10_000);
        let base = Hypervector::random(10_000, &mut rng);
        for flips in [100usize, 400, 800, 1600] {
            let mut hv = base.clone();
            hv.flip_bits(rng.distinct_indices(flips, 10_000));
            mem.insert(flips, hv).expect("dims");
        }
        let top = mem.nearest_k(&base, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].key, 100);
        assert_eq!(top[1].key, 400);
        assert_eq!(top[2].key, 800);
        assert!(top[0].similarity > top[1].similarity);
    }

    #[test]
    fn nearest_k_handles_edge_sizes_and_ties() {
        let (mem, hvs) = filled_memory(10, 512, 97);
        assert!(mem.nearest_k(&hvs[0], 0).is_empty());
        // k beyond the population returns everything, best first.
        let all = mem.nearest_k(&hvs[3], 100);
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].key, 3);
        for pair in all.windows(2) {
            assert!(pair[0].similarity >= pair[1].similarity);
        }
        // Exact duplicates tie-break toward the earliest insert.
        let mut mem = AssociativeMemory::new(64);
        let hv = Hypervector::ones(64);
        for i in 0..5usize {
            mem.insert(i, hv.clone()).expect("dims");
        }
        let top = mem.nearest_k(&hv, 3);
        assert_eq!(
            top.iter().map(|m| m.key).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "duplicate scores must order by insertion"
        );
    }

    #[test]
    fn quantized_argmax_matches_exhaustive() {
        let (mem, _) = filled_memory(40, 4096, 98);
        let mut rng = Rng::new(41);
        for threads in [0usize, 1, 4] {
            let m = if threads == 0 {
                mem.clone()
            } else {
                mem.clone().with_strategy(SearchStrategy::Parallel { threads })
            };
            for quantum in [32usize, 64] {
                for _ in 0..10 {
                    let probe = Hypervector::random(4096, &mut rng);
                    let got = m
                        .nearest_quantized_by(&probe, quantum, |&k| k)
                        .expect("non-empty");
                    let want = m
                        .iter()
                        .map(|(&k, hv)| {
                            ((probe.hamming_distance(hv) + quantum / 2) / quantum, k)
                        })
                        .min()
                        .map(|(_, k)| k)
                        .expect("non-empty");
                    assert_eq!(got, want, "threads={threads} quantum={quantum}");
                }
            }
        }
    }

    #[test]
    fn quantized_batch_matches_single_probe() {
        let (mem, _) = filled_memory(30, 2048, 101);
        let mut rng = Rng::new(11);
        let probes: Vec<Hypervector> =
            (0..17).map(|_| Hypervector::random(2048, &mut rng)).collect();
        let refs: Vec<&Hypervector> = probes.iter().collect();
        for threads in [0usize, 2, 5] {
            let m = if threads == 0 {
                mem.clone()
            } else {
                mem.clone().with_strategy(SearchStrategy::Parallel { threads })
            };
            let batch = m.nearest_quantized_batch_by(&refs, 32, |&k| k);
            assert_eq!(batch.len(), probes.len());
            for (probe, got) in probes.iter().zip(batch) {
                assert_eq!(
                    got,
                    m.nearest_quantized_by(probe, 32, |&k| k),
                    "threads={threads}"
                );
            }
        }
        let empty: AssociativeMemory<usize> = AssociativeMemory::new(2048);
        assert_eq!(empty.nearest_quantized_batch_by(&refs, 32, |&k| k), vec![None; 17]);
    }

    #[test]
    fn insert_wrong_dimension_errors() {
        let mut mem = AssociativeMemory::new(100);
        let hv = Hypervector::zeros(101);
        assert!(mem.insert(0usize, hv).is_err());
    }

    #[test]
    fn remove_where_removes() {
        let (mut mem, hvs) = filled_memory(10, 256, 94);
        let removed = mem.remove_where(|&k| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(mem.len(), 5);
        assert!(mem.iter().all(|(k, _)| k % 2 == 1));
        // The scan matrix compacted in step with the entries.
        assert_eq!(mem.nearest(&hvs[3]).expect("non-empty").key, 3);
        assert_eq!(mem.nearest(&hvs[9]).expect("non-empty").key, 9);
    }

    #[test]
    #[should_panic(expected = "probe dimension mismatch")]
    fn probe_dimension_mismatch_panics() {
        let (mem, _) = filled_memory(3, 128, 95);
        let probe = Hypervector::zeros(64);
        let _ = mem.nearest(&probe);
    }

    #[test]
    fn metric_builder_roundtrip() {
        let mem: AssociativeMemory<u8> =
            AssociativeMemory::new(64).with_metric(SimilarityMetric::Cosine);
        assert_eq!(mem.metric(), SimilarityMetric::Cosine);
        assert_eq!(mem.dimension(), 64);
    }

    #[test]
    fn similarity_scores_match_metric_evaluate() {
        let (mem, _) = filled_memory(20, 1000, 99);
        let cos = mem.clone().with_metric(SimilarityMetric::Cosine);
        let mut rng = Rng::new(7);
        for _ in 0..10 {
            let probe = Hypervector::random(1000, &mut rng);
            for m in [&mem, &cos] {
                let hit = m.nearest(&probe).expect("non-empty");
                let stored = m
                    .iter()
                    .find(|(&k, _)| k == hit.key)
                    .map(|(_, hv)| hv)
                    .expect("winner stored");
                assert_eq!(hit.similarity, m.metric().evaluate(&probe, stored));
            }
        }
    }
}
