//! Associative memory: HDC *inference* (Eq. 2 of the paper).
//!
//! An associative memory stores `(key, hypervector)` entries and answers
//! nearest-neighbour queries: given a probe hypervector, return the stored
//! key whose hypervector maximizes the similarity metric. This is the
//! operation Schmuck et al. show can be executed in a single clock cycle on
//! HDC accelerator hardware; on a CPU we provide two paths:
//!
//! * [`SearchStrategy::Serial`] — one thread scanning all entries with
//!   64-way word-parallel XOR + popcount;
//! * [`SearchStrategy::Parallel`] — the paper's *GPU substitute*:
//!   `crossbeam` scoped threads scanning disjoint shards of the memory
//!   (documented in DESIGN.md as the substitution for the TITAN Xp).

use crate::hypervector::{DimensionMismatchError, Hypervector};
use crate::similarity::SimilarityMetric;

/// How nearest-neighbour queries scan the memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SearchStrategy {
    /// Single-threaded scan.
    #[default]
    Serial,
    /// Multi-threaded scan over `threads` shards (the GPU substitute).
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        threads: usize,
    },
}

/// A single stored match returned by a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match<K> {
    /// The stored key.
    pub key: K,
    /// The similarity score under the memory's metric.
    pub similarity: f64,
}

/// An associative memory over keys of type `K`.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{AssociativeMemory, Hypervector, Rng};
///
/// let mut rng = Rng::new(11);
/// let mut memory = AssociativeMemory::new(10_000);
/// let a = Hypervector::random(10_000, &mut rng);
/// let b = Hypervector::random(10_000, &mut rng);
/// memory.insert("a", a.clone())?;
/// memory.insert("b", b)?;
/// let hit = memory.nearest(&a).expect("non-empty memory");
/// assert_eq!(hit.key, "a");
/// # Ok::<(), hdhash_hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AssociativeMemory<K> {
    dimension: usize,
    metric: SimilarityMetric,
    strategy: SearchStrategy,
    entries: Vec<(K, Hypervector)>,
}

impl<K: Clone + Send + Sync> AssociativeMemory<K> {
    /// Creates an empty memory for hypervectors of dimension `d` using the
    /// default metric (inverse Hamming) and serial search.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        Self {
            dimension: d,
            metric: SimilarityMetric::default(),
            strategy: SearchStrategy::default(),
            entries: Vec::new(),
        }
    }

    /// Sets the similarity metric (builder style).
    #[must_use]
    pub fn with_metric(mut self, metric: SimilarityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the search strategy (builder style).
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The hypervector dimension this memory accepts.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The similarity metric used by queries.
    #[must_use]
    pub fn metric(&self) -> SimilarityMetric {
        self.metric
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores an entry.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the hypervector dimension does
    /// not match the memory.
    pub fn insert(&mut self, key: K, hv: Hypervector) -> Result<(), DimensionMismatchError> {
        if hv.dimension() != self.dimension {
            return Err(DimensionMismatchError { left: self.dimension, right: hv.dimension() });
        }
        self.entries.push((key, hv));
        Ok(())
    }

    /// Removes all entries whose key satisfies the predicate; returns how
    /// many were removed.
    pub fn remove_where<F: FnMut(&K) -> bool>(&mut self, mut predicate: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(k, _)| !predicate(k));
        before - self.entries.len()
    }

    /// Iterates over the stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &Hypervector)> {
        self.entries.iter().map(|(k, hv)| (k, hv))
    }

    /// Mutable access to a stored hypervector by position (used by fault
    /// injection, which corrupts stored memory words).
    pub(crate) fn entry_mut(&mut self, index: usize) -> Option<&mut Hypervector> {
        self.entries.get_mut(index).map(|(_, hv)| hv)
    }

    /// Returns the entry whose hypervector is most similar to `probe`
    /// (Eq. 2: `argmax_s δ(Enc(s), Enc(r))`), or `None` if empty.
    ///
    /// Ties are broken toward the earliest-inserted entry, making the
    /// operation deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn nearest(&self, probe: &Hypervector) -> Option<Match<K>> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        match self.strategy {
            SearchStrategy::Serial => self.nearest_in(&self.entries, probe),
            SearchStrategy::Parallel { threads } => self.nearest_parallel(probe, threads.max(1)),
        }
    }

    /// Returns the `k` most similar entries, best first.
    ///
    /// # Panics
    ///
    /// Panics if `probe` has the wrong dimension.
    #[must_use]
    pub fn nearest_k(&self, probe: &Hypervector, k: usize) -> Vec<Match<K>> {
        assert_eq!(probe.dimension(), self.dimension, "probe dimension mismatch");
        let mut scored: Vec<(usize, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (_, hv))| (i, self.metric.evaluate(probe, hv)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| Match { key: self.entries[i].0.clone(), similarity: s })
            .collect()
    }

    fn nearest_in(&self, entries: &[(K, Hypervector)], probe: &Hypervector) -> Option<Match<K>> {
        let mut best: Option<(usize, f64)> = None;
        for (i, (_, hv)) in entries.iter().enumerate() {
            let s = self.metric.evaluate(probe, hv);
            match best {
                Some((_, bs)) if bs >= s => {}
                _ => best = Some((i, s)),
            }
        }
        best.map(|(i, s)| Match { key: entries[i].0.clone(), similarity: s })
    }

    fn nearest_parallel(&self, probe: &Hypervector, threads: usize) -> Option<Match<K>> {
        if self.entries.is_empty() {
            return None;
        }
        let shard = self.entries.len().div_ceil(threads);
        let mut results: Vec<Option<(usize, f64)>> = vec![None; threads];
        crossbeam::thread::scope(|scope| {
            for (t, (chunk, slot)) in
                self.entries.chunks(shard).zip(results.iter_mut()).enumerate()
            {
                let metric = self.metric;
                scope.spawn(move |_| {
                    let mut best: Option<(usize, f64)> = None;
                    for (i, (_, hv)) in chunk.iter().enumerate() {
                        let s = metric.evaluate(probe, hv);
                        match best {
                            Some((_, bs)) if bs >= s => {}
                            _ => best = Some((t * shard + i, s)),
                        }
                    }
                    *slot = best;
                });
            }
        })
        .expect("similarity workers do not panic");

        let best = results
            .into_iter()
            .flatten()
            // Global tie-break toward the lowest index, matching Serial.
            .min_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)))?;
        Some(Match { key: self.entries[best.0].0.clone(), similarity: best.1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn filled_memory(n: usize, d: usize, seed: u64) -> (AssociativeMemory<usize>, Vec<Hypervector>) {
        let mut rng = Rng::new(seed);
        let mut mem = AssociativeMemory::new(d);
        let mut hvs = Vec::new();
        for i in 0..n {
            let hv = Hypervector::random(d, &mut rng);
            mem.insert(i, hv.clone()).expect("dims");
            hvs.push(hv);
        }
        (mem, hvs)
    }

    #[test]
    fn exact_probe_finds_itself() {
        let (mem, hvs) = filled_memory(50, 4096, 90);
        for (i, hv) in hvs.iter().enumerate() {
            assert_eq!(mem.nearest(hv).expect("non-empty").key, i);
        }
    }

    #[test]
    fn noisy_probe_still_finds_owner() {
        let (mem, hvs) = filled_memory(50, 10_000, 91);
        let mut rng = Rng::new(1234);
        // Even 2000 of 10000 bits flipped leaves the owner the clear winner.
        for (i, hv) in hvs.iter().enumerate().take(10) {
            let mut noisy = hv.clone();
            noisy.flip_bits(rng.distinct_indices(2000, 10_000));
            assert_eq!(mem.nearest(&noisy).expect("non-empty").key, i);
        }
    }

    #[test]
    fn empty_memory_returns_none() {
        let mem: AssociativeMemory<u32> = AssociativeMemory::new(64);
        let probe = Hypervector::zeros(64);
        assert!(mem.nearest(&probe).is_none());
        assert!(mem.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let (mem, _) = filled_memory(101, 2048, 92);
        let mut rng = Rng::new(5);
        for threads in [1usize, 2, 3, 8, 200] {
            let par = mem.clone().with_strategy(SearchStrategy::Parallel { threads });
            for _ in 0..20 {
                let probe = Hypervector::random(2048, &mut rng);
                let a = mem.nearest(&probe).expect("non-empty");
                let b = par.nearest(&probe).expect("non-empty");
                assert_eq!(a.key, b.key, "threads={threads}");
                assert!((a.similarity - b.similarity).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tie_break_is_first_inserted() {
        let mut mem = AssociativeMemory::new(128);
        let hv = Hypervector::ones(128);
        mem.insert("first", hv.clone()).expect("dims");
        mem.insert("second", hv.clone()).expect("dims");
        assert_eq!(mem.nearest(&hv).expect("non-empty").key, "first");
        let par = mem.clone().with_strategy(SearchStrategy::Parallel { threads: 2 });
        assert_eq!(par.nearest(&hv).expect("non-empty").key, "first");
    }

    #[test]
    fn nearest_k_orders_by_similarity() {
        let mut rng = Rng::new(93);
        let mut mem = AssociativeMemory::new(10_000);
        let base = Hypervector::random(10_000, &mut rng);
        for flips in [100usize, 400, 800, 1600] {
            let mut hv = base.clone();
            hv.flip_bits(rng.distinct_indices(flips, 10_000));
            mem.insert(flips, hv).expect("dims");
        }
        let top = mem.nearest_k(&base, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].key, 100);
        assert_eq!(top[1].key, 400);
        assert_eq!(top[2].key, 800);
        assert!(top[0].similarity > top[1].similarity);
    }

    #[test]
    fn insert_wrong_dimension_errors() {
        let mut mem = AssociativeMemory::new(100);
        let hv = Hypervector::zeros(101);
        assert!(mem.insert(0usize, hv).is_err());
    }

    #[test]
    fn remove_where_removes() {
        let (mut mem, _) = filled_memory(10, 256, 94);
        let removed = mem.remove_where(|&k| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(mem.len(), 5);
        assert!(mem.iter().all(|(k, _)| k % 2 == 1));
    }

    #[test]
    #[should_panic(expected = "probe dimension mismatch")]
    fn probe_dimension_mismatch_panics() {
        let (mem, _) = filled_memory(3, 128, 95);
        let probe = Hypervector::zeros(64);
        let _ = mem.nearest(&probe);
    }

    #[test]
    fn metric_builder_roundtrip() {
        let mem: AssociativeMemory<u8> =
            AssociativeMemory::new(64).with_metric(SimilarityMetric::Cosine);
        assert_eq!(mem.metric(), SimilarityMetric::Cosine);
        assert_eq!(mem.dimension(), 64);
    }
}
