//! Bit-packed dense binary hypervectors.
//!
//! A hypervector is a point in `{0,1}^d` with `d` in the thousands (the
//! paper and the HDC literature default to `d = 10_000`). Bits are packed
//! 64 per machine word so that binding (XOR) and Hamming distance
//! (XOR + popcount) are 64-way word-parallel — the CPU analogue of the
//! dimension-independent parallelism HDC hardware provides.

use crate::rng::Rng;

/// Error returned when two hypervectors of different dimensionality are
/// combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatchError {
    /// Dimension of the left operand.
    pub left: usize,
    /// Dimension of the right operand.
    pub right: usize,
}

impl core::fmt::Display for DimensionMismatchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "hypervector dimensions differ: {} vs {}", self.left, self.right)
    }
}

impl std::error::Error for DimensionMismatchError {}

/// A dense binary hypervector of fixed dimension `d`.
///
/// Bits beyond `d` in the last storage word are kept at zero (a maintained
/// invariant), so popcount-based distances never see garbage.
///
/// # Examples
///
/// ```
/// use hdhash_hdc::{Hypervector, Rng};
///
/// let mut rng = Rng::new(1);
/// let a = Hypervector::random(10_000, &mut rng);
/// let b = Hypervector::random(10_000, &mut rng);
/// // Random hypervectors are ~orthogonal: distance concentrates at d/2.
/// let dist = a.hamming_distance(&b);
/// assert!((4_700..5_300).contains(&dist));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hypervector {
    dimension: usize,
    words: Vec<u64>,
}

impl Hypervector {
    /// Creates the all-zero hypervector of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn zeros(d: usize) -> Self {
        assert!(d > 0, "hypervector dimension must be positive");
        Self { dimension: d, words: vec![0; d.div_ceil(64)] }
    }

    /// Creates the all-one hypervector of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn ones(d: usize) -> Self {
        let mut hv = Self::zeros(d);
        for w in &mut hv.words {
            *w = u64::MAX;
        }
        hv.mask_tail();
        hv
    }

    /// Samples a hypervector uniformly from `{0,1}^d`.
    ///
    /// This is the paper's `random_hypervector(d)` (Algorithm 1, line 2).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn random(d: usize, rng: &mut Rng) -> Self {
        let mut hv = Self::zeros(d);
        for w in &mut hv.words {
            *w = rng.next_u64();
        }
        hv.mask_tail();
        hv
    }

    /// The dimensionality `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The number of 64-bit storage words.
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Read-only view of the packed words.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= d`.
    #[must_use]
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.dimension, "bit index {index} out of range");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= d`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.dimension, "bit index {index} out of range");
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= d`.
    pub fn flip_bit(&mut self, index: usize) {
        assert!(index < self.dimension, "bit index {index} out of range");
        self.words[index / 64] ^= 1u64 << (index % 64);
    }

    /// Flips every bit listed in `indices`.
    ///
    /// Duplicate indices cancel pairwise (XOR semantics).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn flip_bits<I: IntoIterator<Item = usize>>(&mut self, indices: I) {
        for i in indices {
            self.flip_bit(i);
        }
    }

    /// Number of set bits, via the runtime-dispatched popcount kernel.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        hdhash_simdkernels::popcount_words(&self.words)
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ; use [`try_hamming_distance`] for the
    /// fallible variant.
    ///
    /// [`try_hamming_distance`]: Hypervector::try_hamming_distance
    #[must_use]
    pub fn hamming_distance(&self, other: &Self) -> usize {
        self.try_hamming_distance(other).expect("dimension mismatch")
    }

    /// Hamming distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the dimensions differ.
    pub fn try_hamming_distance(&self, other: &Self) -> Result<usize, DimensionMismatchError> {
        self.check_dims(other)?;
        Ok(hdhash_simdkernels::hamming_distance_words(&self.words, &other.words))
    }

    /// Hamming distance to `other`, abandoning the scan as soon as the
    /// running count exceeds `limit`.
    ///
    /// Returns `Some(distance)` when `distance <= limit`, `None` once the
    /// partial count passes `limit` (without finishing the scan). This is
    /// the kernel behind best-so-far pruning in nearest-neighbour search:
    /// most candidates are abandoned after a fraction of their words.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use hdhash_hdc::{Hypervector, Rng};
    ///
    /// let mut rng = Rng::new(9);
    /// let a = Hypervector::random(10_000, &mut rng);
    /// let b = Hypervector::random(10_000, &mut rng);
    /// let d = a.hamming_distance(&b);
    /// assert_eq!(a.hamming_distance_within(&b, d), Some(d));
    /// assert_eq!(a.hamming_distance_within(&b, d - 1), None);
    /// ```
    #[must_use]
    pub fn hamming_distance_within(&self, other: &Self, limit: usize) -> Option<usize> {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        hamming_words_within(&self.words, &other.words, limit)
    }

    /// In-place XOR (the HDC *bind* operation).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the dimensions differ.
    pub fn xor_assign(&mut self, other: &Self) -> Result<(), DimensionMismatchError> {
        self.check_dims(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        Ok(())
    }

    /// Returns `self XOR other` as a new hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the dimensions differ.
    pub fn xor(&self, other: &Self) -> Result<Self, DimensionMismatchError> {
        let mut out = self.clone();
        out.xor_assign(other)?;
        Ok(out)
    }

    /// Inverts every bit (maps to the antipodal point).
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterator over the bits as `bool`s, LSB-first per word.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.dimension).map(move |i| self.bit(i))
    }

    /// Serializes to little-endian bytes (`ceil(d/8)` of them), LSB-first.
    ///
    /// Round-trips through [`from_bytes`](Hypervector::from_bytes); a
    /// stable wire format for persisting codebooks.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.dimension.div_ceil(8));
        for word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.truncate(self.dimension.div_ceil(8));
        out
    }

    /// Deserializes from the [`to_bytes`](Hypervector::to_bytes) format.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] (with `right` holding the byte
    /// capacity in bits) when `bytes` is too short for `d`, or when unused
    /// trailing bits are non-zero (corrupt input).
    pub fn from_bytes(d: usize, bytes: &[u8]) -> Result<Self, DimensionMismatchError> {
        assert!(d > 0, "hypervector dimension must be positive");
        if bytes.len() != d.div_ceil(8) {
            return Err(DimensionMismatchError { left: d, right: bytes.len() * 8 });
        }
        let mut hv = Self::zeros(d);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            hv.words[i] = u64::from_le_bytes(word);
        }
        // Reject garbage in the unused tail rather than silently masking.
        let mut clean = hv.clone();
        clean.mask_tail();
        if clean != hv {
            return Err(DimensionMismatchError { left: d, right: bytes.len() * 8 });
        }
        Ok(hv)
    }

    /// Builds a hypervector directly from packed words (crate-internal:
    /// the word-parallel kernels assemble results word-wise).
    ///
    /// The caller must supply exactly `d.div_ceil(64)` words; the tail is
    /// re-masked here so the invariant can never leak.
    pub(crate) fn from_words(d: usize, words: Vec<u64>) -> Self {
        assert!(d > 0, "hypervector dimension must be positive");
        assert_eq!(words.len(), d.div_ceil(64), "word count mismatch");
        let mut hv = Self { dimension: d, words };
        hv.mask_tail();
        hv
    }

    fn check_dims(&self, other: &Self) -> Result<(), DimensionMismatchError> {
        if self.dimension == other.dimension {
            Ok(())
        } else {
            Err(DimensionMismatchError { left: self.dimension, right: other.dimension })
        }
    }

    /// Zeroes the unused bits of the last storage word (invariant keeper).
    fn mask_tail(&mut self) {
        let used = self.dimension % 64;
        if used != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << used) - 1;
        }
    }
}

/// Word-level early-exit Hamming kernel shared by [`Hypervector`] and the
/// batched lookup engine: XOR + popcount in blocks of sixteen words
/// (1024 dimensions), checking the abandonment bound between blocks.
///
/// Delegates to `hdhash-simdkernels`, which installs the widest kernel
/// the running CPU supports (AVX2 where detected, portable scalar
/// otherwise) on first use.
#[inline]
pub(crate) fn hamming_words_within(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
    hdhash_simdkernels::hamming_within_words(a, b, limit)
}

impl core::fmt::Debug for Hypervector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print ten thousand bits; show dimension, weight and a prefix.
        let prefix: String =
            self.iter_bits().take(16).map(|b| if b { '1' } else { '0' }).collect();
        write!(
            f,
            "Hypervector {{ d: {}, weight: {}, bits: {}… }}",
            self.dimension,
            self.count_ones(),
            prefix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_weights() {
        for d in [1usize, 63, 64, 65, 100, 10_000] {
            assert_eq!(Hypervector::zeros(d).count_ones(), 0);
            assert_eq!(Hypervector::ones(d).count_ones(), d, "d={d}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_panics() {
        let _ = Hypervector::zeros(0);
    }

    #[test]
    fn random_weight_concentrates() {
        let mut rng = Rng::new(4);
        let hv = Hypervector::random(10_000, &mut rng);
        let w = hv.count_ones();
        assert!((4_700..5_300).contains(&w), "weight {w}");
    }

    #[test]
    fn tail_bits_stay_zero() {
        let mut rng = Rng::new(8);
        for d in [1usize, 63, 65, 127, 130] {
            let mut hv = Hypervector::random(d, &mut rng);
            hv.invert();
            let last = *hv.as_words().last().expect("non-empty");
            let used = d % 64;
            if used != 0 {
                assert_eq!(last >> used, 0, "tail garbage at d={d}");
            }
            assert!(hv.count_ones() <= d);
        }
    }

    #[test]
    fn bit_set_get_roundtrip() {
        let mut hv = Hypervector::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 128, 129] {
            assert!(!hv.bit(i));
            hv.set_bit(i, true);
            assert!(hv.bit(i));
            hv.flip_bit(i);
            assert!(!hv.bit(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = Hypervector::zeros(10).bit(10);
    }

    #[test]
    fn flip_bits_xor_semantics() {
        let mut hv = Hypervector::zeros(100);
        hv.flip_bits([3, 3, 5]);
        assert!(!hv.bit(3), "double flip should cancel");
        assert!(hv.bit(5));
        assert_eq!(hv.count_ones(), 1);
    }

    #[test]
    fn hamming_distance_basics() {
        let a = Hypervector::zeros(256);
        let b = Hypervector::ones(256);
        assert_eq!(a.hamming_distance(&b), 256);
        assert_eq!(a.hamming_distance(&a), 0);
        let mut c = a.clone();
        c.flip_bits([0, 100, 255]);
        assert_eq!(a.hamming_distance(&c), 3);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = Hypervector::zeros(64);
        let b = Hypervector::zeros(65);
        let err = a.try_hamming_distance(&b).expect_err("should mismatch");
        assert_eq!(err, DimensionMismatchError { left: 64, right: 65 });
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn xor_is_involution() {
        let mut rng = Rng::new(12);
        let a = Hypervector::random(1000, &mut rng);
        let b = Hypervector::random(1000, &mut rng);
        let bound = a.xor(&b).expect("dims");
        let unbound = bound.xor(&b).expect("dims");
        assert_eq!(unbound, a);
    }

    #[test]
    fn invert_is_antipodal() {
        let mut rng = Rng::new(13);
        let a = Hypervector::random(777, &mut rng);
        let mut b = a.clone();
        b.invert();
        assert_eq!(a.hamming_distance(&b), 777);
    }

    #[test]
    fn debug_is_compact_and_nonempty() {
        let hv = Hypervector::zeros(10_000);
        let s = format!("{hv:?}");
        assert!(s.contains("d: 10000"));
        assert!(s.len() < 120, "debug output too long: {}", s.len());
    }

    #[test]
    fn byte_serialization_roundtrips() {
        let mut rng = Rng::new(15);
        for d in [1usize, 7, 8, 9, 63, 64, 65, 1000, 10_000] {
            let hv = Hypervector::random(d, &mut rng);
            let bytes = hv.to_bytes();
            assert_eq!(bytes.len(), d.div_ceil(8));
            let back = Hypervector::from_bytes(d, &bytes).expect("roundtrip");
            assert_eq!(back, hv, "d={d}");
        }
    }

    #[test]
    fn from_bytes_rejects_bad_input() {
        // Wrong length.
        assert!(Hypervector::from_bytes(64, &[0u8; 7]).is_err());
        assert!(Hypervector::from_bytes(64, &[0u8; 9]).is_err());
        // Garbage in the unused tail bits (d=4 uses the low nibble only).
        assert!(Hypervector::from_bytes(4, &[0xF0]).is_err());
        assert!(Hypervector::from_bytes(4, &[0x0F]).is_ok());
    }

    #[test]
    fn iter_bits_matches_bit() {
        let mut rng = Rng::new(14);
        let hv = Hypervector::random(130, &mut rng);
        let collected: Vec<bool> = hv.iter_bits().collect();
        for (i, &b) in collected.iter().enumerate() {
            assert_eq!(b, hv.bit(i));
        }
    }
}
