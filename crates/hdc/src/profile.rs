//! Pairwise similarity profiles (paper Figure 2).
//!
//! Figure 2 of the paper visualizes the pairwise cosine similarities of 12
//! random, level and circular basis-hypervectors as heatmaps. This module
//! computes those matrices and summary profiles so the `fig2` harness (and
//! tests) can regenerate the figure's data.

use crate::hypervector::Hypervector;
use crate::similarity::SimilarityMetric;

/// A dense pairwise similarity matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    n: usize,
    values: Vec<f64>,
    metric: SimilarityMetric,
}

impl SimilarityMatrix {
    /// Computes the `n × n` pairwise similarity matrix of `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty or members have mismatched dimensions.
    #[must_use]
    pub fn compute(set: &[Hypervector], metric: SimilarityMetric) -> Self {
        assert!(!set.is_empty(), "cannot profile an empty set");
        let n = set.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let s = metric.evaluate(&set[i], &set[j]);
                values[i * n + j] = s;
                values[j * n + i] = s;
            }
        }
        Self { n, values, metric }
    }

    /// Matrix order (the number of hypervectors profiled).
    #[must_use]
    pub fn order(&self) -> usize {
        self.n
    }

    /// The metric the matrix was computed under.
    #[must_use]
    pub fn metric(&self) -> SimilarityMetric {
        self.metric
    }

    /// Similarity between members `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        self.values[i * self.n + j]
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "row out of range");
        &self.values[i * self.n..(i + 1) * self.n]
    }

    /// Mean similarity of all off-diagonal pairs.
    #[must_use]
    pub fn mean_off_diagonal(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += self.at(i, j);
                }
            }
        }
        sum / (self.n * (self.n - 1)) as f64
    }

    /// The similarity profile relative to member 0: `profile[k] = sim(0, k)`.
    ///
    /// For a circular basis this traces Figure 2's circular band: it decays
    /// to the antipode and rises back up.
    #[must_use]
    pub fn profile_from_first(&self) -> Vec<f64> {
        self.row(0).to_vec()
    }

    /// Renders the matrix as a fixed-width text heatmap (for the `fig2`
    /// harness).
    #[must_use]
    pub fn to_text(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} similarity, {}x{}", self.metric, self.n, self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                let _ = write!(out, "{:6.2} ", self.at(i, j));
            }
            out.pop();
            out.push('\n');
        }
        out
    }
}

/// Checks whether a similarity profile is circularly symmetric:
/// `profile[k] ≈ profile[n − k]` within `tolerance`.
#[must_use]
pub fn is_circularly_symmetric(profile: &[f64], tolerance: f64) -> bool {
    let n = profile.len();
    (1..n).all(|k| (profile[k] - profile[n - k]).abs() <= tolerance)
}

/// Checks that a profile decreases (within `slack`) from index 0 out to the
/// antipode at `n/2` — the "similarity decays with circular distance" law.
#[must_use]
pub fn decays_to_antipode(profile: &[f64], slack: f64) -> bool {
    let half = profile.len() / 2;
    profile.windows(2).take(half).all(|w| w[1] <= w[0] + slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{CircularBasis, LevelBasis, RandomBasis};
    use crate::rng::Rng;

    #[test]
    fn figure2_shapes() {
        // The three similarity structures of Figure 2 at the figure's own
        // parameters (12 hypervectors; d = 10k for tight concentration).
        let mut rng = Rng::new(200);
        let d = 10_008;

        let random = RandomBasis::generate(12, d, &mut rng).expect("valid");
        let m_random =
            SimilarityMatrix::compute(random.hypervectors(), SimilarityMetric::Cosine);
        // Random: identity diagonal, ~0 elsewhere.
        assert!(m_random.mean_off_diagonal().abs() < 0.02);

        let level = LevelBasis::generate(12, d, &mut rng).expect("valid");
        let m_level = SimilarityMatrix::compute(level.hypervectors(), SimilarityMetric::Cosine);
        // Level: monotone decay away from the diagonal, ends dissimilar.
        let p = m_level.profile_from_first();
        assert!(decays_to_antipode(&p[..], 1e-9));
        assert!(p[11] < 0.1);
        assert!(!is_circularly_symmetric(&p, 0.1), "level sets must NOT wrap");

        let circular = CircularBasis::generate(12, d, &mut rng).expect("valid");
        let m_circ =
            SimilarityMatrix::compute(circular.hypervectors(), SimilarityMetric::Cosine);
        let p = m_circ.profile_from_first();
        assert!(is_circularly_symmetric(&p, 0.02), "circular profile must wrap: {p:?}");
        assert!(decays_to_antipode(&p, 0.02));
        assert!(p[6].abs() < 0.02, "antipode should be quasi-orthogonal");
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let mut rng = Rng::new(201);
        let basis = RandomBasis::generate(6, 2048, &mut rng).expect("valid");
        let m = SimilarityMatrix::compute(basis.hypervectors(), SimilarityMetric::Cosine);
        for i in 0..6 {
            assert_eq!(m.at(i, i), 1.0);
            for j in 0..6 {
                assert_eq!(m.at(i, j), m.at(j, i));
            }
        }
        assert_eq!(m.order(), 6);
        assert_eq!(m.metric(), SimilarityMetric::Cosine);
        assert_eq!(m.row(0).len(), 6);
    }

    #[test]
    fn text_rendering_has_expected_shape() {
        let mut rng = Rng::new(202);
        let basis = RandomBasis::generate(3, 512, &mut rng).expect("valid");
        let m = SimilarityMatrix::compute(basis.hypervectors(), SimilarityMetric::Cosine);
        let text = m.to_text();
        assert_eq!(text.lines().count(), 4); // header + 3 rows
        assert!(text.starts_with("# cosine similarity, 3x3"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_panics() {
        let _ = SimilarityMatrix::compute(&[], SimilarityMetric::Cosine);
    }

    #[test]
    fn symmetry_helper_edge_cases() {
        assert!(is_circularly_symmetric(&[1.0], 0.0));
        assert!(is_circularly_symmetric(&[1.0, 0.5, 0.0, 0.5], 1e-12));
        assert!(!is_circularly_symmetric(&[1.0, 0.9, 0.0, 0.2], 0.01));
        assert!(decays_to_antipode(&[1.0, 0.5, 0.0, 0.5], 1e-12));
        assert!(!decays_to_antipode(&[1.0, 0.2, 0.5, 0.2], 0.01));
    }
}
