//! Offline stand-in for the `parking_lot` crate.
//!
//! Vendors the `Mutex`/`Condvar` API slice the workspace uses, backed by
//! `std::sync`. The behavioural differences that matter here:
//!
//! * `Mutex::lock` returns the guard directly (no poison `Result`); a
//!   poisoned std mutex is transparently recovered, matching parking_lot's
//!   "no poisoning" contract;
//! * `Condvar::wait` takes `&mut MutexGuard` (parking_lot style) instead of
//!   consuming the guard. Internally the guard wraps an `Option` so the std
//!   guard can be moved through `std::sync::Condvar::wait` and put back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual exclusion primitive (parking_lot-flavoured facade over
/// [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the mutex, blocking until available. Never poisons: a
    /// panicked previous holder's state is recovered as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable (parking_lot-flavoured facade over
/// [`std::sync::Condvar`]).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guarded mutex while parked.
    /// Spurious wakeups are possible, as with every condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let reacquired =
            self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses, releasing the guarded
    /// mutex while parked. Returns a [`WaitTimeoutResult`] that reports
    /// whether the wait expired; spurious wakeups are possible either way.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Outcome of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed rather
    /// than a notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        // Nobody notifies: the wait must expire.
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        drop(guard);
        // A notification beats a generous timeout.
        std::thread::scope(|s| {
            s.spawn(|| {
                *m.lock() = true;
                cv.notify_one();
            });
            let mut guard = m.lock();
            while !*guard {
                let result = cv.wait_for(&mut guard, std::time::Duration::from_secs(5));
                assert!(!result.timed_out() || *guard);
            }
        });
    }

    #[test]
    fn condvar_handoff() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                *m.lock() = true;
                cv.notify_one();
            });
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
            assert!(*guard);
        });
    }
}
