//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim vendors the
//! exact API slice this workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert*` macros, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_filter`/`boxed`, integer-range and tuple strategies,
//! [`collection::vec`]/[`collection::hash_set`], [`prop_oneof!`],
//! `Just`, `any::<T>()`, [`sample::Index`] and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from real proptest, deliberate for a test shim:
//!
//! * no shrinking — a failing case reports its case index and seed so it can
//!   be replayed deterministically, but is not minimized;
//! * value generation is driven by a fixed-seed SplitMix64 stream per case
//!   index, so test runs are fully deterministic (override the case count
//!   with the `PROPTEST_CASES` environment variable).

#![warn(missing_docs)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod test_runner;

/// Mirror of real proptest's `prop` facade module (`prop::collection::vec`,
/// `prop::sample::Index`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// The shim treats a rejected case as vacuously passing (real proptest
/// regenerates inputs; with deterministic per-case streams, skipping is the
/// faithful equivalent).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its deterministic replay seed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(left == right)` with a value-printing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// `prop_assert!(left != right)` with a value-printing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Picks uniformly among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in any::<u64>(), v in prop::collection::vec(0u64..10, 1..8)) {
///         prop_assert!(v.len() >= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.effective_cases() {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.effective_cases(),
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}
