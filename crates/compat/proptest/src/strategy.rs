//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`gen_value`) plus sized combinators, mirroring the
/// proptest API surface this workspace uses.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from the strategy.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to a bounded
    /// number of attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.gen_value(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive candidates", self.whence);
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `branches` is empty.
    #[must_use]
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Self { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.next_below(self.branches.len() as u64) as usize;
        self.branches[pick].gen_value(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as u64;
                let hi = self.end as u64 - 1;
                rng.next_in_inclusive(lo, hi) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.next_in_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.next_in_inclusive(self.start as u64, <$t>::MAX as u64) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// String-pattern strategy (real proptest interprets `&str` as a regex).
///
/// The shim supports the one pattern family this workspace uses,
/// `\PC{lo,hi}` — "printable (non-control) characters, length in
/// `[lo, hi]`" — and falls back to yielding the pattern text literally for
/// anything else.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        if let Some(rest) = self.strip_prefix("\\PC{").and_then(|r| r.strip_suffix('}')) {
            if let Some((lo, hi)) = rest.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                    let len = rng.next_in_inclusive(lo, hi) as usize;
                    // Mostly printable ASCII with occasional multibyte
                    // code points, never control characters.
                    const EXOTIC: [char; 8] =
                        ['é', 'ß', '中', '🦀', 'Ω', 'ñ', '→', '𝄞'];
                    return (0..len)
                        .map(|_| {
                            let roll = rng.next_u64();
                            if roll.is_multiple_of(8) {
                                EXOTIC[(roll >> 8) as usize % EXOTIC.len()]
                            } else {
                                char::from(0x20 + (roll >> 8) as u8 % 0x5F)
                            }
                        })
                        .collect();
                }
            }
        }
        (*self).to_owned()
    }
}

macro_rules! impl_tuples {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

impl_tuples!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy", 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..10).gen_value(&mut r);
            assert!((3..10).contains(&v));
            let w = (1usize..=4).gen_value(&mut r);
            assert!((1..=4).contains(&w));
            let x = (u64::MAX - 2..).gen_value(&mut r);
            assert!(x >= u64::MAX - 2);
        }
    }

    #[test]
    fn map_union_just_filter() {
        let mut r = rng();
        let even = (0u64..100).prop_map(|v| v * 2);
        assert_eq!(even.gen_value(&mut r) % 2, 0);
        let union = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        for _ in 0..50 {
            assert!(matches!(union.gen_value(&mut r), 1 | 2));
        }
        let odd = (0u64..100).prop_filter("odd", |v| v % 2 == 1);
        assert_eq!(odd.gen_value(&mut r) % 2, 1);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b) = ((0u8..4), (10usize..12)).gen_value(&mut r);
        assert!(a < 4 && (10..12).contains(&b));
    }
}
