//! Collection strategies (`vec`, `hash_set`).

use std::collections::HashSet;
use std::hash::Hash;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification accepted by the collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.next_in_inclusive(self.lo as u64, self.hi as u64) as usize
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Hash sets of `size` distinct elements drawn from `element`.
///
/// Aims for a size inside the requested range; if the element domain is too
/// small to reach the sampled target it settles for what it found, but
/// panics when even the range minimum is unreachable.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = 100 * (target + 1);
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.gen_value(rng));
            attempts += 1;
        }
        assert!(
            out.len() >= self.size.lo,
            "hash_set strategy could not reach minimum size {} (got {})",
            self.size.lo,
            out.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_case("collection", 0);
        for _ in 0..200 {
            let v = vec(any::<u64>(), 2..5).gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_distinct_and_sized() {
        let mut rng = TestRng::for_case("collection", 1);
        for _ in 0..100 {
            let s = hash_set(0u64..64, 1..16).gen_value(&mut rng);
            assert!((1..16).contains(&s.len()));
        }
    }

    #[test]
    fn exact_size_spec() {
        let mut rng = TestRng::for_case("collection", 2);
        assert_eq!(vec(any::<u8>(), 7usize).gen_value(&mut rng).len(), 7);
    }
}
