//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Generates any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_all_supported_types() {
        let mut rng = TestRng::for_case("arbitrary", 0);
        let _: u64 = any::<u64>().gen_value(&mut rng);
        let _: u8 = any::<u8>().gen_value(&mut rng);
        let _: bool = any::<bool>().gen_value(&mut rng);
        let _: usize = any::<usize>().gen_value(&mut rng);
        let idx = any::<crate::sample::Index>().gen_value(&mut rng);
        assert!(idx.index(10) < 10);
    }
}
