//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection of as-yet-unknown size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Internal constructor used by the `Arbitrary` impl.
    #[must_use]
    pub(crate) fn from_raw(raw: u64) -> Self {
        Self { raw }
    }

    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_projects_in_range() {
        for raw in [0u64, 1, 41, u64::MAX] {
            let idx = Index::from_raw(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }
}
