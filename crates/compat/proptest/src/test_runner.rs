//! Deterministic case driver: config, RNG and failure type.

/// How many cases each property runs (shim default: 64, overridable via the
/// `PROPTEST_CASES` environment variable, matching real proptest's knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Requested number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64-based deterministic generator for strategy sampling.
///
/// Each `(test name, case index)` pair gets an independent stream, so every
/// failing case is replayable in isolation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for one test case.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = TestRng::for_case("r", 0);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn config_default_and_override() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
    }
}
