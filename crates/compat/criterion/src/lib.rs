//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice this workspace's benches use — benchmark groups,
//! `bench_with_input`/`bench_function`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` and `black_box` — as a *measuring*
//! harness: every benchmark is warmed up, then timed over enough iterations
//! to cover a sampling window, and the median per-iteration time is printed
//! in criterion-like format:
//!
//! ```text
//! group/function/param    time: [1.234 µs]  thrpt: [8.1 Melem/s]
//! ```
//!
//! No statistics files, plots or regression tracking — but the numbers are
//! honest wall-clock medians, good enough for the `BENCH_*.json` emitters
//! and for eyeballing order-of-magnitude wins.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement window per benchmark.
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Modest defaults: CI runs `cargo bench --no-run` (compile check) and
        // humans run the real thing, so keep local runs brisk.
        Self { measurement: Duration::from_millis(400), warm_up: Duration::from_millis(80) }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            throughput: None,
            sample_size: 0,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self.warm_up, self.measurement, |b| f(b));
        print_report(&id.id, &report, None);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    #[allow(dead_code)]
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility; the shim sizes
    /// samples by wall-clock window instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report =
            run_bench(self.harness.warm_up, self.harness.measurement, |b| f(b, input));
        print_report(&format!("{}/{}", self.name, id.id), &report, self.throughput);
        self
    }

    /// Benchmarks a closure taking only the bencher.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self.harness.warm_up, self.harness.measurement, |b| f(b));
        print_report(&format!("{}/{}", self.name, id.id), &report, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `f`, dropping its outputs outside the timed region.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut outputs = Vec::with_capacity(self.iters.min(1 << 20) as usize);
        let start = Instant::now();
        for _ in 0..self.iters {
            outputs.push(black_box(f()));
        }
        self.elapsed = start.elapsed();
        drop(outputs);
    }
}

/// One benchmark's measurement summary (nanoseconds per iteration).
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Median ns/iter across samples.
    pub median_ns: f64,
}

fn run_bench<F: FnMut(&mut Bencher)>(warm_up: Duration, measurement: Duration, mut f: F) -> Report {
    // Calibrate: find an iteration count that takes ≥ ~1/10 of the warm-up.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed * 10 >= warm_up || iters > 1 << 40 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            100
        } else {
            (warm_up.as_nanos() / (10 * b.elapsed.as_nanos().max(1))).clamp(2, 100) as u64
        };
        iters = iters.saturating_mul(grow);
    }
    // Sample until the measurement window is spent (at least 5 samples).
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < measurement || samples.len() < 5 {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Report { median_ns: samples[samples.len() / 2] }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} time: [{}]", format_time(report.median_ns));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (report.median_ns / 1e9);
        let human = if per_sec >= 1e9 {
            format!("{:.2} G{unit}/s", per_sec / 1e9)
        } else if per_sec >= 1e6 {
            format!("{:.2} M{unit}/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.2} K{unit}/s", per_sec / 1e3)
        } else {
            format!("{per_sec:.2} {unit}/s")
        };
        line.push_str(&format!("  thrpt: [{human}]"));
    }
    println!("{line}");
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let report = run_bench(
            Duration::from_millis(2),
            Duration::from_millis(5),
            |b| b.iter(|| black_box(3u64).wrapping_mul(7)),
        );
        assert!(report.median_ns > 0.0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("bind", 64).id, "bind/64");
        assert_eq!(BenchmarkId::from_parameter(9).id, "9");
    }
}
