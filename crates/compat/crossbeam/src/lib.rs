//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! shim vendors the one API slice the workspace uses — `crossbeam::thread::scope`
//! with `Scope::spawn` — implemented on top of `std::thread::scope` (stable
//! since Rust 1.63, which post-dates crossbeam's scoped threads).
//!
//! Semantics match the call sites' expectations:
//!
//! * `scope` returns `Ok(r)` when every spawned thread ran to completion;
//! * a panicking worker propagates the panic out of `scope` (callers here
//!   treat worker panics as fatal via `.expect(..)`, so re-panicking is an
//!   acceptable substitute for crossbeam's `Err` aggregation);
//! * `Scope::spawn` hands the scope back to the closure so nested spawns
//!   remain possible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// The result type of [`scope`]: mirrors `crossbeam::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the `scope` closure and to every spawned
    /// thread's closure.
    ///
    /// Unlike crossbeam this is a small `Copy` value wrapping the std scope
    /// reference, which lets the handle itself be sent into spawned threads
    /// without borrow gymnastics.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's `|scope| ...` signature (most callers bind
        /// it as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        let result = super::thread::scope(|scope| {
            for (chunk, slot) in data.chunks(2).zip(partials.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
            42
        })
        .expect("no panics");
        assert_eq!(result, 42);
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
