//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! shim vendors the API slices the workspace uses — `crossbeam::thread::scope`
//! with `Scope::spawn` (on top of `std::thread::scope`, stable since Rust
//! 1.63, which post-dates crossbeam's scoped threads) and
//! `crossbeam::queue::ArrayQueue` (a bounded MPMC queue, here a
//! mutex-guarded ring rather than crossbeam's lock-free array — same
//! contract, no `unsafe`).
//!
//! Semantics match the call sites' expectations:
//!
//! * `scope` returns `Ok(r)` when every spawned thread ran to completion;
//! * a panicking worker propagates the panic out of `scope` (callers here
//!   treat worker panics as fatal via `.expect(..)`, so re-panicking is an
//!   acceptable substitute for crossbeam's `Err` aggregation);
//! * `Scope::spawn` hands the scope back to the closure so nested spawns
//!   remain possible;
//! * `ArrayQueue::push` on a full queue hands the value back as `Err` —
//!   the backpressure signal the serving layer rejects requests on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// The result type of [`scope`]: mirrors `crossbeam::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the `scope` closure and to every spawned
    /// thread's closure.
    ///
    /// Unlike crossbeam this is a small `Copy` value wrapping the std scope
    /// reference, which lets the handle itself be sent into spawned threads
    /// without borrow gymnastics.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's `|scope| ...` signature (most callers bind
        /// it as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

/// Bounded lock-based queues (`crossbeam::queue`).
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// A bounded multi-producer multi-consumer queue.
    ///
    /// API-compatible with `crossbeam::queue::ArrayQueue` for the slice the
    /// workspace uses: `push` refuses (returning the value) once `capacity`
    /// elements are queued, `pop` returns `None` when empty, and every
    /// method takes `&self` so one queue can be shared across producer and
    /// consumer threads behind an `Arc`.
    ///
    /// The real crate's queue is a lock-free array; this shim guards a
    /// `VecDeque` with a [`std::sync::Mutex`] (recovered on poison, so a
    /// panicking peer never wedges the queue). Contention behaviour
    /// differs, the observable FIFO semantics do not.
    ///
    /// # Examples
    ///
    /// ```
    /// use crossbeam::queue::ArrayQueue;
    ///
    /// let q = ArrayQueue::new(2);
    /// assert!(q.push(1).is_ok());
    /// assert!(q.push(2).is_ok());
    /// assert_eq!(q.push(3), Err(3)); // full: value handed back
    /// assert_eq!(q.pop(), Some(1));
    /// ```
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates an empty queue holding at most `capacity` elements.
        ///
        /// # Panics
        ///
        /// Panics if `capacity == 0` (matching crossbeam).
        #[must_use]
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "capacity must be non-zero");
            Self { inner: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Appends `value`, or hands it back as `Err` if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.lock();
            if q.len() >= self.capacity {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        /// Removes and returns the oldest element, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        #[must_use]
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue holds no elements.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Whether the queue is at capacity.
        #[must_use]
        pub fn is_full(&self) -> bool {
            self.lock().len() >= self.capacity
        }

        /// The fixed capacity bound.
        #[must_use]
        pub fn capacity(&self) -> usize {
            self.capacity
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        let result = super::thread::scope(|scope| {
            for (chunk, slot) in data.chunks(2).zip(partials.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
            42
        })
        .expect("no panics");
        assert_eq!(result, 42);
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn queue_fifo_and_backpressure() {
        let q = super::queue::ArrayQueue::new(3);
        assert!(q.is_empty());
        assert!(!q.is_full());
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            assert!(q.push(i).is_ok());
        }
        assert!(q.is_full());
        assert_eq!(q.len(), 3);
        assert_eq!(q.push(9), Err(9));
        assert_eq!(q.pop(), Some(0));
        assert!(q.push(9).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_mpmc_under_threads() {
        // 4 producers × 250 items drained by 2 consumers: every item
        // arrives exactly once.
        let q = std::sync::Arc::new(super::queue::ArrayQueue::new(64));
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let q = q.clone();
                let done = done.clone();
                s.spawn(move || {
                    for i in 0..250u32 {
                        let mut v = p * 1000 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                    done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
            for _ in 0..2 {
                let q = q.clone();
                let seen = seen.clone();
                let done = done.clone();
                s.spawn(move || loop {
                    match q.pop() {
                        Some(v) => seen.lock().expect("unpoisoned").push(v),
                        None => {
                            if done.load(std::sync::atomic::Ordering::SeqCst) == 4
                                && q.is_empty()
                            {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let mut all = seen.lock().expect("unpoisoned").clone();
        all.sort_unstable();
        let expect: Vec<u32> =
            (0..4u32).flat_map(|p| (0..250u32).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expect);
    }
}
