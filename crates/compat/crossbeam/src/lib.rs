//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! shim vendors the API slices the workspace uses — `crossbeam::thread::scope`
//! with `Scope::spawn` (on top of `std::thread::scope`, stable since Rust
//! 1.63, which post-dates crossbeam's scoped threads),
//! `crossbeam::queue::ArrayQueue` (a bounded MPMC queue, here a
//! mutex-guarded ring rather than crossbeam's lock-free array — same
//! contract, no `unsafe`) and `crossbeam::channel` (unbounded MPMC
//! channels with blocking, timed and non-blocking receives — the gossip
//! transport's mailbox plumbing).
//!
//! Semantics match the call sites' expectations:
//!
//! * `scope` returns `Ok(r)` when every spawned thread ran to completion;
//! * a panicking worker propagates the panic out of `scope` (callers here
//!   treat worker panics as fatal via `.expect(..)`, so re-panicking is an
//!   acceptable substitute for crossbeam's `Err` aggregation);
//! * `Scope::spawn` hands the scope back to the closure so nested spawns
//!   remain possible;
//! * `ArrayQueue::push` on a full queue hands the value back as `Err` —
//!   the backpressure signal the serving layer rejects requests on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// The result type of [`scope`]: mirrors `crossbeam::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the `scope` closure and to every spawned
    /// thread's closure.
    ///
    /// Unlike crossbeam this is a small `Copy` value wrapping the std scope
    /// reference, which lets the handle itself be sent into spawned threads
    /// without borrow gymnastics.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's `|scope| ...` signature (most callers bind
        /// it as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

/// Bounded lock-based queues (`crossbeam::queue`).
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// A bounded multi-producer multi-consumer queue.
    ///
    /// API-compatible with `crossbeam::queue::ArrayQueue` for the slice the
    /// workspace uses: `push` refuses (returning the value) once `capacity`
    /// elements are queued, `pop` returns `None` when empty, and every
    /// method takes `&self` so one queue can be shared across producer and
    /// consumer threads behind an `Arc`.
    ///
    /// The real crate's queue is a lock-free array; this shim guards a
    /// `VecDeque` with a [`std::sync::Mutex`] (recovered on poison, so a
    /// panicking peer never wedges the queue). Contention behaviour
    /// differs, the observable FIFO semantics do not.
    ///
    /// # Examples
    ///
    /// ```
    /// use crossbeam::queue::ArrayQueue;
    ///
    /// let q = ArrayQueue::new(2);
    /// assert!(q.push(1).is_ok());
    /// assert!(q.push(2).is_ok());
    /// assert_eq!(q.push(3), Err(3)); // full: value handed back
    /// assert_eq!(q.pop(), Some(1));
    /// ```
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates an empty queue holding at most `capacity` elements.
        ///
        /// # Panics
        ///
        /// Panics if `capacity == 0` (matching crossbeam).
        #[must_use]
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "capacity must be non-zero");
            Self { inner: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Appends `value`, or hands it back as `Err` if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.lock();
            if q.len() >= self.capacity {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        /// Removes and returns the oldest element, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        #[must_use]
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue holds no elements.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Whether the queue is at capacity.
        #[must_use]
        pub fn is_full(&self) -> bool {
            self.lock().len() >= self.capacity
        }

        /// The fixed capacity bound.
        #[must_use]
        pub fn capacity(&self) -> usize {
            self.capacity
        }
    }
}

/// Work-stealing deques (`crossbeam::deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

    /// Outcome of a steal attempt, mirroring `crossbeam::deque::Steal`.
    ///
    /// The real crate's lock-free Chase–Lev deque can observe a concurrent
    /// modification and ask the caller to retry; this lock-based shim
    /// never does, but the variant is kept so call sites written against
    /// the real API (`loop { match stealer.steal() { Retry => continue,
    /// … } }`) compile and behave unchanged.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried (never
        /// produced by this shim).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// Whether the deque was observed empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    #[derive(Debug)]
    struct Buffer<T> {
        queue: VecDeque<T>,
    }

    fn lock<T>(buffer: &Mutex<Buffer<T>>) -> MutexGuard<'_, Buffer<T>> {
        buffer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The owner side of a work-stealing deque (Chase–Lev `Worker`).
    ///
    /// The owner pushes new tasks and pops from its own end;
    /// [`Stealer`]s take from the opposite end. This shim is a
    /// mutex-guarded ring, so unlike the real crate's `Worker` it is
    /// `Sync`; call sites should still confine `push`/`pop` to the owning
    /// worker thread so that swapping the real lock-free crate back in
    /// (a `Cargo.toml`-only change everywhere else) only requires moving
    /// the `Worker` values into their threads at spawn time.
    ///
    /// Only the FIFO flavour is provided — it is the one batch-coalescing
    /// schedulers want (oldest request first preserves queue fairness and
    /// latency ordering).
    ///
    /// # Examples
    ///
    /// ```
    /// use crossbeam::deque::{Steal, Worker};
    ///
    /// let local = Worker::new_fifo();
    /// let stealer = local.stealer();
    /// local.push(1);
    /// local.push(2);
    /// assert_eq!(stealer.steal(), Steal::Success(1));
    /// assert_eq!(local.pop(), Some(2));
    /// assert_eq!(local.pop(), None);
    /// ```
    #[derive(Debug)]
    pub struct Worker<T> {
        buffer: Arc<Mutex<Buffer<T>>>,
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_fifo()
        }
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO deque: the owner pops the oldest task,
        /// and stealers take from the same end (matching the real
        /// crate's `new_fifo` semantics, where owner and thieves agree
        /// on front-of-queue order).
        #[must_use]
        pub fn new_fifo() -> Self {
            Self { buffer: Arc::new(Mutex::new(Buffer { queue: VecDeque::new() })) }
        }

        /// A new handle thieves can steal through; clone freely.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { buffer: Arc::clone(&self.buffer) }
        }

        /// Appends a task at the back of the deque.
        pub fn push(&self, task: T) {
            lock(&self.buffer).queue.push_back(task);
        }

        /// Removes the oldest task, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            lock(&self.buffer).queue.pop_front()
        }

        /// Number of queued tasks (racy under concurrent stealing —
        /// diagnostic only).
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.buffer).queue.len()
        }

        /// Whether the deque currently holds no tasks.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            lock(&self.buffer).queue.is_empty()
        }
    }

    /// The thief side of a work-stealing deque (Chase–Lev `Stealer`).
    ///
    /// Cheap to clone; every clone drains the same deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        buffer: Arc<Mutex<Buffer<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { buffer: Arc::clone(&self.buffer) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the victim deque.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.buffer).queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a chunk of tasks — half the victim's queue, capped like
        /// the real crate — into `dest`, and pops one of them.
        ///
        /// This is the batch-pickup primitive: a worker whose local deque
        /// ran dry refills it from a sibling in one locked pass instead
        /// of trading single tasks.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            /// Cap on tasks moved per steal, mirroring
            /// `crossbeam::deque::MAX_BATCH`.
            const MAX_BATCH: usize = 32;
            // Drain under the victim's lock only, then fill `dest` after
            // releasing it: two workers stealing from *each other* would
            // otherwise take the two locks in opposite orders and
            // deadlock.
            let (first, carried) = {
                let mut victim = lock(&self.buffer);
                let available = victim.queue.len();
                if available == 0 {
                    return Steal::Empty;
                }
                // Take ceil(half), capped: the victim keeps at least half
                // of its backlog, so repeated mutual stealing cannot
                // ping-pong the whole queue.
                let take = available.div_ceil(2).min(MAX_BATCH);
                let first = victim.queue.pop_front().expect("available > 0");
                let carried: Vec<T> =
                    (1..take).map(|_| victim.queue.pop_front().expect("len checked")).collect();
                (first, carried)
            };
            if !carried.is_empty() {
                lock(&dest.buffer).queue.extend(carried);
            }
            Steal::Success(first)
        }

        /// Number of stealable tasks (racy — diagnostic only).
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.buffer).queue.len()
        }

        /// Whether the victim deque currently holds no tasks.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            lock(&self.buffer).queue.is_empty()
        }
    }
}

/// Multi-producer multi-consumer channels (`crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every [`Receiver`] has been
    /// dropped; the unsent value is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every [`Sender`] has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a failed [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still produce).
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Outcome of a failed [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    #[derive(Debug)]
    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    #[derive(Debug)]
    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel; clone freely for more producers.
    #[derive(Debug)]
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel; clone freely for more consumers
    /// (each message is delivered to exactly one receiver).
    #[derive(Debug)]
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.lock().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Returns the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .chan
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Number of queued messages (racy, diagnostic only).
        #[must_use]
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether no message is queued (racy, diagnostic only).
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.chan.lock().queue.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        let result = super::thread::scope(|scope| {
            for (chunk, slot) in data.chunks(2).zip(partials.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
            42
        })
        .expect("no panics");
        assert_eq!(result, 42);
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn queue_fifo_and_backpressure() {
        let q = super::queue::ArrayQueue::new(3);
        assert!(q.is_empty());
        assert!(!q.is_full());
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            assert!(q.push(i).is_ok());
        }
        assert!(q.is_full());
        assert_eq!(q.len(), 3);
        assert_eq!(q.push(9), Err(9));
        assert_eq!(q.pop(), Some(0));
        assert!(q.push(9).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn channel_fifo_and_try_recv() {
        use super::channel::{unbounded, TryRecvError};
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).expect("receiver alive");
        tx.send(2).expect("receiver alive");
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.is_empty());
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_disconnect_and_timeout() {
        use super::channel::{unbounded, RecvTimeoutError, SendError};
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        let (tx2, rx2) = unbounded::<u32>();
        drop(tx2);
        assert_eq!(
            rx2.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_crosses_threads() {
        use super::channel::unbounded;
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).expect("receiver alive");
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().expect("sender alive"));
        }
        handle.join().expect("no panic");
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn channel_cloned_receivers_partition_messages() {
        use super::channel::unbounded;
        let (tx, rx_a) = unbounded();
        let rx_b = rx_a.clone();
        for i in 0..10u32 {
            tx.send(i).expect("receivers alive");
        }
        let mut seen = Vec::new();
        for i in 0..10 {
            let rx = if i % 2 == 0 { &rx_a } else { &rx_b };
            seen.push(rx.recv().expect("sender alive"));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn deque_fifo_owner_and_stealer_agree_on_order() {
        use super::deque::{Steal, Worker};
        let local = Worker::<u32>::new_fifo();
        assert!(local.is_empty());
        assert_eq!(local.pop(), None);
        let stealer = local.stealer();
        assert_eq!(stealer.steal(), Steal::Empty);
        for i in 0..4 {
            local.push(i);
        }
        assert_eq!(local.len(), 4);
        assert_eq!(stealer.len(), 4);
        // FIFO: owner pops and thieves steal the oldest task.
        assert_eq!(local.pop(), Some(0));
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(stealer.steal().success(), Some(2));
        assert_eq!(local.pop(), Some(3));
        assert!(stealer.is_empty());
        assert!(stealer.steal().is_empty());
    }

    #[test]
    fn deque_steal_batch_moves_half_capped() {
        use super::deque::{Steal, Worker};
        let victim = Worker::<u32>::new_fifo();
        let thief = Worker::<u32>::new_fifo();
        for i in 0..10 {
            victim.push(i);
        }
        // Half of 10 = 5: one popped, four carried into the thief's deque.
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.len(), 4);
        assert_eq!(victim.len(), 5);
        assert_eq!(thief.pop(), Some(1));
        // Order within both deques stays FIFO.
        assert_eq!(victim.pop(), Some(5));
        // Empty victim reports Empty and leaves the thief untouched.
        let empty = Worker::<u32>::new_fifo();
        assert_eq!(empty.stealer().steal_batch_and_pop(&thief), Steal::Empty);
        assert_eq!(thief.len(), 3);
        // A large backlog is capped at the documented batch bound (32).
        let big = Worker::<u32>::new_fifo();
        for i in 0..200 {
            big.push(i);
        }
        let dest = Worker::<u32>::new_fifo();
        assert!(matches!(big.stealer().steal_batch_and_pop(&dest), Steal::Success(0)));
        assert_eq!(dest.len(), 31, "one popped + 31 carried = MAX_BATCH");
        assert_eq!(big.len(), 168);
    }

    #[test]
    fn deque_mutual_stealing_does_not_deadlock_or_lose_tasks() {
        // Two workers repeatedly steal from each other while a third party
        // observes: every task is drained exactly once and the opposing
        // lock order cannot deadlock (the shim buffers outside the victim
        // lock).
        use super::deque::Worker;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let a = Worker::<u32>::new_fifo();
        let b = Worker::<u32>::new_fifo();
        for i in 0..500 {
            a.push(i);
            b.push(1000 + i);
        }
        let drained = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for (own, other) in [(&a, &b), (&b, &a)] {
                let drained = &drained;
                let stealer = other.stealer();
                s.spawn(move || loop {
                    let popped = own.pop().is_some()
                        || stealer.steal_batch_and_pop(own).success().is_some();
                    if popped {
                        drained.fetch_add(1, Ordering::SeqCst);
                    } else if own.is_empty() && stealer.is_empty() {
                        return;
                    }
                });
            }
        });
        assert_eq!(drained.load(Ordering::SeqCst), 1000);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn queue_mpmc_under_threads() {
        // 4 producers × 250 items drained by 2 consumers: every item
        // arrives exactly once.
        let q = std::sync::Arc::new(super::queue::ArrayQueue::new(64));
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let q = q.clone();
                let done = done.clone();
                s.spawn(move || {
                    for i in 0..250u32 {
                        let mut v = p * 1000 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                    done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
            for _ in 0..2 {
                let q = q.clone();
                let seen = seen.clone();
                let done = done.clone();
                s.spawn(move || loop {
                    match q.pop() {
                        Some(v) => seen.lock().expect("unpoisoned").push(v),
                        None => {
                            if done.load(std::sync::atomic::Ordering::SeqCst) == 4
                                && q.is_empty()
                            {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let mut all = seen.lock().expect("unpoisoned").clone();
        all.sort_unstable();
        let expect: Vec<u32> =
            (0..4u32).flat_map(|p| (0..250u32).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expect);
    }
}
