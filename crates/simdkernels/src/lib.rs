//! # hdhash-simdkernels — runtime-dispatched distance kernels
//!
//! The HD-hash hot path is one operation: XOR two packed `u64` rows and
//! popcount the result (Hamming distance). Every other crate in the
//! workspace is `#![forbid(unsafe_code)]`; this leaf crate is the single,
//! auditable exception, holding the feature-gated SIMD implementations of
//! that kernel behind a safe API:
//!
//! * **AVX2** (`x86_64`, detected at runtime) — 256-bit XOR plus the
//!   nibble-LUT popcount (`vpshufb` per-byte counts folded with
//!   `vpsadbw`), sixteen words per iteration;
//! * **scalar** — portable `u64::count_ones` in 16-word blocks, the exact
//!   kernel previously inlined in `hdhash-hdc`, and the behavioural
//!   specification the vector path must match bit-for-bit.
//!
//! Dispatch is resolved once per process and cached in a [`OnceLock`]:
//! the first call probes the CPU (`is_x86_feature_detected!`) and installs
//! function pointers; every later call is an indirect call with no
//! re-detection. Binaries therefore run on any x86-64 — no compile-time
//! `-C target-cpu` requirement — and still use AVX2 where it exists.
//!
//! Forcing the scalar path (CI's portability job, A/B benchmarking):
//!
//! * environment: `HDHASH_FORCE_SCALAR=1` (any non-empty value except
//!   `0`), checked once at dispatch time;
//! * compile time: the `force-scalar` cargo feature.
//!
//! [`kernel_name`] reports which kernel was installed.
//!
//! ## Exactness
//!
//! Both kernels compute the same integers: popcount is exact, so the AVX2
//! path is not an approximation of the scalar path — it is the same
//! function. `hamming_within_words` checks its abandonment bound at the
//! same 16-word block granularity in both implementations, and its
//! *result* (`Some(d)` iff `d <= limit`) is fully determined by the
//! inputs either way. The property suite in `tests/equivalence.rs` pins
//! both claims.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// How many words one early-exit block spans (1024 dimensions): large
/// enough that the bound check is off the critical path, small enough that
/// abandonment saves most of a hopeless row.
pub const BLOCK_WORDS: usize = 16;

/// The installed kernel implementations.
struct Kernel {
    name: &'static str,
    distance: fn(&[u64], &[u64]) -> usize,
    within: fn(&[u64], &[u64], usize) -> Option<usize>,
}

static KERNEL: OnceLock<Kernel> = OnceLock::new();

fn kernel() -> &'static Kernel {
    KERNEL.get_or_init(|| {
        if scalar_forced() {
            return SCALAR;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel {
                name: "avx2",
                distance: avx2::hamming_distance,
                within: avx2::hamming_within,
            };
        }
        SCALAR
    })
}

const SCALAR: Kernel = Kernel {
    name: "scalar",
    distance: scalar::hamming_distance_words,
    within: scalar::hamming_within_words,
};

/// Whether the scalar fallback is forced (feature or environment).
fn scalar_forced() -> bool {
    if cfg!(feature = "force-scalar") {
        return true;
    }
    match std::env::var_os("HDHASH_FORCE_SCALAR") {
        Some(v) => !v.is_empty() && v != *"0",
        None => false,
    }
}

/// The name of the kernel the dispatcher installed for this process:
/// `"avx2"` or `"scalar"`.
#[must_use]
pub fn kernel_name() -> &'static str {
    kernel().name
}

/// Hamming distance between two equal-length packed word rows
/// (XOR + popcount over every word).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn hamming_distance_words(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word rows must have equal length");
    (kernel().distance)(a, b)
}

/// Hamming distance with early abandonment: returns `Some(distance)` when
/// `distance <= limit`, `None` as soon as the running count provably
/// exceeds `limit` (checked every [`BLOCK_WORDS`] words).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn hamming_within_words(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "word rows must have equal length");
    (kernel().within)(a, b, limit)
}

/// The portable kernels — always available, always correct, and the
/// specification the vector paths are property-tested against.
pub mod scalar {
    use super::BLOCK_WORDS;

    /// Scalar XOR + popcount over every word.
    ///
    /// # Panics
    ///
    /// Debug-asserts equal lengths (the public dispatcher asserts).
    #[must_use]
    pub fn hamming_distance_words(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
    }

    /// Scalar early-exit distance: XOR + popcount in [`BLOCK_WORDS`]
    /// blocks, checking the abandonment bound between blocks so the hot
    /// loop stays branch-light and unrollable.
    #[must_use]
    pub fn hamming_within_words(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        let mut total = 0usize;
        let mut chunks_a = a.chunks_exact(BLOCK_WORDS);
        let mut chunks_b = b.chunks_exact(BLOCK_WORDS);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            let mut block = 0u32;
            for (x, y) in ca.iter().zip(cb) {
                block += (x ^ y).count_ones();
            }
            total += block as usize;
            if total > limit {
                return None;
            }
        }
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        if total <= limit {
            Some(total)
        } else {
            None
        }
    }
}

/// The AVX2 kernels (x86-64 only, installed after runtime detection).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BLOCK_WORDS;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_xor_si256,
    };

    /// Per-64-bit-lane popcount of one 256-bit vector: the classic
    /// nibble-LUT scheme — `vpshufb` maps each nibble to its population
    /// count, `vpsadbw` folds the 32 byte-counts into four u64 lane sums.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn popcount_epi64(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// XOR + per-lane popcount of one 4-word (256-bit) chunk.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn xor_popcount_chunk(a: &[u64], b: &[u64]) -> __m256i {
        debug_assert_eq!(a.len(), 4);
        debug_assert_eq!(b.len(), 4);
        // SAFETY: both chunks hold exactly four u64s (32 bytes), so the
        // unaligned 256-bit loads stay in bounds.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(a.as_ptr().cast()),
                _mm256_loadu_si256(b.as_ptr().cast()),
            )
        };
        popcount_epi64(_mm256_xor_si256(va, vb))
    }

    /// Horizontal sum of the four u64 lanes of an accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn horizontal_sum(acc: __m256i) -> u64 {
        (_mm256_extract_epi64(acc, 0) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 1) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 2) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 3) as u64)
    }

    #[target_feature(enable = "avx2")]
    fn distance_impl(a: &[u64], b: &[u64]) -> usize {
        let mut chunks_a = a.chunks_exact(4);
        let mut chunks_b = b.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            acc = _mm256_add_epi64(acc, xor_popcount_chunk(ca, cb));
        }
        let mut total = horizontal_sum(acc) as usize;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    fn within_impl(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        let mut total = 0usize;
        let mut blocks_a = a.chunks_exact(BLOCK_WORDS);
        let mut blocks_b = b.chunks_exact(BLOCK_WORDS);
        for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
            let mut acc = _mm256_setzero_si256();
            for (ca, cb) in ba.chunks_exact(4).zip(bb.chunks_exact(4)) {
                acc = _mm256_add_epi64(acc, xor_popcount_chunk(ca, cb));
            }
            total += horizontal_sum(acc) as usize;
            if total > limit {
                return None;
            }
        }
        for (x, y) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        if total <= limit {
            Some(total)
        } else {
            None
        }
    }

    /// Safe entry point: sound only when installed after AVX2 detection,
    /// which the dispatcher guarantees.
    pub fn hamming_distance(a: &[u64], b: &[u64]) -> usize {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the dispatcher only installs this function pointer after
        // `is_x86_feature_detected!("avx2")` returned true for this CPU.
        unsafe { distance_impl(a, b) }
    }

    /// Safe entry point: sound only when installed after AVX2 detection,
    /// which the dispatcher guarantees.
    pub fn hamming_within(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: as for `hamming_distance`.
        unsafe { within_impl(a, b, limit) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word patterns mixing dense, sparse and boundary
    /// values (no external RNG in this leaf crate).
    fn pattern(len: usize, seed: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match i % 5 {
                    0 => state,
                    1 => 0,
                    2 => u64::MAX,
                    3 => state & 0x0101_0101_0101_0101,
                    _ => !state,
                }
            })
            .collect()
    }

    #[test]
    fn dispatched_distance_matches_scalar() {
        for len in [0usize, 1, 3, 4, 5, 15, 16, 17, 31, 32, 64, 157, 160] {
            let a = pattern(len, 1);
            let b = pattern(len, 2);
            assert_eq!(
                hamming_distance_words(&a, &b),
                scalar::hamming_distance_words(&a, &b),
                "len={len}"
            );
        }
    }

    #[test]
    fn dispatched_within_matches_scalar_outcome() {
        for len in [0usize, 1, 7, 16, 17, 48, 157, 160] {
            let a = pattern(len, 3);
            let b = pattern(len, 4);
            let exact = scalar::hamming_distance_words(&a, &b);
            for limit in [0usize, exact / 2, exact.saturating_sub(1), exact, exact + 1, len * 64]
            {
                let want = if exact <= limit { Some(exact) } else { None };
                assert_eq!(hamming_within_words(&a, &b, limit), want, "len={len} limit={limit}");
                assert_eq!(
                    scalar::hamming_within_words(&a, &b, limit),
                    want,
                    "scalar len={len} limit={limit}"
                );
            }
        }
    }

    #[test]
    fn identical_rows_have_zero_distance() {
        let a = pattern(160, 9);
        assert_eq!(hamming_distance_words(&a, &a), 0);
        assert_eq!(hamming_within_words(&a, &a, 0), Some(0));
    }

    #[test]
    fn kernel_name_is_known() {
        let name = kernel_name();
        assert!(name == "avx2" || name == "scalar", "unexpected kernel {name}");
        if std::env::var_os("HDHASH_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0")
            || cfg!(feature = "force-scalar")
        {
            assert_eq!(name, "scalar", "forced scalar must win the dispatch");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = hamming_distance_words(&[0], &[0, 1]);
    }
}
